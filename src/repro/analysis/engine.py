"""Core machinery of ``repro lint`` — the project's AST invariant checker.

Nine PRs of serving infrastructure rest on contracts that used to be
enforced only by reviewer vigilance: routing and cache keys must go
through :meth:`SolveOptions.stable_digest` and never the
PYTHONHASHSEED-salted ``hash()``, pickle stays confined to the trusted
shard wire, the asyncio loop thread never blocks, long-lived serving
state is bounded, transport failures speak the typed taxonomy, RNGs are
seeded, and nothing bit-identical reads the wall clock.  Each rule here
encodes one of those contracts as a mechanical check so the lesson of
the incident that produced it cannot regress silently.

The moving parts:

``Finding``
    One violation: rule id, severity, message, and a location.  Findings
    sort by ``(path, line, col, rule_id)`` so reports are stable.

``Rule``
    The checker protocol — an ``id`` like ``RPR001``, a ``severity``, a
    one-line ``description``, an optional path ``scope``, and
    ``visit(tree, source, path) -> list[Finding]``.  Rules are pure
    functions of one parsed file; cross-file state is deliberately out
    of scope to keep every rule independently testable from a fixture
    pair.

``Registry``
    Maps rule ids to instances, supports ``--select`` / ``--ignore``.

Suppressions
    ``# repro-lint: disable=RPR003`` on (or immediately above) a line
    silences that rule there.  A suppression that silences nothing is
    itself reported (``RPR000``) so stale annotations cannot accumulate.

Path scoping
    Rules declare package-relative prefixes (``repro/serving/``); the
    engine canonicalises filesystem paths so the same rule file works on
    ``src/repro/...`` checkouts, installed trees, and test fixtures that
    fake a path to exercise policy routing.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "Finding",
    "Rule",
    "Registry",
    "LintResult",
    "canonical_path",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "default_registry",
    "HYGIENE_RULE_ID",
]

# Framework-level findings (unused suppressions, unparsable files) are
# reported under this id so they survive --select filtering of the
# domain rules: hygiene of the lint annotations themselves is always on.
HYGIENE_RULE_ID = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>RPR\d{3}(?:\s*,\s*RPR\d{3})*)",
)

# Fixture corpus: deliberately-bad sources that every rule must fire on.
# They live inside the package so --explain can quote them, which means
# the runner must never lint them as project code.
_FIXTURE_MARKER = "analysis/fixtures"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Field order defines sort order: findings group by file, then flow
    top-to-bottom, then break ties on rule id — the stable ordering the
    reporters promise.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for checkers.  Subclasses set the class attributes and
    implement :meth:`visit`.

    ``scope`` is a tuple of canonical path prefixes (or exact files)
    the rule applies to; empty means every linted file.  Scoping lives
    on the rule, not the caller, so policy (``pickle is legal on the
    shard wire but nowhere else``) is versioned next to the check.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    # Canonical ("repro/...") path prefixes this rule applies to.
    scope: tuple[str, ...] = ()
    # Canonical paths exempt even inside the scope.
    allow: tuple[str, ...] = ()
    # Rationale shown by ``repro lint --explain`` — the incident or
    # contract that motivated the rule.
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        if any(path == okay or path.startswith(okay) for okay in self.allow):
            return False
        if not self.scope:
            return True
        return any(
            path == prefix or path.startswith(prefix) for prefix in self.scope
        )

    def visit(
        self, tree: ast.AST, source: str, path: str
    ) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            severity=self.severity,
            message=message,
        )


class Registry:
    """Rule registry with enable/disable by id."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: dict[str, Rule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: Rule) -> None:
        if not rule.id:
            raise ValueError(f"rule {rule!r} has no id")
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self._rules[rule.id] = rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule id {rule_id!r}") from None

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def select(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> list[Rule]:
        """The enabled rules, sorted by id.

        ``select`` narrows to exactly those ids; ``ignore`` drops ids
        from whatever ``select`` produced.  Unknown ids raise so a typo
        in CI config fails loudly instead of silently linting nothing.
        """
        chosen = set(self._rules)
        if select:
            for rule_id in select:
                if rule_id != HYGIENE_RULE_ID:
                    self.get(rule_id)  # raise on unknown
            chosen = {r for r in select if r in self._rules}
        if ignore:
            for rule_id in ignore:
                if rule_id != HYGIENE_RULE_ID:
                    self.get(rule_id)
            chosen -= set(ignore)
        return [self._rules[rule_id] for rule_id in sorted(chosen)]


def default_registry() -> Registry:
    """The registry with every built-in rule (imported lazily to keep
    ``repro.analysis.engine`` import-light for rule unit tests)."""
    from repro.analysis.rules import BUILTIN_RULES

    return Registry(rule() for rule in BUILTIN_RULES)


def canonical_path(path: str | Path) -> str:
    """Project-relative form used for rule scoping.

    Files inside the package are addressed from the package root
    (``repro/core/sharded.py``) regardless of checkout layout —
    ``src/repro/...``, an installed ``site-packages/repro/...``, or a
    bare ``repro/...``.  Anything outside the package (tests, scripts)
    keeps its given form with separators normalised, which is exactly
    what lets ``repro/``-scoped rules skip ``tests/``.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line -> rule ids suppressed there.

    A ``# repro-lint: disable=...`` comment applies to its own line.  A
    comment alone on a line (nothing but the comment) also covers the
    next line, so annotations can sit above a long statement.
    """
    suppress: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppress
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        ids = {part.strip() for part in match.group("ids").split(",")}
        line = tok.start[0]
        suppress.setdefault(line, set()).update(ids)
        # A standalone comment line shields the statement below it.
        prefix = source.splitlines()[line - 1][: tok.start[1]]
        if not prefix.strip():
            suppress.setdefault(line + 1, set()).update(ids)
    return suppress


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def lint_source(
    source: str,
    path: str | Path,
    rules: Sequence[Rule],
) -> list[Finding]:
    """Lint one source string as if it lived at ``path``.

    The explicit path is the test seam: fixtures can claim to be
    ``repro/serving/protocol.py`` to exercise path-scoped policy without
    touching the real tree.
    """
    cpath = canonical_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=cpath,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule_id=HYGIENE_RULE_ID,
                severity="error",
                message=f"file does not parse: {exc.msg}",
            )
        ]

    suppress = _suppressions(source)
    used_suppressions: set[tuple[int, str]] = set()
    findings: list[Finding] = []
    enabled_ids = {rule.id for rule in rules}

    for rule in rules:
        if not rule.applies_to(cpath):
            continue
        for finding in rule.visit(tree, source, cpath):
            line_ids = suppress.get(finding.line, set())
            if finding.rule_id in line_ids:
                used_suppressions.add((finding.line, finding.rule_id))
                continue
            findings.append(finding)

    # Unused suppressions: every (line, id) pair that silenced nothing.
    # Only ids enabled in this run count — a --select RPR003 run must not
    # call an RPR006 annotation stale just because RPR006 didn't run.
    for line, ids in sorted(suppress.items()):
        for rule_id in sorted(ids):
            if rule_id not in enabled_ids:
                continue
            if (line, rule_id) in used_suppressions:
                continue
            # The standalone-comment convention registers the same
            # suppression on two lines; if either use fired, both are live.
            if (line - 1, rule_id) in used_suppressions and line - 1 in suppress:
                continue
            if (line + 1, rule_id) in used_suppressions and line + 1 in suppress:
                continue
            findings.append(
                Finding(
                    path=cpath,
                    line=line,
                    col=0,
                    rule_id=HYGIENE_RULE_ID,
                    severity="warning",
                    message=(
                        f"unused suppression: {rule_id} reports nothing on "
                        f"this line"
                    ),
                )
            )

    return sorted(findings)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into the .py files to lint, skipping the
    fixture corpus (deliberately-bad sources) wherever it appears."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            candidates = []
        for candidate in candidates:
            normal = candidate.resolve()
            if normal in seen:
                continue
            if _FIXTURE_MARKER in normal.as_posix():
                continue
            seen.add(normal)
            out.append(candidate)
    return out


def lint_paths(
    paths: Sequence[str | Path],
    registry: Registry | None = None,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint every python file under ``paths`` with the enabled rules."""
    registry = registry or default_registry()
    rules = registry.select(select, ignore)
    result = LintResult()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(
                    path=canonical_path(file_path),
                    line=0,
                    col=0,
                    rule_id=HYGIENE_RULE_ID,
                    severity="error",
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        result.files += 1
        result.findings.extend(lint_source(source, file_path, rules))
    result.findings.sort()
    return result
