"""RPR006 bad: global-RNG calls nobody can replay."""

import random


def jitter(base):
    return base * (1.0 + random.uniform(-0.1, 0.1))


def pick_replica(replicas):
    rng = random.Random()  # seeded from the OS: different every run
    return rng.choice(replicas)
