"""RPR008 bad: wall clock feeding latency math and trace offsets."""

import time


def timed_solve(service, query, options):
    started = time.time()  # jumps under NTP slew
    result = service.solve(query, options)
    return result, (time.time() - started) * 1000.0
