"""RPR003 bad: pickle on the client-facing protocol path."""

import pickle


def decode_request(raw: bytes):
    # Unpickling untrusted client bytes is arbitrary code execution.
    return pickle.loads(raw)


def encode_reply(payload) -> bytes:
    return pickle.dumps(payload)
