"""RPR007 good: transport failures re-raise or mark the replica down."""

from repro.core.sharded import ShardConnectError, ShardTransportError

_TRANSPORT_FAILURES = (EOFError, OSError, ShardTransportError)


def call_replica(ring, link, slot, request):
    try:
        return link.request(request)
    except ShardConnectError:
        ring.shard_down(slot)  # failover bookkeeping reroutes the slot
        return ring.retry(slot, request)


def drain(links):
    for link in links:
        try:
            link.flush()
        except _TRANSPORT_FAILURES:
            raise  # let the caller's failover engine see it
