"""RPR008 good: monotonic intervals, replayable offsets."""

import time


def timed_solve(service, query, options):
    started = time.perf_counter()
    result = service.solve(query, options)
    return result, (time.perf_counter() - started) * 1000.0


def deadline(timeout_s):
    return time.monotonic() + timeout_s
