"""RPR002 good: blocking work leaves the loop via the executor."""

import asyncio
import time


async def handle(request, service, executor):
    loop = asyncio.get_running_loop()
    await asyncio.sleep(0.01)
    return await loop.run_in_executor(
        executor, service.solve_many, [request.query], request.options
    )


def warm_up(service):
    # Sync context: blocking calls are whatever the caller wants.
    time.sleep(0.01)
    return service.solve_many([], None)
