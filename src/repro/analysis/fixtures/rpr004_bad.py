"""RPR004 bad: a serving class accumulating telemetry forever."""


class Gateway:
    def __init__(self):
        self.window_sizes = []  # grows one entry per batch, never trimmed
        self.results_by_key = {}

    def record_batch(self, batch, key, result):
        self.window_sizes.append(len(batch))
        self.results_by_key[key] = result
