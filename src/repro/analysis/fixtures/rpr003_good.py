"""RPR003 good: the client protocol speaks pure JSON."""

import json


def decode_request(raw: bytes):
    return json.loads(raw.decode("utf-8"))


def encode_reply(payload) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")
