"""RPR001 good: routing key from the stable digest."""


def placement_slot(query, options, slots):
    digest = options.stable_digest(query)
    return int(digest[:8], 16) % slots


class SlotKey:
    def __init__(self, digest):
        self.digest = digest

    def __hash__(self):
        # Delegating to hash() inside __hash__ is the protocol itself.
        return hash(self.digest)
