"""RPR006 good: seeded or caller-injected randomness only."""

import random


def jitter(base, rng):
    return base * (1.0 + rng.uniform(-0.1, 0.1))


def pick_replica(replicas, seed):
    rng = random.Random(seed)
    return rng.choice(replicas)


def synthesize(records, rng=None):
    # Caller opt-in: passing rng=None is an explicit request for
    # nondeterminism, the one sanctioned escape.
    rng = rng or random.Random()
    return [rng.random() for _ in records]
