"""RPR001 bad: routing key derived from the salted builtin hash()."""


def placement_slot(query, options, slots):
    # PYTHONHASHSEED salts this differently in every process: the same
    # request lands on different shards depending on who computes it.
    return hash((tuple(query), options)) % slots
