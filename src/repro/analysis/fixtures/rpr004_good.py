"""RPR004 good: bounded telemetry, LRU-bounded cache."""

from collections import deque


class Gateway:
    def __init__(self, cache):
        self.window_sizes = deque(maxlen=256)
        self.results_by_key = cache  # an LRUCache from core/lru.py
        self.pending = []

    def record_batch(self, batch, key, result):
        self.window_sizes.append(len(batch))
        self.results_by_key.put(key, result)
        self.pending.append(key)

    def drain(self):
        while self.pending:
            yield self.pending.pop()
