"""RPR005 bad: lifecycle guards speaking in bare RuntimeError."""


class ShardedService:
    def __init__(self):
        self.closed = False

    def solve_many(self, queries, options):
        if self.closed:
            raise RuntimeError("service is closed")
        if not queries:
            raise Exception("empty batch")
        return []
