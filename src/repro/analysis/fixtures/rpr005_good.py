"""RPR005 good: the typed taxonomy carries the failure class."""

from repro.errors import InvalidQueryError, ServiceClosedError


class ShardedService:
    def __init__(self):
        self.closed = False

    def solve_many(self, queries, options):
        if self.closed:
            raise ServiceClosedError("service is closed")
        if not queries:
            raise InvalidQueryError("empty batch")
        return []
