"""RPR002 bad: blocking calls issued directly on the loop thread."""

import time


async def handle(request, service):
    time.sleep(0.01)  # stalls every coroutine on the loop
    apply = getattr(service, "apply_delta", None)
    if apply is not None:
        return apply(request.delta)  # blocking call through the alias
    return service.solve_many([request.query], request.options)
