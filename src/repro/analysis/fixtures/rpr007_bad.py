"""RPR007 bad: a dead replica swallowed into silence."""

from repro.core.sharded import ShardConnectError, ShardTransportError

_TRANSPORT_FAILURES = (EOFError, OSError, ShardTransportError)


def call_replica(link, request, fallback):
    try:
        return link.request(request)
    except ShardConnectError:
        return fallback  # replica stays "live" and keeps failing


def drain(links):
    for link in links:
        try:
            link.flush()
        except _TRANSPORT_FAILURES:
            pass  # the tuple alias hides the same swallow
