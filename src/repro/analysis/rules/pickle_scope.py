"""RPR003 — pickle stays on the trusted-cluster shard wire.

The client-facing protocol (``serving/protocol.py``) is pure JSON by
contract: clients are untrusted and ``pickle.loads`` on attacker bytes
is arbitrary code execution.  Pickle is legal exactly where the wire is
operator-controlled — the shard transport (``serving/remote.py``) and
its codec module (``serving/pickled.py``).  The rule flags pickle-family
imports, ``pickle.loads``/``dumps`` attribute use, and calls to the
project's ``encode_pickled``/``decode_pickled`` helpers anywhere else in
the package.  Re-exporting the helpers (a bare import for compatibility)
is allowed; *calling* them outside the allowlist is not.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["PickleScopeRule"]

PICKLE_MODULES = {
    "pickle",
    "cPickle",
    "_pickle",
    "dill",
    "cloudpickle",
    "shelve",
    "marshal",
}

PICKLE_HELPERS = {"encode_pickled", "decode_pickled"}


class PickleScopeRule(Rule):
    id = "RPR003"
    severity = "error"
    description = (
        "pickle outside the trusted shard wire "
        "(serving/pickled.py, serving/remote.py)"
    )
    scope = ("repro/",)
    allow = ("repro/serving/pickled.py", "repro/serving/remote.py")
    rationale = (
        "Standing contract since PR 6: the client protocol is pure JSON "
        "because clients are untrusted and unpickling attacker-supplied "
        "bytes executes arbitrary code.  Pickle is confined to the "
        "shard transport, where both endpoints are spawned by the same "
        "operator — serving/pickled.py (the codec) and "
        "serving/remote.py (the wire).  Everywhere else, importing a "
        "pickle-family module or calling encode_pickled/decode_pickled "
        "is a protocol-boundary violation."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in PICKLE_MODULES:
                        findings.append(
                            self.finding(
                                path,
                                node,
                                f"import of pickle-family module "
                                f"{alias.name!r} outside the shard wire",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in PICKLE_MODULES:
                    findings.append(
                        self.finding(
                            path,
                            node,
                            f"import from pickle-family module "
                            f"{node.module!r} outside the shard wire",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in PICKLE_MODULES
                ):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            f"{func.value.id}.{func.attr}() outside the "
                            "shard wire; the client protocol is pure JSON",
                        )
                    )
                elif (
                    isinstance(func, ast.Name) and func.id in PICKLE_HELPERS
                ):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            f"{func.id}() call outside the shard wire; "
                            "pickle framing is for operator-controlled "
                            "links only",
                        )
                    )
        return findings
