"""RPR005 — no bare ``RuntimeError``/``Exception`` raises in the tower.

The sharding and serving layers have a typed taxonomy (``ShardConnectError``,
``ShardLinkError``, ``GatewayOverloadedError``, ``ServiceClosedError``,
``ServerStateError``, ...) precisely so callers can branch on failure
class instead of string-matching messages.  A bare ``raise
RuntimeError(...)`` in those layers forfeits that: the failover engine
cannot tell "service is closed" from an arbitrary bug.  The rule flags
``raise RuntimeError``/``raise Exception`` (called or bare) in
``core/sharded.py`` and ``serving/`` — the files where the taxonomy
exists and is the contract.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["ErrorTaxonomyRule"]

BARE_TYPES = {"RuntimeError", "Exception"}


class ErrorTaxonomyRule(Rule):
    id = "RPR005"
    severity = "error"
    description = (
        "bare RuntimeError/Exception raise where the typed error "
        "taxonomy exists"
    )
    scope = ("repro/core/sharded.py", "repro/serving/")
    rationale = (
        "The failover engine (PR 5) and every client branch on error "
        "*types* — ShardConnectError retries another replica, "
        "GatewayOverloadedError maps to a shed response, "
        "ServiceClosedError means rebuild the ring.  A bare raise "
        "RuntimeError(...) in these layers forces callers back to "
        "string-matching messages, which is how the pre-PR-10 "
        "lifecycle guards ('service is closed', 'server is not "
        "started') were actually being consumed.  errors.py now has "
        "ServiceClosedError and ServerStateError (both RuntimeError "
        "subclasses, so existing except/raises contracts still hold); "
        "raise those or another taxonomy type."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BARE_TYPES:
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"bare raise {name}; use the typed taxonomy "
                        "(errors.py / sharded.py define the classes)",
                    )
                )
        return findings
