"""RPR002 — blocking calls are banned inside ``async def`` bodies.

One blocked coroutine stalls every request multiplexed on the loop: the
gateway's whole design (PR 7) is that solver work leaves the loop thread
through a single-thread executor.  The rule flags the known blocking
surface — ``time.sleep``, sync ``subprocess``/``socket``/``os.system``
calls, ``Connection.recv``-family methods, and the tower's own blocking
service entry points (``solve_many``, ``apply_delta``, ...) — when
called directly from an async function.  Calls inside nested *sync*
functions are fine (those run wherever the caller dispatches them), and
``getattr``-aliased handles are tracked so ``apply = getattr(svc,
"apply_delta", None); apply(delta)`` does not dodge the check.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["AsyncBlockingRule"]

# Dotted module-level calls that always block.
BLOCKING_CALLS = {
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
    ("os", "system"),
}

# Method names that block regardless of receiver: the tower's blocking
# service surface plus multiprocessing.Connection I/O.  Kept narrow and
# specific on purpose — a generic name like "read" would drown the rule
# in false positives.
BLOCKING_METHODS = {
    "solve_many",
    "apply_delta",
    "solve_parallel_roots",
    "recv",
    "recv_bytes",
    "send_bytes",
}

# Names that only count when reached through a getattr alias (calling
# gateway.stats() counters is non-blocking, but a getattr-fetched
# service stats handle is the blocking backend call).
ALIAS_ONLY_METHODS = {"stats"}


def _dotted(func: ast.expr) -> tuple[str, str] | None:
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def _getattr_target(value: ast.expr) -> str | None:
    """The attribute name fetched by a ``getattr(obj, "name", ...)``."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "getattr"
        and len(value.args) >= 2
        and isinstance(value.args[1], ast.Constant)
        and isinstance(value.args[1].value, str)
    ):
        return value.args[1].value
    return None


class AsyncBlockingRule(Rule):
    id = "RPR002"
    severity = "error"
    description = "blocking call on the asyncio loop thread inside async def"
    scope = ("repro/",)
    rationale = (
        "The gateway contract (PR 7): nothing blocks the loop thread — "
        "solver calls go through AsyncGateway's single-thread executor "
        "so a long solve cannot freeze heartbeats, shedding, and every "
        "other in-flight request.  The rule flags time.sleep, sync "
        "subprocess/socket calls, Connection.recv/send_bytes, and the "
        "tower's own blocking service methods (solve_many, apply_delta, "
        "...) when invoked directly from an async def — including "
        "through getattr-fetched aliases.  Deliberate exceptions (e.g. "
        "the executor-less fallback for in-process tests) carry a "
        "checked suppression explaining why they are safe."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_async(node, path))
        return findings

    def _check_async(
        self, func: ast.AsyncFunctionDef, path: str
    ) -> list[Finding]:
        findings: list[Finding] = []
        aliases: dict[str, str] = {}

        def walk(node: ast.AST) -> None:
            # Nested defs have their own execution context; a nested
            # async def is checked by the outer ast.walk pass.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if isinstance(node, ast.Assign):
                target_name = _getattr_target(node.value)
                if target_name:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases[target.id] = target_name
            if isinstance(node, ast.Call):
                self._check_call(node, aliases, path, findings)
            for child in ast.iter_child_nodes(node):
                walk(child)

        for statement in func.body:
            walk(statement)
        return findings

    def _check_call(
        self,
        node: ast.Call,
        aliases: dict[str, str],
        path: str,
        findings: list[Finding],
    ) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted in BLOCKING_CALLS:
            findings.append(
                self.finding(
                    path,
                    node,
                    f"blocking {dotted[0]}.{dotted[1]}() inside async def; "
                    "await the async equivalent or dispatch via the "
                    "executor",
                )
            )
            return
        if isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHODS:
            findings.append(
                self.finding(
                    path,
                    node,
                    f"blocking .{func.attr}() inside async def; route "
                    "through run_in_executor like AsyncGateway does",
                )
            )
            return
        if isinstance(func, ast.Name) and func.id in aliases:
            target = aliases[func.id]
            if target in BLOCKING_METHODS or target in ALIAS_ONLY_METHODS:
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"blocking call through getattr alias "
                        f"{func.id!r} (-> .{target}()) inside async def; "
                        "route through run_in_executor",
                    )
                )
