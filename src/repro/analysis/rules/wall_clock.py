"""RPR008 — wall clock is banned in the serving and measurement layers.

``time.time()`` jumps under NTP slews and never appears twice the same
across replicas, so anything derived from it — latency measurements,
trace offsets, heartbeat deadlines, cache keys — is either wrong under
clock adjustment or non-reproducible across processes.  The tower uses
``time.monotonic()`` / ``time.perf_counter()`` / ``loop.time()`` for
intervals and *recorded* offsets for replay.  The rule flags
``time.time``/``time.time_ns`` and ``datetime.now``/``utcnow``/``today``
calls in ``core/``, ``serving/``, and ``loadgen/``.  (Digest inputs are
covered transitively: a digest can only become time-dependent by calling
one of these.)
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["WallClockRule"]

WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


class WallClockRule(Rule):
    id = "RPR008"
    severity = "error"
    description = (
        "wall clock (time.time/datetime.now) in serving or measurement "
        "code; use monotonic/recorded time"
    )
    scope = ("repro/core/", "repro/serving/", "repro/loadgen/")
    rationale = (
        "Wall clock jumps under NTP slews and differs across replicas, "
        "so latency math computed from time.time() can go negative and "
        "trace offsets recorded from it cannot be replayed bit-"
        "identically.  The tower's convention: time.monotonic() / "
        "time.perf_counter() for intervals, loop.time() inside asyncio, "
        "and offsets recorded in the trace itself for replay.  Nothing "
        "fed into a digest or cache key may read any clock at all."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            dotted = None
            if isinstance(base, ast.Name):
                dotted = (base.id, func.attr)
            elif isinstance(base, ast.Attribute) and isinstance(
                base.value, ast.Name
            ):
                # datetime.datetime.now(...)
                dotted = (base.attr, func.attr)
            if dotted in WALL_CLOCK_CALLS:
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"wall-clock {dotted[0]}.{dotted[1]}(); use "
                        "time.monotonic()/perf_counter()/loop.time() or "
                        "recorded offsets",
                    )
                )
        return findings
