"""RPR001 — the builtin ``hash()`` is banned in package code.

``hash()`` is salted per-process by PYTHONHASHSEED, so any routing or
cache key built from it places the same request on different shards in
different processes — the exact bug PR 3 fixed by introducing
``SolveOptions.stable_digest()`` / ``stable_repr``.  Rather than guess
which ``hash()`` calls feed keys, the rule bans the builtin outright in
``repro/``: every legitimate need is served by ``stable_digest`` (and
``__hash__`` protocol implementations, which are exempt, may still call
it for delegation).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["SaltedHashRule"]


class SaltedHashRule(Rule):
    id = "RPR001"
    severity = "error"
    description = (
        "builtin hash() is PYTHONHASHSEED-salted; use "
        "SolveOptions.stable_digest() / stable_repr for keys"
    )
    scope = ("repro/",)
    rationale = (
        "PR 3 incident: ring placement keyed on hash((query, options)) "
        "routed the same request to different shards in different "
        "processes because PYTHONHASHSEED salts str/bytes hashing per "
        "interpreter.  The fix — core/options.py stable_repr + "
        "SolveOptions.stable_digest() — is the only sanctioned way to "
        "derive a routing or cache key.  The rule bans the builtin "
        "everywhere in the package except inside __hash__ "
        "implementations, where delegating to hash() is the protocol."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        # Track whether each call site sits inside a __hash__ def.
        hash_defs: set[ast.AST] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "__hash__"
            ):
                hash_defs.update(ast.walk(node))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "hash"):
                continue
            if node in hash_defs:
                continue
            findings.append(
                self.finding(
                    path,
                    node,
                    "salted builtin hash() on package code; derive keys "
                    "from stable_digest()/stable_repr instead",
                )
            )
        return findings
