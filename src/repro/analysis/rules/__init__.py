"""The built-in rule battery for ``repro lint``.

One module per rule; ``BUILTIN_RULES`` is the ordered registry source.
Adding a rule: write ``rules/<name>.py`` subclassing
:class:`repro.analysis.engine.Rule`, give it the next ``RPR0xx`` id, a
``rationale`` naming the incident or contract it encodes, add a
``fixtures/rpr0xx_bad.py`` / ``fixtures/rpr0xx_good.py`` pair, list the
class here, and extend ``tests/test_lint.py``'s fixture table (it
asserts every registered rule has a firing bad example and a silent
good twin).
"""

from __future__ import annotations

from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.error_taxonomy import ErrorTaxonomyRule
from repro.analysis.rules.pickle_scope import PickleScopeRule
from repro.analysis.rules.salted_hash import SaltedHashRule
from repro.analysis.rules.swallowed_transport import SwallowedTransportRule
from repro.analysis.rules.unbounded_growth import UnboundedGrowthRule
from repro.analysis.rules.unseeded_random import UnseededRandomRule
from repro.analysis.rules.wall_clock import WallClockRule

__all__ = [
    "BUILTIN_RULES",
    "AsyncBlockingRule",
    "ErrorTaxonomyRule",
    "PickleScopeRule",
    "SaltedHashRule",
    "SwallowedTransportRule",
    "UnboundedGrowthRule",
    "UnseededRandomRule",
    "WallClockRule",
]

BUILTIN_RULES = (
    SaltedHashRule,
    AsyncBlockingRule,
    PickleScopeRule,
    UnboundedGrowthRule,
    ErrorTaxonomyRule,
    UnseededRandomRule,
    SwallowedTransportRule,
    WallClockRule,
)
