"""RPR006 — every RNG in package code is explicitly seeded.

The tower's headline guarantee is bit-identity: sharded, pruned,
replayed, or mutated, the same request yields byte-equal answers.  One
call into the process-global ``random`` module (or an unseeded
``random.Random()``) breaks that reproducibility silently — generators,
workloads, and jitter all take a seed or an injected ``Random``
instance for exactly this reason.  The rule flags module-level
``random.*`` / ``numpy.random.*`` / ``np.random.*`` calls and no-arg
``Random()`` construction.  The documented caller-opt-in idiom
``rng = rng or random.Random()`` is exempt: there the *caller* chose
nondeterminism explicitly by passing None.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["UnseededRandomRule"]

# Global-RNG functions on the random module.
GLOBAL_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "lognormvariate",
    "paretovariate",
    "weibullvariate",
    "triangular",
    "vonmisesvariate",
    "getrandbits",
    "randbytes",
    "seed",
}


def _is_opt_in_fallback(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
    """True for the ``NAME or random.Random()`` caller-opt-in idiom."""
    parent = parents.get(call)
    return (
        isinstance(parent, ast.BoolOp)
        and isinstance(parent.op, ast.Or)
        and parent.values
        and parent.values[-1] is call
    )


class UnseededRandomRule(Rule):
    id = "RPR006"
    severity = "error"
    description = (
        "unseeded randomness (global random module / no-arg Random()) "
        "breaks bit-identity"
    )
    scope = ("repro/",)
    rationale = (
        "The whole tower is gated on bit-identity: sharded equals "
        "single-service equals pruned equals replayed, byte for byte.  "
        "Any call into the process-global random module (or an "
        "unseeded random.Random()) silently forfeits that — a "
        "generator that cannot be replayed cannot be debugged.  Every "
        "generator/workload/jitter site takes seed= or an injected "
        "Random.  The one sanctioned escape is the explicit caller "
        "opt-in `rng = rng or random.Random()`, where passing rng=None "
        "is the caller choosing nondeterminism."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node

        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.random(), random.choice(...), ...
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in GLOBAL_RANDOM_FUNCS
            ):
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"global random.{func.attr}() is unseeded process "
                        "state; use an injected random.Random(seed)",
                    )
                )
                continue
            # numpy.random.* / np.random.*
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in {"numpy", "np"}
                and func.value.attr == "random"
            ):
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"global {func.value.value.id}.random.{func.attr}() "
                        "is unseeded; use numpy.random.Generator with an "
                        "explicit seed",
                    )
                )
                continue
            # Random() / random.Random() / SystemRandom() with no seed.
            ctor = None
            if isinstance(func, ast.Name):
                ctor = func.id
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                if func.value.id in {"random", "numpy", "np"}:
                    ctor = func.attr
            if ctor in {"Random", "SystemRandom", "default_rng"} and not (
                node.args or node.keywords
            ):
                if ctor == "Random" and _is_opt_in_fallback(node, parents):
                    continue
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"no-arg {ctor}() is seeded from the OS; pass an "
                        "explicit seed (or use the `rng or Random()` "
                        "caller-opt-in idiom)",
                    )
                )
        return findings
