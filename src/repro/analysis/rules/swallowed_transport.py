"""RPR007 — transport failures must re-raise or record a failover.

The replicated ring heals because every ``ShardTransportError`` (and
subclass) either propagates to a caller that can retry another replica
or lands in ``_shard_down``-style bookkeeping that marks the replica
dead and reroutes its slots.  An ``except ShardConnectError: pass``
breaks the healing loop silently: the replica stays "live", keeps
winning placements, and keeps failing.  The rule inspects every
``except`` handler whose caught type set includes a ``Shard*Error``
(resolving module-level tuple aliases like ``_TRANSPORT_FAILURES``) and
requires the handler body to either contain a ``raise`` or mention a
failover-bookkeeping identifier (``_shard_down``, ``failover``,
``suspect``, ``mark_dead``, ...).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import Finding, Rule

__all__ = ["SwallowedTransportRule"]

TRANSPORT_NAMES = re.compile(r"^Shard\w*Error$")

# Identifiers whose appearance in a handler body counts as recording
# the failure for the healing loop.
FAILOVER_EVIDENCE = re.compile(
    r"(failover|shard_down|mark_dead|suspect|reconnect|heal|_down\b|dead)",
    re.IGNORECASE,
)


def _alias_tuples(tree: ast.AST) -> dict[str, list[str]]:
    """Module-level ``NAME = (Exc, Exc, ...)`` aliases -> member names."""
    aliases: dict[str, list[str]] = {}
    body = getattr(tree, "body", [])
    for node in body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Tuple):
            continue
        names = []
        for element in node.value.elts:
            if isinstance(element, ast.Name):
                names.append(element.id)
            elif isinstance(element, ast.Attribute):
                names.append(element.attr)
        aliases[target.id] = names
    return aliases


def _caught_names(
    handler_type: ast.expr | None, aliases: dict[str, list[str]]
) -> list[str]:
    if handler_type is None:
        return []
    names: list[str] = []
    elements = (
        handler_type.elts
        if isinstance(handler_type, ast.Tuple)
        else [handler_type]
    )
    for element in elements:
        if isinstance(element, ast.Name):
            if element.id in aliases:
                names.extend(aliases[element.id])
            else:
                names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


class SwallowedTransportRule(Rule):
    id = "RPR007"
    severity = "error"
    description = (
        "except swallows ShardTransportError without re-raising or "
        "recording failover"
    )
    scope = ("repro/core/", "repro/serving/")
    rationale = (
        "The ring heals (PR 5) because every transport failure either "
        "propagates to a caller that retries another replica or lands "
        "in _shard_down bookkeeping that marks the replica dead and "
        "reroutes its slots.  `except ShardConnectError: pass` leaves "
        "a dead replica marked live — it keeps winning placements and "
        "keeps failing, which is an outage that looks like latency.  "
        "Handlers catching any Shard*Error (including through the "
        "_TRANSPORT_FAILURES tuple alias) must re-raise or touch the "
        "failover bookkeeping (_shard_down / mark_dead / suspect / "
        "reconnect ...)."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        aliases = _alias_tuples(tree)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_names(node.type, aliases)
            if not any(TRANSPORT_NAMES.match(name) for name in caught):
                continue
            if self._handler_ok(node):
                continue
            findings.append(
                self.finding(
                    path,
                    node,
                    "Shard*Error swallowed: handler neither re-raises nor "
                    "records failover (_shard_down/mark_dead/...); a dead "
                    "replica will stay in the ring",
                )
            )
        return findings

    @staticmethod
    def _handler_ok(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Name) and FAILOVER_EVIDENCE.search(node.id):
                return True
            if isinstance(node, ast.Attribute) and FAILOVER_EVIDENCE.search(
                node.attr
            ):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if FAILOVER_EVIDENCE.search(node.name):
                    return True
        return False
