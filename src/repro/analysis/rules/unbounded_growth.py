"""RPR004 — long-lived serving classes must bound their containers.

PR 4 shipped a gateway whose ``window_sizes`` list grew one entry per
batch forever; a day of traffic was an OOM.  The fix (``deque(maxlen=
...)``, ``core/lru.py``) is now the standing pattern: anything a
serving-layer class accumulates per-request must be bounded or visibly
drained.  The rule looks at classes in the long-lived layers (gateway,
sharded service, serving, loadgen), finds instance attributes
initialised in ``__init__`` to an unbounded container (list/dict/set
literal or constructor, ``deque()`` without ``maxlen``), and flags those
that any method grows (``append``/``add``/``extend``/subscript-assign/
``setdefault``) when *no* method shrinks or replaces them (``pop``/
``popleft``/``popitem``/``clear``/``del``/reassignment).  Shrink
evidence anywhere in the class is accepted — the rule catches the
"never drained" shape, not sizing policy.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule

__all__ = ["UnboundedGrowthRule"]

GROW_METHODS = {"append", "appendleft", "add", "extend", "insert", "setdefault", "update"}
SHRINK_METHODS = {"pop", "popleft", "popitem", "clear", "remove", "discard"}

UNBOUNDED_CONSTRUCTORS = {"list", "dict", "set", "OrderedDict", "defaultdict", "Counter"}


def _self_attr(node: ast.expr) -> str | None:
    """``self.name`` -> ``name`` (None for anything else)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_unbounded_container(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in UNBOUNDED_CONSTRUCTORS:
            return True
        if name == "deque":
            has_maxlen = any(kw.arg == "maxlen" for kw in value.keywords)
            return not has_maxlen
    return False


class UnboundedGrowthRule(Rule):
    id = "RPR004"
    severity = "error"
    description = (
        "per-request growth into an unbounded container in a "
        "long-lived serving class; bound it (deque maxlen, core/lru.py) "
        "or drain it"
    )
    scope = (
        "repro/core/gateway.py",
        "repro/core/sharded.py",
        "repro/core/service.py",
        "repro/serving/",
        "repro/loadgen/",
    )
    rationale = (
        "PR 4 incident: AsyncGateway._window_sizes was a plain list "
        "appended once per batch and never trimmed — a day of traffic "
        "was an OOM.  The fix (deque(maxlen=256) for telemetry, "
        "core/lru.py for caches) became the standing pattern for every "
        "long-lived serving object.  The rule flags instance containers "
        "initialised unbounded in __init__ and grown in any method with "
        "no shrink/replace evidence anywhere in the class.  Genuinely "
        "session-bounded accumulators (a trace recorder that lives for "
        "one recording) carry a checked suppression saying so."
    )

    def visit(self, tree: ast.AST, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(node, path))
        return findings

    def _check_class(self, cls: ast.ClassDef, path: str) -> list[Finding]:
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return []

        # Unbounded instance containers born in __init__, with the node
        # that created them (for the finding location).
        candidates: dict[str, ast.AST] = {}
        for node in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if target is None or value is None:
                continue
            attr = _self_attr(target)
            if attr and _is_unbounded_container(value):
                candidates[attr] = node

        if not candidates:
            return []

        grown: dict[str, ast.AST] = {}
        shrunk: set[str] = set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = method.name == "__init__"
            for node in ast.walk(method):
                # A bare reference to a shrink method counts too:
                # task.add_done_callback(self._inflight.discard) drains
                # deferredly and is the standard asyncio bookkeeping shape.
                if isinstance(node, ast.Attribute) and node.attr in SHRINK_METHODS:
                    attr = _self_attr(node.value)
                    if attr in candidates:
                        shrunk.add(attr)
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    attr = _self_attr(node.func.value)
                    if attr in candidates:
                        if node.func.attr in GROW_METHODS and not in_init:
                            grown.setdefault(attr, node)
                elif isinstance(node, ast.Assign) and not in_init:
                    for tgt in node.targets:
                        # self.x[k] = v grows; self.x = ... replaces.
                        if isinstance(tgt, ast.Subscript):
                            attr = _self_attr(tgt.value)
                            if attr in candidates:
                                grown.setdefault(attr, node)
                        else:
                            attr = _self_attr(tgt)
                            if attr in candidates:
                                shrunk.add(attr)
                elif isinstance(node, ast.Delete):
                    for tgt in node.targets:
                        base = (
                            tgt.value if isinstance(tgt, ast.Subscript) else tgt
                        )
                        attr = _self_attr(base)
                        if attr in candidates:
                            shrunk.add(attr)

        findings = []
        for attr, node in sorted(grown.items()):
            if attr in shrunk:
                continue
            findings.append(
                self.finding(
                    path,
                    node,
                    f"self.{attr} grows per call and is never drained; "
                    "bound it with deque(maxlen=...) or core/lru.py",
                )
            )
        return findings
