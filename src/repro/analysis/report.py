"""Reporters for ``repro lint`` — text for humans, JSON for gates.

Both render the same pre-sorted findings (``(path, line, col, rule_id)``
order from the engine) so diffs between runs are meaningful and the CI
gate can archive the JSON as an artifact.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult

__all__ = ["render_text", "render_json", "render_explain"]


def render_text(result: LintResult) -> str:
    """The classic one-line-per-finding form: ``path:line:col: ID message``."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.severity}] {f.message}"
        for f in result.findings
    ]
    noun = "file" if result.files == 1 else "files"
    if result.findings:
        count = len(result.findings)
        fnoun = "finding" if count == 1 else "findings"
        lines.append(f"{count} {fnoun} in {result.files} {noun} checked")
    else:
        lines.append(f"clean: 0 findings in {result.files} {noun} checked")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report: stable key order, stable finding order."""
    payload = {
        "files": result.files,
        "findings": [f.to_json() for f in result.findings],
        "count": len(result.findings),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_explain(
    rule_id: str,
    description: str,
    rationale: str,
    bad_example: str | None,
    good_example: str | None,
) -> str:
    """The ``--explain RPR00x`` card: contract, incident, and the fixture
    pair showing the smallest code that trips / satisfies the rule."""
    sections = [f"{rule_id}: {description}", "", rationale.strip()]
    if bad_example:
        sections += ["", "Fires on:", "", _indent(bad_example)]
    if good_example:
        sections += ["", "Stays silent on:", "", _indent(good_example)]
    return "\n".join(sections)


def _indent(block: str, prefix: str = "    ") -> str:
    return "\n".join(
        prefix + line if line.strip() else line
        for line in block.strip("\n").splitlines()
    )
