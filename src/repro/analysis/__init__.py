"""``repro.analysis`` — the project's AST-based invariant checker.

See :mod:`repro.analysis.engine` for the framework and
:mod:`repro.analysis.rules` for the rule battery.  The CLI entry point
is ``repro lint`` (:func:`repro.cli._run_lint`).
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintResult,
    Registry,
    Rule,
    canonical_path,
    default_registry,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.report import render_explain, render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "Registry",
    "Rule",
    "canonical_path",
    "default_registry",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_explain",
    "render_json",
    "render_text",
]
