"""Figure 1 — minimum Wiener connectors on Zachary's karate club.

The paper shows two connectors: query ``{12, 25, 26, 30}`` spans both
factions and the optimal connector adds the two faction leaders (1 and 34)
plus bridge vertex 32; query ``{4, 12, 17}`` stays inside the instructor's
faction and adds two vertices including leader 1.  The karate graph is
embedded exactly, so this experiment reproduces the figure's solutions up
to ties (vertices 33 and 34 — the president and his right hand — give
co-optimal connectors for the first query; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import ConnectorResult
from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.karate import (
    FIGURE1_QUERY_DIFFERENT_COMMUNITIES,
    FIGURE1_QUERY_SAME_COMMUNITY,
    karate_club,
    karate_factions,
)
from repro.experiments.reporting import render_table
from repro.solvers.branch_and_bound import solve_exact


@dataclass(frozen=True)
class Figure1Panel:
    """One panel of Figure 1: a query and its connectors."""

    label: str
    query: tuple[int, ...]
    exact: ConnectorResult
    exact_wiener: float
    approx: ConnectorResult
    factions_spanned: int


def run() -> list[Figure1Panel]:
    """Compute both panels (exact via branch-and-bound, plus ws-q)."""
    graph = karate_club()
    factions = karate_factions()
    panels = []
    for label, query in (
        ("different communities", FIGURE1_QUERY_DIFFERENT_COMMUNITIES),
        ("same community", FIGURE1_QUERY_SAME_COMMUNITY),
    ):
        outcome = solve_exact(graph, query)
        approx = wiener_steiner(graph, query)
        spanned = sum(1 for faction in factions if faction & set(query))
        panels.append(
            Figure1Panel(
                label=label,
                query=tuple(query),
                exact=outcome.result,
                exact_wiener=outcome.upper_bound,
                approx=approx,
                factions_spanned=spanned,
            )
        )
    return panels


def render(panels: list[Figure1Panel]) -> str:
    rows = []
    for panel in panels:
        rows.append(
            (
                panel.label,
                set(panel.query),
                sorted(panel.exact.added_nodes),
                f"{panel.exact_wiener:.0f}",
                sorted(panel.approx.added_nodes),
                f"{panel.approx.wiener_index:.0f}",
                panel.factions_spanned,
            )
        )
    return render_table(
        ("panel", "Q", "optimal adds", "W*", "ws-q adds", "W(ws-q)", "factions"),
        rows,
        title="Figure 1: karate-club minimum Wiener connectors",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
