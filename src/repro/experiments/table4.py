"""Table 4 — ground-truth community workloads (sc vs dc).

On the community-annotated stand-ins (dblp, youtube) run every method on a
same-community (sc) workload and a different-communities (dc) workload and
compare average solution sizes.  The paper's finding: community-oriented
methods (ppr, cps) blow up 7–11× on dc queries, ctp 3–5×, while st and
ws-q grow only ~1.3–1.4×.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines import METHODS
from repro.datasets.registry import load_community_dataset
from repro.experiments.reporting import format_quantity, render_table
from repro.workloads.community_queries import community_workload

PAPER_DATASETS: tuple[str, ...] = ("dblp", "youtube")
METHOD_ORDER: tuple[str, ...] = ("ctp", "cps", "ppr", "st", "ws-q")


@dataclass(frozen=True)
class Table4Row:
    """Average solution sizes for one (dataset, method) pair."""

    dataset: str
    method: str
    dc_size: float
    sc_size: float

    @property
    def ratio(self) -> float:
        """The dc/sc blow-up factor."""
        if self.sc_size <= 0:
            return 0.0
        return self.dc_size / self.sc_size


def run(
    datasets: tuple[str, ...] = PAPER_DATASETS,
    sizes: tuple[int, ...] = (3, 5, 10, 20),
    queries_per_size: int = 10,
    seed: int = 0,
) -> list[Table4Row]:
    """Regenerate Table 4 (default: the paper's 40-query workloads)."""
    rows: list[Table4Row] = []
    for dataset in datasets:
        data = load_community_dataset(dataset)
        workloads = {
            flavor: community_workload(
                data, flavor, sizes=sizes,
                queries_per_size=queries_per_size, seed=seed,
            )
            for flavor in ("dc", "sc")
        }
        for method in METHOD_ORDER:
            connector = METHODS[method]
            averages = {}
            for flavor, queries in workloads.items():
                total = 0
                for query in queries:
                    total += connector(data.graph, query).size
                averages[flavor] = total / len(queries)
            rows.append(
                Table4Row(
                    dataset=dataset,
                    method=method,
                    dc_size=averages["dc"],
                    sc_size=averages["sc"],
                )
            )
    return rows


def render(rows: list[Table4Row]) -> str:
    """Render the Table-4 layout (dc, sc, dc/sc per dataset)."""
    datasets = list(dict.fromkeys(row.dataset for row in rows))
    by_key = {(row.dataset, row.method): row for row in rows}
    headers = ["method"]
    for dataset in datasets:
        headers += [f"{dataset}-dc", f"{dataset}-sc", f"{dataset}:dc/sc"]
    table_rows = []
    for method in METHOD_ORDER:
        line: list[object] = [method]
        for dataset in datasets:
            row = by_key.get((dataset, method))
            if row is None:
                line += ["-", "-", "-"]
            else:
                line += [
                    format_quantity(row.dc_size),
                    format_quantity(row.sc_size),
                    f"{row.ratio:.2f}",
                ]
        table_rows.append(line)
    return render_table(headers, table_rows,
                        title="Table 4: average |V[H]| on dc vs sc workloads")


def main() -> None:
    started = time.perf_counter()
    rows = run()
    print(render(rows))
    print(f"\n({time.perf_counter() - started:.1f}s)")


if __name__ == "__main__":
    main()
