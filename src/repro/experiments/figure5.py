"""Figure 5 — runtime and scalability of ws-q.

Four panels in the paper: runtime vs ``|Q|`` and vs ``|V|``, on synthetic
Erdős–Rényi ("ER") and power-law ("PL") graphs and on the real datasets.
The claims to reproduce: runtime is near-linear in both the query size and
the graph size, and insensitive to the graph model.  (Absolute numbers are
of course slower than the paper's C++.)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import render_table
from repro.graphs.generators import barabasi_albert, connectify, erdos_renyi_with_degree
from repro.graphs.graph import Graph
from repro.workloads.random_queries import random_query
from repro.workloads.seeding import stable_seed


@dataclass(frozen=True)
class RuntimePoint:
    """One (graph, |Q|) timing measurement."""

    family: str
    num_nodes: int
    num_edges: int
    query_size: int
    seconds: float


def _synthetic(family: str, n: int, rng: random.Random) -> Graph:
    if family == "ER":
        graph = erdos_renyi_with_degree(n, 8.0, rng=rng)
    else:
        graph = barabasi_albert(n, 4, rng=rng)
    return connectify(graph, rng=rng)


def run_synthetic(
    families: tuple[str, ...] = ("ER", "PL"),
    node_counts: tuple[int, ...] = (1000, 2000, 4000),
    query_sizes: tuple[int, ...] = (3, 10, 30),
    seed: int = 0,
) -> list[RuntimePoint]:
    """Time ws-q across synthetic model / size / query-size combinations."""
    points: list[RuntimePoint] = []
    for family in families:
        for n in node_counts:
            rng = random.Random(stable_seed(seed, family, n))
            graph = _synthetic(family, n, rng)
            for size in query_sizes:
                query = random_query(graph, size, rng)
                started = time.perf_counter()
                wiener_steiner(graph, query)
                points.append(
                    RuntimePoint(
                        family=family,
                        num_nodes=graph.num_nodes,
                        num_edges=graph.num_edges,
                        query_size=size,
                        seconds=time.perf_counter() - started,
                    )
                )
    return points


def run_real(
    datasets: tuple[str, ...] = ("email", "yeast", "oregon", "astro", "dblp", "youtube"),
    query_sizes: tuple[int, ...] = (3, 5, 10),
    seed: int = 0,
) -> list[RuntimePoint]:
    """Time ws-q on the Table-1 stand-ins (second row of Figure 5)."""
    points: list[RuntimePoint] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        rng = random.Random(stable_seed(seed, dataset))
        for size in query_sizes:
            query = random_query(graph, size, rng)
            started = time.perf_counter()
            wiener_steiner(graph, query)
            points.append(
                RuntimePoint(
                    family=dataset,
                    num_nodes=graph.num_nodes,
                    num_edges=graph.num_edges,
                    query_size=size,
                    seconds=time.perf_counter() - started,
                )
            )
    return points


def render(points: list[RuntimePoint], title: str) -> str:
    return render_table(
        ("graph", "|V|", "|E|", "|Q|", "runtime (s)"),
        [
            (p.family, p.num_nodes, p.num_edges, p.query_size, f"{p.seconds:.2f}")
            for p in points
        ],
        title=title,
    )


def scaling_exponent(points: list[RuntimePoint], key: str) -> float:
    """Least-squares slope of log(runtime) against log(x).

    ``key`` is ``"nodes"`` or ``"query"``.  Near 1.0 means near-linear —
    the property Figure 5 demonstrates.
    """
    import math

    xs, ys = [], []
    for p in points:
        x = p.num_nodes + p.num_edges if key == "nodes" else p.query_size
        if p.seconds > 0:
            xs.append(math.log(x))
            ys.append(math.log(p.seconds))
    n = len(xs)
    if n < 2:
        return float("nan")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return cov / var if var else float("nan")


def main() -> None:
    synthetic = run_synthetic()
    print(render(synthetic, "Figure 5 (synthetic): ws-q runtime"))
    print()
    real = run_real()
    print(render(real, "Figure 5 (real stand-ins): ws-q runtime"))
    print()
    print(f"log-log slope vs graph size:  {scaling_exponent(synthetic, 'nodes'):.2f}")
    print(f"log-log slope vs query size:  {scaling_exponent(synthetic, 'query'):.2f}")


if __name__ == "__main__":
    main()
