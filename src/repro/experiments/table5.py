"""Table 5 / Figure 7 — the Twitter #kdd2014 case study.

Extract minimum Wiener connectors for cross-community query sets on the
synthetic #kdd2014 graph and report, for each vertex the connector *adds*,
the Table-5-style evidence of influence: follower count (for the named
celebrities), mention count (graph degree — edges are mentions/replies),
degree rank within the whole graph and within its community, and
betweenness rank.  The paper's finding: the added users are the
top-mentioned, top-betweenness users (kdnuggets, drewconway).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.twitter import (
    FIGURE7_QUERY_ONE,
    FIGURE7_QUERY_TWO,
    TwitterDataset,
    kdd_twitter_network,
)
from repro.experiments.reporting import render_table
from repro.graphs.centrality import betweenness_centrality


@dataclass(frozen=True)
class UserInfluence:
    """One Table-5 row: influence statistics of an added user."""

    user: str
    community: int
    followers: int | None
    mentions: int  # degree in the mention graph
    degree_rank_global: int
    degree_rank_community: int
    betweenness_rank: int


@dataclass(frozen=True)
class Table5Result:
    """Connectors for both Figure-7 queries plus influence rows."""

    queries: tuple[tuple[str, ...], ...]
    added: tuple[tuple[str, ...], ...]
    influence: tuple[UserInfluence, ...]


def run(dataset: TwitterDataset | None = None) -> Table5Result:
    """Run both Figure-7 queries and profile every added user."""
    data = dataset if dataset is not None else kdd_twitter_network()
    graph = data.graph

    degree = {user: graph.degree(user) for user in graph.nodes()}
    degree_rank = _ranks(degree)
    community_rank: dict[str, int] = {}
    for community in set(data.community_of.values()):
        members = data.community_members(community)
        local = _ranks({user: degree[user] for user in members})
        community_rank.update(local)
    betweenness = betweenness_centrality(graph, sample_size=200)
    betweenness_rank = _ranks(betweenness)

    queries = (FIGURE7_QUERY_ONE, FIGURE7_QUERY_TWO)
    added_sets = []
    influence: list[UserInfluence] = []
    seen: set[str] = set()
    for query in queries:
        result = wiener_steiner(graph, query)
        added = tuple(sorted(result.added_nodes))
        added_sets.append(added)
        for user in added:
            if user in seen:
                continue
            seen.add(user)
            influence.append(
                UserInfluence(
                    user=user,
                    community=data.community_of[user],
                    followers=data.followers.get(user),
                    mentions=degree[user],
                    degree_rank_global=degree_rank[user],
                    degree_rank_community=community_rank[user],
                    betweenness_rank=betweenness_rank[user],
                )
            )
    influence.sort(key=lambda row: row.degree_rank_global)
    return Table5Result(
        queries=queries, added=tuple(added_sets), influence=tuple(influence)
    )


def _ranks(scores: dict[str, float]) -> dict[str, int]:
    """1-based rank by descending score."""
    ordered = sorted(scores, key=lambda user: (-scores[user], user))
    return {user: index + 1 for index, user in enumerate(ordered)}


def render(result: Table5Result) -> str:
    lines = []
    for query, added in zip(result.queries, result.added):
        lines.append(f"Q = {set(query)}  ->  connector adds {set(added) or '{}'}")
    table = render_table(
        ("user", "G", "followers", "mentions", "deg rank", "deg rank (G)", "bc rank"),
        [
            (
                row.user,
                f"G{row.community}",
                row.followers if row.followers is not None else "-",
                row.mentions,
                row.degree_rank_global,
                row.degree_rank_community,
                row.betweenness_rank,
            )
            for row in result.influence
        ],
        title="Table 5: influence statistics of added users",
    )
    return "\n".join(lines) + "\n\n" + table


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
