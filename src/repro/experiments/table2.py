"""Table 2 — approximation quality of ``ws-q`` against certified bounds.

For each (dataset, |Q|) cell the paper reports the Wiener index of the
``ws-q`` solution next to Gurobi's upper and lower bounds ``[GL, GU]`` on
the optimum, plus the implied error interval.  We reproduce the table with
this repo's solver substitute: branch-and-bound seeded with the ``ws-q``
solution (so ``GU <= W(ws-q)`` by construction, exactly as the paper
arranges) and its certified frontier lower bound.  Budget-exhausted rows
mirror the paper's dagger rows: the interval is still valid, just wider.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import render_table
from repro.solvers.branch_and_bound import solve_exact
from repro.workloads.random_queries import random_query
from repro.workloads.seeding import stable_seed

#: The paper's Table-2 datasets and query sizes.
PAPER_DATASETS: tuple[str, ...] = ("football", "jazz", "celegans", "email")
PAPER_QUERY_SIZES: tuple[int, ...] = (3, 5, 10, 20)


@dataclass(frozen=True)
class Table2Row:
    """One (dataset, |Q|) cell of Table 2."""

    dataset: str
    query_size: int
    ws_q: float
    solver_upper: float
    solver_lower: float
    solver_optimal: bool

    @property
    def error_low(self) -> float:
        """Best-case error of ws-q vs. the solver's upper bound."""
        if self.solver_upper <= 0:
            return 0.0
        return max(0.0, self.ws_q / self.solver_upper - 1.0)

    @property
    def error_high(self) -> float:
        """Worst-case error of ws-q vs. the certified lower bound."""
        if self.solver_lower <= 0:
            return 0.0
        return max(0.0, self.ws_q / self.solver_lower - 1.0)

    def error_text(self) -> str:
        if self.error_high < 1e-9:
            return "0"
        dagger = "" if self.solver_optimal else "†"
        return f"[{self.error_low:.1%}, {self.error_high:.1%}{dagger}]"


def run(
    datasets: tuple[str, ...] = PAPER_DATASETS,
    query_sizes: tuple[int, ...] = PAPER_QUERY_SIZES,
    node_budget: int = 60_000,
    time_budget_seconds: float = 30.0,
    seed: int = 0,
) -> list[Table2Row]:
    """Regenerate Table 2 (one random query per cell, as in the paper).

    ``time_budget_seconds`` caps the solver per cell; cells that hit it are
    reported with the certified-so-far interval (the paper's dagger rows).
    """
    rows: list[Table2Row] = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        for size in query_sizes:
            rng = random.Random(stable_seed(seed, dataset, size))
            query = random_query(graph, size, rng)
            ws = wiener_steiner(graph, query)
            outcome = solve_exact(
                graph, query, node_budget=node_budget, initial=ws,
                time_budget_seconds=time_budget_seconds,
            )
            rows.append(
                Table2Row(
                    dataset=dataset,
                    query_size=size,
                    ws_q=ws.wiener_index,
                    solver_upper=outcome.upper_bound,
                    solver_lower=outcome.lower_bound,
                    solver_optimal=outcome.optimal,
                )
            )
    return rows


def render(rows: list[Table2Row]) -> str:
    """Render the Table-2 layout."""
    return render_table(
        ("Dataset", "|Q|", "ws-q", "GU", "GL", "Error interval"),
        [
            (
                row.dataset,
                row.query_size,
                f"{row.ws_q:.0f}",
                f"{row.solver_upper:.0f}",
                f"{row.solver_lower:.0f}",
                row.error_text(),
            )
            for row in rows
        ],
        title="Table 2: ws-q vs certified solver bounds",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
