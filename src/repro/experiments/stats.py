"""Solution characterization shared by the experiment modules.

Table 3's four statistics per solution ``H``:

* ``|V[H]|`` — vertex count;
* ``δ(H) = |E[H]| / C(|V[H]|, 2)`` — density of the induced subgraph;
* ``bc(H)`` — mean betweenness centrality (measured in the *host* graph)
  of the solution's vertices;
* ``W(H)`` — the Wiener index.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.baselines import METHODS, ConnectorMethod
from repro.core.options import SolveOptions
from repro.core.result import ConnectorResult
from repro.graphs.centrality import betweenness_centrality
from repro.graphs.graph import Graph, Node
from repro.graphs.wiener import wiener_index_sampled

#: Betweenness on the experiment graphs is estimated from this many
#: sampled sources (exact Brandes is O(|V| |E|), too slow in pure Python
#: for the 2-5k-node stand-ins).
BETWEENNESS_SAMPLE = 150

#: Solutions larger than this get a sampled Wiener index (Remark 1).
WIENER_SAMPLE_THRESHOLD = 700


@dataclass(frozen=True)
class SolutionStats:
    """The Table-3 row fragment for one method on one query."""

    method: str
    size: int
    density: float
    betweenness: float
    wiener: float
    runtime_seconds: float


def host_betweenness(graph: Graph, seed: int = 0) -> dict[Node, float]:
    """Sampled host-graph betweenness, shared across all methods/queries."""
    return betweenness_centrality(
        graph, sample_size=BETWEENNESS_SAMPLE, rng=random.Random(seed)
    )


def characterize(
    result: ConnectorResult,
    centrality: Mapping[Node, float],
    runtime_seconds: float | None = None,
) -> SolutionStats:
    """Compute the solution statistics for one connector."""
    nodes = result.nodes
    if nodes:
        mean_bc = sum(centrality[node] for node in nodes) / len(nodes)
    else:
        mean_bc = 0.0
    if result.size > WIENER_SAMPLE_THRESHOLD:
        wiener = wiener_index_sampled(
            result.subgraph, num_sources=128, rng=random.Random(0)
        )
    else:
        wiener = result.wiener_index
    if runtime_seconds is None:
        runtime_seconds = float(result.metadata.get("runtime_seconds", 0.0))
    return SolutionStats(
        method=result.method,
        size=result.size,
        density=result.density,
        betweenness=mean_bc,
        wiener=wiener,
        runtime_seconds=runtime_seconds,
    )


def run_methods(
    graph: Graph,
    query: Iterable[Node],
    centrality: Mapping[Node, float],
    methods: Mapping[str, ConnectorMethod] | None = None,
    options: SolveOptions | None = None,
) -> dict[str, SolutionStats]:
    """Run every method on one query and characterize the solutions.

    Methods satisfying the :class:`~repro.core.options.Method` protocol
    are dispatched uniformly through ``solve(graph, query, options)``;
    plain legacy callables are invoked as ``method(graph, query)``.
    """
    methods = methods if methods is not None else METHODS
    query_list = list(query)
    stats: dict[str, SolutionStats] = {}
    for tag, method in methods.items():
        solve = getattr(method, "solve", None)
        started = time.perf_counter()
        if solve is not None:
            result = solve(graph, query_list, options)
        else:
            result = method(graph, query_list)
        elapsed = time.perf_counter() - started
        stats[tag] = characterize(result, centrality, runtime_seconds=elapsed)
    return stats


def average_stats(per_query: Iterable[Mapping[str, SolutionStats]]) -> dict[str, SolutionStats]:
    """Average statistics over queries, per method."""
    buckets: dict[str, list[SolutionStats]] = {}
    for stats in per_query:
        for tag, value in stats.items():
            buckets.setdefault(tag, []).append(value)
    averaged: dict[str, SolutionStats] = {}
    for tag, values in buckets.items():
        count = len(values)
        averaged[tag] = SolutionStats(
            method=tag,
            size=round(sum(v.size for v in values) / count),
            density=sum(v.density for v in values) / count,
            betweenness=sum(v.betweenness for v in values) / count,
            wiener=sum(v.wiener for v in values) / count,
            runtime_seconds=sum(v.runtime_seconds for v in values) / count,
        )
    return averaged
