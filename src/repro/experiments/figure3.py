"""Figure 3 — solution statistics vs. |Q| and vs. query distance (oregon).

Two sweeps on the oregon stand-in:

* left column:  fix average query distance 4, vary ``|Q| ∈ {10..50}``;
* right column: fix ``|Q| = 5``, vary average distance ``∈ {1..7}``.

Per point and method we report ``|V(H)|``, ``δ(H)`` and ``bc(H)``.  The
paper's shape: ws-q/st stay flat and small while ppr/cps/ctp balloon, and
growing query spread widens the gap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.registry import load_dataset
from repro.experiments.reporting import render_series
from repro.experiments.stats import SolutionStats, average_stats, host_betweenness, run_methods
from repro.workloads.random_queries import query_with_distance
from repro.workloads.seeding import stable_seed

PAPER_DATASET = "oregon"
SIZE_SWEEP: tuple[int, ...] = (10, 20, 30, 40, 50)
SIZE_SWEEP_DISTANCE = 4.0
DISTANCE_SWEEP: tuple[float, ...] = (2.0, 3.0, 4.0, 5.0, 6.0)
DISTANCE_SWEEP_SIZE = 5


@dataclass
class SweepResult:
    """One panel column: statistics per x-value per method."""

    x_label: str
    xs: list[object] = field(default_factory=list)
    stats: list[dict[str, SolutionStats]] = field(default_factory=list)

    def series(self, getter) -> dict[str, list[float]]:
        methods = sorted({m for point in self.stats for m in point})
        return {
            method: [getter(point[method]) if method in point else float("nan")
                     for point in self.stats]
            for method in methods
        }


def run(
    dataset: str = PAPER_DATASET,
    sizes: tuple[int, ...] = SIZE_SWEEP,
    distances: tuple[float, ...] = DISTANCE_SWEEP,
    runs: int = 3,
    seed: int = 0,
) -> tuple[SweepResult, SweepResult]:
    """Compute both sweeps; returns (size sweep, distance sweep)."""
    graph = load_dataset(dataset)
    centrality = host_betweenness(graph, seed=seed)

    size_sweep = SweepResult(x_label="|Q|")
    for size in sizes:
        per_query = []
        for run_index in range(runs):
            rng = random.Random(stable_seed(seed, "size", size, run_index))
            query = query_with_distance(graph, size, SIZE_SWEEP_DISTANCE, rng=rng)
            per_query.append(run_methods(graph, query, centrality))
        size_sweep.xs.append(size)
        size_sweep.stats.append(average_stats(per_query))

    distance_sweep = SweepResult(x_label="AD")
    for distance in distances:
        per_query = []
        for run_index in range(runs):
            rng = random.Random(stable_seed(seed, "ad", distance, run_index))
            query = query_with_distance(
                graph, DISTANCE_SWEEP_SIZE, distance, rng=rng
            )
            per_query.append(run_methods(graph, query, centrality))
        distance_sweep.xs.append(distance)
        distance_sweep.stats.append(average_stats(per_query))

    return size_sweep, distance_sweep


def render(size_sweep: SweepResult, distance_sweep: SweepResult) -> str:
    panels = []
    for sweep, caption in (
        (size_sweep, "AD=4, varying |Q|"),
        (distance_sweep, "|Q|=5, varying AD"),
    ):
        for label, getter in (
            ("|V(H)|", lambda s: float(s.size)),
            ("δ(H)", lambda s: s.density),
            ("bc(H)", lambda s: s.betweenness),
        ):
            panels.append(
                render_series(
                    sweep.x_label,
                    sweep.xs,
                    sweep.series(getter),
                    title=f"Figure 3 [{caption}] — {label}",
                )
            )
    return "\n\n".join(panels)


def main() -> None:
    print(render(*run()))


if __name__ == "__main__":
    main()
