"""Ablation study of Algorithm 1's design choices (not in the paper's
evaluation, but each choice is justified by a lemma — this experiment
measures what each one buys empirically).

Four knobs:

* **roots** — Lemma 5 restricts candidate roots to ``Q`` at a worst-case
  3× objective cost; how much quality does trying every vertex recover,
  and at what runtime price?
* **beta** — the λ-grid resolution (Step 5); finer grids try more
  balances between solution size and distance mass;
* **adjust** — Lemma 2's ``AdjustDistances`` rebalancing, required by the
  worst-case proof;
* **selection** — exact Wiener re-scoring of candidates (Remark 1) vs the
  cheaper ``A(H, r)`` proxy.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import render_table
from repro.workloads.random_queries import query_with_distance
from repro.workloads.seeding import stable_seed


@dataclass(frozen=True)
class AblationRow:
    """Averaged outcome of one configuration."""

    knob: str
    setting: str
    wiener: float
    size: float
    seconds: float


def run(
    dataset: str = "email",
    query_size: int = 8,
    avg_distance: float = 4.0,
    runs: int = 3,
    seed: int = 0,
    include_all_roots: bool = True,
) -> list[AblationRow]:
    """Run every ablation configuration over a shared query workload."""
    graph = load_dataset(dataset)
    queries = []
    for index in range(runs):
        rng = random.Random(stable_seed(seed, dataset, index))
        queries.append(query_with_distance(graph, query_size, avg_distance, rng=rng))

    configurations: list[tuple[str, str, dict]] = [
        ("baseline", "paper defaults", {}),
        ("beta", "0.25", {"beta": 0.25}),
        ("beta", "0.5", {"beta": 0.5}),
        ("beta", "2.0", {"beta": 2.0}),
        ("adjust", "off", {"adjust": False}),
        ("selection", "A-proxy", {"selection": "a"}),
        ("selection", "exact-W", {"selection": "wiener"}),
    ]
    if include_all_roots:
        configurations.append(
            ("roots", "all vertices", {"roots": list(graph.nodes())})
        )

    rows = []
    for knob, setting, kwargs in configurations:
        total_w = total_size = total_t = 0.0
        for query in queries:
            started = time.perf_counter()
            result = wiener_steiner(graph, query, **kwargs)
            total_t += time.perf_counter() - started
            total_w += result.wiener_index
            total_size += result.size
        rows.append(
            AblationRow(
                knob=knob,
                setting=setting,
                wiener=total_w / runs,
                size=total_size / runs,
                seconds=total_t / runs,
            )
        )
    return rows


def render(rows: list[AblationRow]) -> str:
    return render_table(
        ("knob", "setting", "avg W(H)", "avg |V(H)|", "avg seconds"),
        [
            (row.knob, row.setting, f"{row.wiener:.0f}",
             f"{row.size:.1f}", f"{row.seconds:.2f}")
            for row in rows
        ],
        title="Ablations of Algorithm 1 (relative to paper defaults)",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
