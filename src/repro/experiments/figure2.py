"""Figure 2 — the Steiner-vs-Wiener separation gadget.

A line of 10 query vertices plus two partially-attached roots: the unique
optimal Steiner tree is the bare line (``W = 165``), adding either root
drops the Wiener index to 151, and the optimal Wiener connector takes both
roots (``W = 142``) — and is not a tree.  The module also runs the paper's
asymptotic generalization (a line of length ``h`` plus a universal root):
the Steiner solution's Wiener index grows as ``Θ(h³)`` while including the
root keeps it ``O(h²)``, an unbounded gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exact import brute_force
from repro.core.steiner import steiner_tree_unweighted
from repro.core.wiener_steiner import wiener_steiner
from repro.experiments.reporting import render_table
from repro.graphs.generators import figure2_gadget, line_with_universal_root
from repro.graphs.wiener import wiener_index


@dataclass(frozen=True)
class Figure2Result:
    """The gadget's headline numbers."""

    wiener_line: float  # W(Q) — the optimal Steiner tree
    wiener_one_root: float  # W(Q ∪ {r1})
    wiener_both_roots: float  # W(Q ∪ {r1, r2}) — the optimum
    steiner_size: int
    optimal_nodes: frozenset
    ws_q_wiener: float


@dataclass(frozen=True)
class ScalingRow:
    """One length ``h`` of the Θ(h³)-vs-O(h²) generalization."""

    line_length: int
    wiener_steiner_solution: float  # the bare line
    wiener_with_root: float  # line + universal root

    @property
    def gap(self) -> float:
        return self.wiener_steiner_solution / self.wiener_with_root


def run() -> Figure2Result:
    """Compute the gadget numbers (exact via brute force over the roots)."""
    graph = figure2_gadget(10)
    query = list(range(1, 11))
    best = brute_force(graph, query, candidates=["r1", "r2"])
    tree = steiner_tree_unweighted(graph, query)
    ws = wiener_steiner(graph, query)
    return Figure2Result(
        wiener_line=wiener_index(graph.subgraph(query)),
        wiener_one_root=wiener_index(graph.subgraph(query + ["r1"])),
        wiener_both_roots=best.wiener_index,
        steiner_size=tree.num_nodes,
        optimal_nodes=best.nodes,
        ws_q_wiener=ws.wiener_index,
    )


def run_scaling(lengths: tuple[int, ...] = (10, 20, 40, 80)) -> list[ScalingRow]:
    """The generalization: line of length ``h`` + universal root."""
    rows = []
    for h in lengths:
        graph = line_with_universal_root(h)
        query = list(range(1, h + 1))
        rows.append(
            ScalingRow(
                line_length=h,
                wiener_steiner_solution=wiener_index(graph.subgraph(query)),
                wiener_with_root=wiener_index(graph.subgraph(query + ["r"])),
            )
        )
    return rows


def render(result: Figure2Result, scaling: list[ScalingRow]) -> str:
    head = render_table(
        ("quantity", "value"),
        [
            ("W(Q)  [= optimal Steiner tree]", f"{result.wiener_line:.0f}"),
            ("W(Q + r1)", f"{result.wiener_one_root:.0f}"),
            ("W(Q + r1 + r2)  [= optimum]", f"{result.wiener_both_roots:.0f}"),
            ("Steiner tree size", result.steiner_size),
            ("ws-q Wiener index", f"{result.ws_q_wiener:.0f}"),
        ],
        title="Figure 2 gadget (paper: 165 / 151 / 142)",
    )
    tail = render_table(
        ("h", "W(line)", "W(line + root)", "gap"),
        [
            (row.line_length, f"{row.wiener_steiner_solution:.0f}",
             f"{row.wiener_with_root:.0f}", f"{row.gap:.2f}x")
            for row in scaling
        ],
        title="Generalization: Θ(h³) Steiner solution vs O(h²) connector",
    )
    return head + "\n\n" + tail


def main() -> None:
    print(render(run(), run_scaling()))


if __name__ == "__main__":
    main()
