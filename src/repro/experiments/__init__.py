"""Experiment harness: one module per paper table/figure.

=============  =======================================================
module         paper artifact
=============  =======================================================
``table1``     Table 1 — dataset summary vs paper values
``table2``     Table 2 — approximation quality vs certified bounds
``table3``     Table 3 — solution characterization across methods
``table4``     Table 4 — sc vs dc community workloads
``table5``     Table 5 / Figure 7 — Twitter case study
``figure1``    Figure 1 — karate-club connectors
``figure2``    Figure 2 — Steiner-vs-Wiener gadget + generalization
``figure3``    Figure 3 — oregon sweeps over |Q| and query distance
``figure4``    Figure 4 — CDFs on puc/vienna Steiner benchmarks
``figure5``    Figure 5 — runtime scalability
``case_studies``  Figure 6 — PPI case study
``ablations``  quality/runtime ablations of Algorithm 1's knobs
=============  =======================================================

Every module exposes ``run(...)`` returning structured results and a
``main()`` that prints the paper-shaped output; the ``repro`` CLI wires
them to the command line.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    case_studies,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
)

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": case_studies,
    "figure7": table5,
    "ablations": ablations,
}

__all__ = ["EXPERIMENTS"]
