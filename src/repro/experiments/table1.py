"""Table 1 — summary of the graphs used in the evaluation.

For every dataset stand-in: ``|V|``, ``|E|``, density, average degree,
clustering coefficient and effective diameter, printed next to the paper's
published values so the substitution quality is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import SPECS, dataset_names, load_dataset
from repro.experiments.reporting import render_table
from repro.graphs.metrics import GraphSummary, summarize


@dataclass(frozen=True)
class Table1Row:
    """Generated-vs-paper summary for one dataset."""

    summary: GraphSummary
    paper_nodes: int
    paper_edges: int
    scaled: bool


def run(datasets: tuple[str, ...] | None = None) -> list[Table1Row]:
    """Summarize every (requested) stand-in dataset."""
    names = list(datasets) if datasets is not None else dataset_names()
    rows = []
    for name in names:
        spec = SPECS[name]
        graph = load_dataset(name)
        rows.append(
            Table1Row(
                summary=summarize(graph, name=name),
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                scaled=spec.scaled,
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    return render_table(
        ("Dataset", "|V|", "|E|", "δ", "ad", "cc", "ed",
         "paper |V|", "paper |E|"),
        [
            (
                row.summary.name + ("*" if row.scaled else ""),
                row.summary.num_nodes,
                row.summary.num_edges,
                f"{row.summary.density:.1e}",
                f"{row.summary.average_degree:.2f}",
                f"{row.summary.clustering:.2f}",
                f"{row.summary.effective_diameter:.1f}",
                row.paper_nodes,
                row.paper_edges,
            )
            for row in rows
        ],
        title="Table 1: dataset stand-ins (* = scaled down; see DESIGN.md §3)",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
