"""Table 3 — solution characterization across methods.

Six datasets, ``|Q| = 10`` with average query distance 4, averaged over
several runs; for every method report ``|V[H]|``, ``δ(H)``, ``bc(H)`` and
``W(H)``.  The paper's finding: ``ws-q`` produces the smallest, densest,
most-central solutions, with ``st`` the only close competitor and
``ctp``/``cps``/``ppr`` orders of magnitude larger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.registry import load_dataset
from repro.experiments.reporting import format_quantity, render_table
from repro.experiments.stats import (
    SolutionStats,
    average_stats,
    host_betweenness,
    run_methods,
)
from repro.workloads.random_queries import query_with_distance
from repro.workloads.seeding import stable_seed

#: The paper's Table-3 datasets (our stand-ins are scaled; see DESIGN.md).
PAPER_DATASETS: tuple[str, ...] = ("email", "yeast", "oregon", "astro", "dblp", "youtube")
PAPER_QUERY_SIZE = 10
PAPER_AVG_DISTANCE = 4.0
PAPER_RUNS = 5

#: Method display order of the paper's table.
METHOD_ORDER: tuple[str, ...] = ("ctp", "cps", "ppr", "st", "ws-q")


@dataclass(frozen=True)
class Table3Cell:
    """Averaged statistics for one (dataset, method) pair."""

    dataset: str
    stats: SolutionStats


def run(
    datasets: tuple[str, ...] = PAPER_DATASETS,
    query_size: int = PAPER_QUERY_SIZE,
    avg_distance: float = PAPER_AVG_DISTANCE,
    runs: int = PAPER_RUNS,
    seed: int = 0,
) -> dict[str, dict[str, SolutionStats]]:
    """Regenerate Table 3: ``{dataset: {method: averaged stats}}``."""
    table: dict[str, dict[str, SolutionStats]] = {}
    for dataset in datasets:
        graph = load_dataset(dataset)
        centrality = host_betweenness(graph, seed=seed)
        per_query = []
        for run_index in range(runs):
            rng = random.Random(stable_seed(seed, dataset, run_index))
            query = query_with_distance(graph, query_size, avg_distance, rng=rng)
            per_query.append(run_methods(graph, query, centrality))
        table[dataset] = average_stats(per_query)
    return table


def render(table: dict[str, dict[str, SolutionStats]]) -> str:
    """Render the four stacked panels of Table 3."""
    datasets = list(table)
    panels = []
    for label, getter, formatter in (
        ("|V[H]|", lambda s: s.size, lambda v: f"{v:.0f}"),
        ("δ(H)", lambda s: s.density, lambda v: f"{v:.3f}"),
        ("bc(H)", lambda s: s.betweenness, lambda v: f"{v:.3f}"),
        ("W(H)", lambda s: s.wiener, format_quantity),
    ):
        rows = []
        for method in METHOD_ORDER:
            row: list[object] = [method]
            for dataset in datasets:
                stats = table[dataset].get(method)
                row.append(formatter(getter(stats)) if stats else "-")
            rows.append(row)
        panels.append(
            render_table(["method"] + datasets, rows, title=f"Table 3 panel: {label}")
        )
    return "\n\n".join(panels)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
