"""Figure 4 — ws-q vs st on Steiner-tree benchmarks (puc / vienna).

For every benchmark instance run both methods and collect two ratios:

* ``|V(H_st)| / |V(H_wsq)|`` — solution size (the Steiner objective);
* ``W(H_st) / W(H_wsq)`` — Wiener index (the paper's objective).

The paper's CDFs show size ratios hugging 1 (ws-q often *beats* the
Steiner approximation on its own objective) while Wiener ratios sit well
above 1 (st solutions are long and skinny).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.steiner_baseline import steiner_connector
from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.steinlib import puc_suite, vienna_suite
from repro.experiments.reporting import render_cdf
from repro.graphs.io import SteinerInstance


@dataclass(frozen=True)
class BenchmarkComparison:
    """st-vs-wsq outcome on one benchmark instance."""

    instance: str
    num_terminals: int
    st_size: int
    wsq_size: int
    st_wiener: float
    wsq_wiener: float

    @property
    def size_ratio(self) -> float:
        return self.st_size / self.wsq_size

    @property
    def wiener_ratio(self) -> float:
        return self.st_wiener / self.wsq_wiener


def compare_instance(instance: SteinerInstance) -> BenchmarkComparison:
    """Run both methods on one instance (unweighted view, as in the paper)."""
    graph, terminals = instance.unweighted()
    st = steiner_connector(graph, terminals)
    ws = wiener_steiner(graph, terminals)
    return BenchmarkComparison(
        instance=instance.name,
        num_terminals=len(terminals),
        st_size=st.size,
        wsq_size=ws.size,
        st_wiener=st.wiener_index,
        wsq_wiener=ws.wiener_index,
    )


def run(
    puc_count: int = 8, vienna_count: int = 8
) -> dict[str, list[BenchmarkComparison]]:
    """Compare on both generated suites."""
    return {
        "puc": [compare_instance(inst) for inst in puc_suite(puc_count)],
        "vienna": [compare_instance(inst) for inst in vienna_suite(vienna_count)],
    }


def render(results: dict[str, list[BenchmarkComparison]]) -> str:
    sections = []
    for suite, comparisons in results.items():
        size_ratios = [c.size_ratio for c in comparisons]
        wiener_ratios = [c.wiener_ratio for c in comparisons]
        sections.append(render_cdf(size_ratios, f"{suite}: |V(H_ST)|/|V(H_WSQ)|"))
        sections.append(render_cdf(wiener_ratios, f"{suite}: W(H_ST)/W(H_WSQ)"))
    return "\n\n".join(sections)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
