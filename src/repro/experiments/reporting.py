"""Plain-text rendering helpers for the experiment harness.

The paper reports tables and line plots; we render both as ASCII so every
experiment is reproducible from a terminal with no plotting dependencies.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence


def format_quantity(value: float) -> str:
    """Format a number the way the paper's Table 3 does (``≈ 1.5G``)."""
    if value == math.inf:
        return "inf"
    if value != value:  # NaN
        return "nan"
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"≈{value / threshold:.1f}{suffix}"
    if abs(value) >= 100 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.2f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    formatter=format_quantity,
) -> str:
    """Render one-figure-panel data as a table of x vs. per-method values."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for name in series:
            row.append(formatter(series[name][index]))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_cdf(values: Sequence[float], label: str, points: int = 10) -> str:
    """Render a CDF as ``value : cumulative fraction`` rows (Figure 4 style)."""
    if not values:
        return f"{label}: (no data)"
    ordered = sorted(values)
    lines = [f"CDF of {label} ({len(ordered)} instances)"]
    for index in range(points):
        fraction = (index + 1) / points
        position = min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1)
        lines.append(f"  p{fraction:4.0%}: {ordered[position]:.3f}")
    return "\n".join(lines)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Return the value at the given cumulative fraction of the sorted data."""
    if not values:
        raise ValueError("empty data")
    ordered = sorted(values)
    position = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[position]
