"""Figure 6 — the protein–protein-interaction case study.

Extract the minimum Wiener connector for the query genes
``{BMP1, JAK2, PSEN, SLC6A4}`` from the synthetic PPI network and check
the paper's qualitative findings:

* the connector's added vertices are (a subset of) the planted disease-hub
  proteins ``{p53, HSP90, GSK3B, SNCA}``;
* each query gene's next hop inside the connector is a protein whose
  disease annotation matches the query gene's documented association
  (e.g. BMP1 → p53, both cancer-linked).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import ConnectorResult
from repro.core.wiener_steiner import wiener_steiner
from repro.datasets.ppi import PPIDataset, ppi_network
from repro.experiments.reporting import render_table


@dataclass(frozen=True)
class NextHop:
    """A query gene's neighbor inside the connector, with annotations."""

    gene: str
    gene_diseases: tuple[str, ...]
    next_hop: str
    next_hop_diseases: tuple[str, ...]

    @property
    def disease_overlap(self) -> bool:
        return bool(set(self.gene_diseases) & set(self.next_hop_diseases))


@dataclass(frozen=True)
class PPIResult:
    """The Figure-6 reproduction output."""

    connector: ConnectorResult
    added_hubs: tuple[str, ...]
    added_other: tuple[str, ...]
    next_hops: tuple[NextHop, ...]


def run(dataset: PPIDataset | None = None) -> PPIResult:
    """Extract the connector and the per-query next-hop analysis."""
    data = dataset if dataset is not None else ppi_network()
    result = wiener_steiner(data.graph, data.query)
    subgraph = result.subgraph

    added = sorted(result.added_nodes)
    added_hubs = tuple(v for v in added if v in data.hubs)
    added_other = tuple(v for v in added if v not in data.hubs)

    hops = []
    for gene in data.query:
        neighbors = sorted(subgraph.neighbors(gene), key=repr)
        # Prefer an annotated (hub) neighbor as "the" next hop, as Figure 6
        # reads off the hub adjacent to each query gene.
        annotated = [v for v in neighbors if v in data.diseases]
        hop = annotated[0] if annotated else (neighbors[0] if neighbors else gene)
        hops.append(
            NextHop(
                gene=gene,
                gene_diseases=data.diseases.get(gene, ()),
                next_hop=hop,
                next_hop_diseases=data.diseases.get(hop, ()),
            )
        )
    return PPIResult(
        connector=result,
        added_hubs=added_hubs,
        added_other=added_other,
        next_hops=tuple(hops),
    )


def render(result: PPIResult) -> str:
    summary = [
        f"connector: {result.connector.summary()}",
        f"added disease hubs: {set(result.added_hubs) or '{}'}",
        f"other added proteins: {set(result.added_other) or '{}'}",
    ]
    table = render_table(
        ("query gene", "diseases", "next hop", "hop diseases", "match"),
        [
            (
                hop.gene,
                "/".join(hop.gene_diseases),
                hop.next_hop,
                "/".join(hop.next_hop_diseases) or "-",
                "yes" if hop.disease_overlap else "no",
            )
            for hop in result.next_hops
        ],
        title="Figure 6: PPI next-hop disease associations",
    )
    return "\n".join(summary) + "\n\n" + table


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
