"""Allow ``python -m repro ...`` as an alias of the ``repro`` CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
