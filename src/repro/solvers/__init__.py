"""Exact solvers and certified bounds — the repo's substitute for the
paper's Gurobi runs on the Section-5 integer programs.
"""

from repro.solvers.bounds import (
    candidate_pool,
    partial_solution_bound,
    query_distance_maps,
    query_pair_bound,
    vertex_margin,
)
from repro.solvers.branch_and_bound import ExactOutcome, solve_exact
from repro.solvers.ilp import (
    Program7,
    Program7Bound,
    Program7Solution,
    build_program7,
    program7_lower_bound,
    solve_program7,
)
from repro.solvers.lp import LPBound, MAX_LP_VARIABLES, flow_lp_lower_bound

__all__ = [
    "Program7",
    "Program7Bound",
    "Program7Solution",
    "build_program7",
    "program7_lower_bound",
    "solve_program7",
    "candidate_pool",
    "partial_solution_bound",
    "query_distance_maps",
    "query_pair_bound",
    "vertex_margin",
    "ExactOutcome",
    "solve_exact",
    "LPBound",
    "MAX_LP_VARIABLES",
    "flow_lp_lower_bound",
]
