"""LP relaxation lower bound via the flow formulation of Program (6).

Section 5 of the paper models Min Wiener Connector as an integer program:
binary selection variables ``y_u``, pair indicators ``p_st``, and one unit
of flow routed between every selected pair through selected vertices; the
objective (total flow) equals the Wiener index of the selected subgraph.

Solving the *LP relaxation* of this program yields a certified lower bound
on the optimum.  The full program has ``Θ(|E| |V|²)`` flow variables, which
the paper notes "can be problematic for large graphs"; we make the same
trade the paper makes with Program (7) — shrink the program while keeping
it a valid relaxation — but do it by restricting the tracked pairs:

* every pair of *query* vertices contributes its routed distance (these
  pairs are always selected, ``p_st = 1``);
* optionally, every (query, candidate) pair contributes ``y_u`` units of
  routed distance (``p_su >= y_s + y_u - 1 = y_u``), which is what makes
  the bound feel the cost of adding vertices.

Dropping pair terms only decreases the objective, so the LP optimum is
still a lower bound on the true optimum.  The LP is solved with
``scipy.optimize.linprog`` (HiGHS).
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.errors import InvalidQueryError, ReproError
from repro.graphs.graph import Graph, Node

#: Refuse to build programs larger than this many variables.
MAX_LP_VARIABLES = 400_000


@dataclass(frozen=True)
class LPBound:
    """Result of an LP lower-bound computation."""

    value: float
    num_variables: int
    num_constraints: int
    status: str


def flow_lp_lower_bound(
    graph: Graph,
    query: Iterable[Node],
    candidates: Iterable[Node] | None = None,
    extended_pairs: bool = True,
) -> LPBound:
    """Return a certified LP lower bound on the optimal Wiener index.

    Parameters
    ----------
    candidates:
        Non-query vertices allowed fractional selection.  Defaults to all
        non-query vertices (only sensible on small graphs).  Vertices
        outside ``Q ∪ candidates`` are treated as unselectable (their
        ``y = 0``), which *would* break validity — so instead they are kept
        selectable with free flow capacity but contribute no pair terms;
        see the module docstring.
    extended_pairs:
        Track (query, candidate) pairs weighted by ``y``; stronger bound,
        bigger LP.

    Raises
    ------
    InvalidQueryError
        If the query is empty or not in the graph.
    ReproError
        If the program would exceed :data:`MAX_LP_VARIABLES` variables.
    """
    query_list = [q for q in dict.fromkeys(query)]
    if not query_list:
        raise InvalidQueryError("query set must be non-empty")
    for q in query_list:
        if not graph.has_node(q):
            raise InvalidQueryError(f"query vertex {q!r} not in graph")
    query_set = set(query_list)

    if candidates is None:
        pool = [node for node in graph.nodes() if node not in query_set]
    else:
        pool = [node for node in dict.fromkeys(candidates) if node not in query_set]
    pool_set = set(pool)

    nodes = list(graph.nodes())
    node_index = {node: i for i, node in enumerate(nodes)}
    directed: list[tuple[Node, Node]] = []
    for u, v in graph.edges():
        directed.append((u, v))
        directed.append((v, u))
    num_dir = len(directed)

    pairs: list[tuple[Node, Node, Node | None]] = []  # (s, t, y-demand node or None)
    for i, s in enumerate(query_list):
        for t in query_list[i + 1 :]:
            pairs.append((s, t, None))
    if extended_pairs:
        for s in query_list[:1]:
            # One source query vertex per candidate suffices: the pair
            # (s, u) already charges >= d_G(s, u) * y_u to the objective.
            for u in pool:
                pairs.append((s, u, u))

    num_y = len(pool)
    y_index = {node: i for i, node in enumerate(pool)}
    num_flow = len(pairs) * num_dir
    num_vars = num_y + num_flow
    if num_vars > MAX_LP_VARIABLES:
        raise ReproError(
            f"LP would need {num_vars} variables "
            f"(> {MAX_LP_VARIABLES}); restrict the candidate pool"
        )

    def flow_var(pair_idx: int, edge_idx: int) -> int:
        return num_y + pair_idx * num_dir + edge_idx

    # ---- equality constraints: flow conservation per (pair, vertex) ----
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    eq_rhs: list[float] = []
    row = 0
    for pair_idx, (s, t, demand_node) in enumerate(pairs):
        for v in nodes:
            v_i = node_index[v]
            del v_i  # index not needed; row per (pair, vertex)
            rhs = 0.0
            if v == s:
                rhs = -1.0 if demand_node is None else 0.0
            elif v == t:
                rhs = 1.0 if demand_node is None else 0.0
            for edge_idx, (a, b) in enumerate(directed):
                if b == v:  # inbound
                    eq_rows.append(row)
                    eq_cols.append(flow_var(pair_idx, edge_idx))
                    eq_data.append(1.0)
                elif a == v:  # outbound
                    eq_rows.append(row)
                    eq_cols.append(flow_var(pair_idx, edge_idx))
                    eq_data.append(-1.0)
            if demand_node is not None and v in (s, t):
                # net_in(t) - y = 0 ; net_in(s) + y = 0
                eq_rows.append(row)
                eq_cols.append(y_index[demand_node])
                eq_data.append(-1.0 if v == t else 1.0)
            eq_rhs.append(rhs)
            row += 1
    num_eq = row

    # ---- inequality constraints: f <= y_tail for pooled tails ----
    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_data: list[float] = []
    row = 0
    for pair_idx in range(len(pairs)):
        for edge_idx, (a, _) in enumerate(directed):
            if a in pool_set:
                ub_rows.append(row)
                ub_cols.append(flow_var(pair_idx, edge_idx))
                ub_data.append(1.0)
                ub_rows.append(row)
                ub_cols.append(y_index[a])
                ub_data.append(-1.0)
                row += 1
    num_ub = row

    objective = np.zeros(num_vars)
    objective[num_y:] = 1.0

    bounds = [(0.0, 1.0)] * num_y + [(0.0, None)] * num_flow
    a_eq = csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(num_eq, num_vars))
    b_eq = np.array(eq_rhs)
    if num_ub:
        a_ub = csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(num_ub, num_vars))
        b_ub = np.zeros(num_ub)
    else:
        a_ub = None
        b_ub = None

    outcome = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not outcome.success:
        return LPBound(
            value=-math.inf,
            num_variables=num_vars,
            num_constraints=num_eq + num_ub,
            status=outcome.message,
        )
    return LPBound(
        value=float(outcome.fun),
        num_variables=num_vars,
        num_constraints=num_eq + num_ub,
        status="optimal",
    )
