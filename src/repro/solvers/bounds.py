"""Combinatorial lower bounds and candidate-pool pruning for exact search.

The key facts, both following from ``d_{G[S]}(u, v) >= d_G(u, v)`` and from
distances being non-negative:

* **query-pair bound** — every connector ``S ⊇ Q`` satisfies
  ``W(G[S]) >= Σ_{ {u,v} ⊆ Q } d_G(u, v)``;
* **vertex domination** — if ``S`` contains a non-query vertex ``v`` then
  additionally ``W(G[S]) >= query_pair_bound + Σ_{q ∈ Q} d_G(v, q)``, so
  once an upper bound ``UB`` is known, any vertex whose query-distance sum
  pushes that expression to ``UB`` or beyond can never appear in a strictly
  better solution and may be pruned from the search.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances


def query_distance_maps(graph: Graph, query: Iterable[Node]) -> dict[Node, dict[Node, int]]:
    """Return ``{q: BFS distance map of q}`` for every query vertex."""
    return {q: bfs_distances(graph, q) for q in dict.fromkeys(query)}


def query_pair_bound(
    query: Iterable[Node], distance_maps: Mapping[Node, Mapping[Node, int]]
) -> float:
    """Return ``Σ_{ {u,v} ⊆ Q } d_G(u, v)`` — a lower bound on the optimum."""
    query_list = list(dict.fromkeys(query))
    total = 0.0
    for i, u in enumerate(query_list):
        row = distance_maps[u]
        for v in query_list[i + 1 :]:
            total += row[v]
    return total


def vertex_margin(
    node: Node,
    query: Iterable[Node],
    distance_maps: Mapping[Node, Mapping[Node, int]],
) -> float:
    """Return ``Σ_{q ∈ Q} d_G(node, q)`` — the minimum extra Wiener cost of
    including ``node`` in any connector."""
    return float(sum(distance_maps[q][node] for q in distance_maps))
    # Note: distance_maps keys are exactly the query vertices.


def candidate_pool(
    graph: Graph,
    query: Iterable[Node],
    upper_bound: float,
    distance_maps: Mapping[Node, Mapping[Node, int]] | None = None,
) -> list[Node]:
    """Return every non-query vertex that could appear in a solution strictly
    better than ``upper_bound``, ordered by increasing query-distance sum.

    Sound pruning: a vertex ``v`` is kept iff
    ``query_pair_bound + Σ_q d_G(v, q) < upper_bound``.  Any connector using
    a discarded vertex has Wiener index at least ``upper_bound``, so
    searching only over the returned pool still finds every strict
    improvement.
    """
    query_set = set(query)
    if distance_maps is None:
        distance_maps = query_distance_maps(graph, query_set)
    base = query_pair_bound(query_set, distance_maps)
    pool: list[tuple[float, Node]] = []
    for node in graph.nodes():
        if node in query_set:
            continue
        margin = vertex_margin(node, query_set, distance_maps)
        if base + margin < upper_bound:
            pool.append((margin, node))
    pool.sort(key=lambda item: (item[0], repr(item[1])))
    return [node for _, node in pool]


def partial_solution_bound(
    included: Iterable[Node],
    distance_maps_all: Mapping[Node, Mapping[Node, int]],
) -> float:
    """Return ``Σ_{pairs ⊆ included} d_G(u, v)`` given per-node distance maps.

    ``distance_maps_all`` must contain a BFS map for every included node.
    This is an admissible bound for any connector containing ``included``.
    """
    nodes = list(dict.fromkeys(included))
    total = 0.0
    for i, u in enumerate(nodes):
        row = distance_maps_all[u]
        for v in nodes[i + 1 :]:
            total += row[v]
    return total
