"""Best-first branch-and-bound exact solver for Min Wiener Connector.

This is the repo's substitute for the paper's Gurobi runs on Program (7)
(Section 5 / Table 2).  Like the paper's setup it produces a *certified
interval* ``[GL, GU]`` around the optimum:

* ``GU`` is the Wiener index of the best connector found (the search is
  seeded with the ``ws-q`` solution, mirroring the paper: "we initialize
  the solver with our solution so that the solver's upper bound can never
  be worse by construction");
* ``GL`` is the smallest admissible lower bound over the unexplored
  frontier — when the frontier empties, ``GL = GU`` and the result is
  provably optimal; when the node budget runs out first, the interval is
  still valid (the paper's dagger rows).

Search organization
-------------------
Candidates are the non-query vertices that survive the domination filter of
:mod:`repro.solvers.bounds`, ordered by increasing query-distance sum.  Each
search node decides the next candidate (include / exclude); the bound of a
node is the host-distance sum over all pairs of mandatory vertices, with
query-pair distances optionally re-measured in the graph minus the excluded
set (a strictly stronger, still admissible bound).
"""

from __future__ import annotations

import heapq
import math
import time
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.result import ConnectorResult
from repro.core.wiener_steiner import wiener_steiner
from repro.errors import InvalidQueryError
from repro.graphs.components import nodes_connect
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances
from repro.graphs.wiener import wiener_index
from repro.solvers.bounds import (
    candidate_pool,
    query_distance_maps,
    query_pair_bound,
)


@dataclass(frozen=True)
class ExactOutcome:
    """The certified result of a branch-and-bound run.

    ``lower_bound <= OPT <= upper_bound`` always holds; ``optimal`` is True
    when the two coincide because the search space was exhausted.
    """

    result: ConnectorResult
    lower_bound: float
    upper_bound: float
    optimal: bool
    nodes_explored: int
    pool_size: int
    runtime_seconds: float

    @property
    def gap(self) -> float:
        """Relative gap ``(GU - GL) / GL`` (0 when optimal)."""
        if self.lower_bound <= 0:
            return 0.0 if self.upper_bound <= 0 else math.inf
        return (self.upper_bound - self.lower_bound) / self.lower_bound


def solve_exact(
    graph: Graph,
    query: Iterable[Node],
    node_budget: int = 200_000,
    initial: ConnectorResult | None = None,
    strengthen: bool | None = None,
    time_budget_seconds: float | None = None,
) -> ExactOutcome:
    """Solve Min Wiener Connector exactly (or to a certified interval).

    Parameters
    ----------
    node_budget:
        Maximum number of branch-and-bound nodes to expand before giving up
        and reporting the current certified interval.
    initial:
        Warm-start solution; defaults to running ``ws-q``.
    strengthen:
        Re-measure query-pair distances in the graph minus the excluded set
        at each node (stronger bounds, more BFS work).  ``None`` (default)
        enables it automatically on graphs of at most 1500 nodes, where the
        per-node BFS cost pays for itself.
    time_budget_seconds:
        Optional wall-clock cap; like ``node_budget``, exceeding it stops
        the search with a valid (wider) certified interval.
    """
    started = time.perf_counter()
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    if strengthen is None:
        strengthen = graph.num_nodes <= 1500

    incumbent = initial if initial is not None else wiener_steiner(graph, query_set)
    incumbent_value = incumbent.wiener_index
    incumbent_nodes = frozenset(incumbent.nodes)

    distance_maps = query_distance_maps(graph, query_set)
    base_bound = query_pair_bound(query_set, distance_maps)
    pool = candidate_pool(graph, query_set, incumbent_value, distance_maps)

    # Distance maps for every pool vertex (needed by the pairwise bound).
    all_maps: dict[Node, dict[Node, int]] = dict(distance_maps)
    for node in pool:
        all_maps[node] = bfs_distances(graph, node)

    query_list = sorted(query_set, key=repr)

    def pair_bound(included: frozenset[Node], excluded: frozenset[Node]) -> float:
        """Admissible bound for connectors ⊇ Q ∪ included avoiding excluded."""
        mandatory = list(query_list) + sorted(included, key=repr)
        total = 0.0
        if strengthen and excluded:
            # Query-pair distances in G - excluded (may be infinite).
            allowed = None
            for i, u in enumerate(query_list):
                row = _restricted_distances(graph, u, excluded)
                if allowed is None:
                    allowed = row
                for v in query_list[i + 1 :]:
                    d = row.get(v)
                    if d is None:
                        return math.inf
                    total += d
            # Remaining pairs (those involving included vertices) use host maps.
            for i, u in enumerate(mandatory):
                if u in query_set:
                    continue
                row = all_maps[u]
                for v in mandatory[:i]:
                    total += row[v]
        else:
            for i, u in enumerate(mandatory):
                row = all_maps[u]
                for v in mandatory[i + 1 :]:
                    total += row[v]
        return total

    def evaluate(included: frozenset[Node]) -> float:
        nodes = query_set | included
        if not nodes_connect(graph, nodes):
            return math.inf
        return wiener_index(graph.subgraph(nodes))

    # Seed incumbent with the trivial candidate Q ∪ {} when feasible.
    direct = evaluate(frozenset())
    if direct < incumbent_value:
        incumbent_value = direct
        incumbent_nodes = frozenset(query_set)

    counter = 0
    frontier: list[tuple[float, int, int, frozenset[Node], frozenset[Node]]] = []
    heapq.heappush(frontier, (base_bound, counter, 0, frozenset(), frozenset()))
    explored = 0
    exhausted_budget = False

    while frontier:
        bound, _, depth, included, excluded = heapq.heappop(frontier)
        if bound >= incumbent_value:
            # Best-first: every remaining node is at least as bad -> optimal.
            frontier = []
            break
        explored += 1
        out_of_time = (
            time_budget_seconds is not None
            and time.perf_counter() - started > time_budget_seconds
        )
        if explored > node_budget or out_of_time:
            exhausted_budget = True
            heapq.heappush(frontier, (bound, counter, depth, included, excluded))
            break

        # Any partial inclusion set is itself a candidate solution.
        value = evaluate(included)
        if value < incumbent_value:
            incumbent_value = value
            incumbent_nodes = frozenset(query_set | included)

        if depth == len(pool):
            continue
        candidate = pool[depth]

        include_set = included | {candidate}
        include_bound = max(bound, pair_bound(include_set, excluded))
        if include_bound < incumbent_value:
            counter += 1
            heapq.heappush(
                frontier, (include_bound, counter, depth + 1, include_set, excluded)
            )

        exclude_set = excluded | {candidate}
        exclude_bound = max(bound, pair_bound(included, exclude_set))
        if exclude_bound < incumbent_value:
            counter += 1
            heapq.heappush(
                frontier, (exclude_bound, counter, depth + 1, included, exclude_set)
            )

    if frontier and exhausted_budget:
        lower = min(min(node[0] for node in frontier), incumbent_value)
        optimal = lower >= incumbent_value
    else:
        lower = incumbent_value
        optimal = True

    result = ConnectorResult(
        host=graph,
        nodes=incumbent_nodes,
        query=query_set,
        method="bnb",
        metadata={"nodes_explored": explored, "pool_size": len(pool)},
    )
    return ExactOutcome(
        result=result,
        lower_bound=lower,
        upper_bound=incumbent_value,
        optimal=optimal,
        nodes_explored=explored,
        pool_size=len(pool),
        runtime_seconds=time.perf_counter() - started,
    )


def _restricted_distances(
    graph: Graph, source: Node, excluded: frozenset[Node]
) -> dict[Node, int]:
    """BFS distances in ``G - excluded`` from ``source``."""
    from collections import deque

    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in excluded or v in distances:
                continue
            distances[v] = distances[u] + 1
            queue.append(v)
    return distances
