"""Program (7) — the compact tree-based formulation of Section 5.

The paper's second integer program replaces per-pair flows with a rooted
spanning-tree encoding of connectivity:

* ``y_u ∈ {0, 1}`` — vertex ``u`` is selected (fixed to 1 on ``Q``);
* ``x_uv`` — edge ``{u, v}`` is used in the tree, oriented child→parent
  toward a fixed root ``q ∈ Q``;
* ``p_st ≥ y_s + y_t - 1`` — pair ``(s, t)`` is jointly selected;
* objective ``½ Σ d_G(s, t) · p_st`` — a *relaxation* of the Wiener index
  measuring distances in the host graph ("a safe relaxation as our
  solutions typically respect the original distances").

Connectivity needs every chosen vertex to have exactly one parent, the
tree to have ``Σ y - 1`` edges, and **no cycles** — one constraint per
cycle of ``G``, exponentially many.  The paper notes this "is not a
serious issue because the program has a separation oracle and commercial
solvers support lazy constraints"; we implement that loop ourselves:

1. solve the LP relaxation with the cycle constraints found so far
   (scipy/HiGHS);
2. search for a cycle ``C`` violating ``Σ_{(u,v) ∈ C} (x_uv + x_vu) ≤
   |C| - 1`` — equivalently a cycle of weight ``< 1`` under edge weights
   ``1 - x_uv - x_vu`` (found by Dijkstra per edge);
3. add the violated constraints and repeat until none exist.

The converged value is a certified lower bound on the optimal Wiener
index (Program (7)'s LP relaxation).  ``solve_program7`` additionally
drives a small branch-and-bound on fractional ``y`` variables to recover
the integer optimum of the program on tiny graphs.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.errors import InvalidQueryError, ReproError
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

#: Refuse to build programs beyond this size (vars = y + 2|E| + pairs).
MAX_PROGRAM7_VARIABLES = 200_000

#: Lazy-constraint rounds before giving up on separation convergence.
MAX_SEPARATION_ROUNDS = 40


@dataclass
class Program7:
    """The assembled Program (7) for one instance (pre-separation).

    Rows for discovered cycle constraints are appended incrementally by the
    separation loop; everything else is fixed at construction.
    """

    graph: Graph
    query: list[Node]
    root: Node
    pool: list[Node]
    directed: list[tuple[Node, Node]]
    pairs: list[tuple[Node, Node]]
    objective: np.ndarray
    a_eq: csr_matrix
    b_eq: np.ndarray
    a_ub_static: csr_matrix
    b_ub_static: np.ndarray
    y_index: dict[Node, int]
    x_index: dict[tuple[Node, Node], int]
    cycle_rows: list[dict[int, float]] = field(default_factory=list)
    cycle_rhs: list[float] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return len(self.objective)

    def add_cycle_constraint(self, cycle_edges: list[tuple[Node, Node]]) -> None:
        """Add ``Σ (x_uv + x_vu) ≤ |C| - 1`` for the given cycle."""
        row: dict[int, float] = {}
        for u, v in cycle_edges:
            row[self.x_index[(u, v)]] = row.get(self.x_index[(u, v)], 0.0) + 1.0
            row[self.x_index[(v, u)]] = row.get(self.x_index[(v, u)], 0.0) + 1.0
        self.cycle_rows.append(row)
        self.cycle_rhs.append(len(cycle_edges) - 1.0)


def build_program7(
    graph: Graph,
    query: Iterable[Node],
    candidates: Iterable[Node] | None = None,
) -> Program7:
    """Assemble Program (7) for ``(graph, query)``.

    ``candidates`` restricts which non-query vertices get pair terms in the
    objective (all of them still get selection/tree variables); dropping
    pair terms only lowers the objective, keeping the bound valid.
    """
    query_list = list(dict.fromkeys(query))
    if not query_list:
        raise InvalidQueryError("query set must be non-empty")
    for q in query_list:
        if not graph.has_node(q):
            raise InvalidQueryError(f"query vertex {q!r} not in graph")
    query_set = set(query_list)
    root = query_list[0]

    non_query = [node for node in graph.nodes() if node not in query_set]
    if candidates is None:
        tracked = list(non_query)
    else:
        tracked = [n for n in dict.fromkeys(candidates) if n not in query_set]

    directed: list[tuple[Node, Node]] = []
    for u, v in graph.edges():
        directed.append((u, v))
        directed.append((v, u))

    # Pair terms: all query pairs, plus (root, candidate) pairs.
    pairs: list[tuple[Node, Node]] = []
    for i, s in enumerate(query_list):
        for t in query_list[i + 1 :]:
            pairs.append((s, t))
    pairs.extend((root, u) for u in tracked)

    num_y = len(non_query)
    num_x = len(directed)
    num_p = len(pairs)
    num_vars = num_y + num_x + num_p
    if num_vars > MAX_PROGRAM7_VARIABLES:
        raise ReproError(
            f"Program (7) would need {num_vars} variables "
            f"(> {MAX_PROGRAM7_VARIABLES})"
        )

    y_index = {node: i for i, node in enumerate(non_query)}
    x_index = {edge: num_y + i for i, edge in enumerate(directed)}
    p_index = {pair: num_y + num_x + i for i, pair in enumerate(pairs)}

    host = {q: bfs_distances(graph, q) for q in query_list}

    objective = np.zeros(num_vars)
    for (s, t), index in p_index.items():
        objective[index] = host[s][t] if t in host[s] else graph.num_nodes

    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    eq_rhs: list[float] = []
    row = 0

    def eq(entries: dict[int, float], rhs: float) -> None:
        nonlocal row
        for col, value in entries.items():
            eq_rows.append(row)
            eq_cols.append(col)
            eq_data.append(value)
        eq_rhs.append(rhs)
        row += 1

    # (1) Every selected vertex except the root has exactly one parent:
    #     Σ_{u ∈ N(v)} x_vu = y_v   (x oriented child v -> parent u).
    for v in graph.nodes():
        if v == root:
            continue
        entries = {x_index[(v, u)]: 1.0 for u in graph.neighbors(v)}
        if v in query_set:
            eq(entries, 1.0)
        else:
            entries[y_index[v]] = -1.0
            eq(entries, 0.0)

    # (2) Tree edge count: Σ (x_uv + x_vu) = Σ y + |Q| - 1.
    entries = {x_index[edge]: 1.0 for edge in directed}
    for node in non_query:
        entries[y_index[node]] = entries.get(y_index[node], 0.0) - 1.0
    eq(entries, float(len(query_list) - 1))

    a_eq = csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(row, num_vars))
    b_eq = np.array(eq_rhs)

    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_data: list[float] = []
    ub_rhs: list[float] = []
    row = 0

    def ub(entries: dict[int, float], rhs: float) -> None:
        nonlocal row
        for col, value in entries.items():
            ub_rows.append(row)
            ub_cols.append(col)
            ub_data.append(value)
        ub_rhs.append(rhs)
        row += 1

    # (3) Edge usable only if both endpoints selected:
    #     x_uv + x_vu <= y_u  and  <= y_v  (paper states the y_u side;
    #     the symmetric row is implied for integer solutions and tightens
    #     the LP relaxation).
    for u, v in graph.edges():
        both = {x_index[(u, v)]: 1.0, x_index[(v, u)]: 1.0}
        for endpoint in (u, v):
            entries = dict(both)
            if endpoint in query_set:
                ub(entries, 1.0)
            else:
                entries[y_index[endpoint]] = -1.0
                ub(entries, 0.0)

    # (4) Pair coupling: p_st >= y_s + y_t - 1.
    for (s, t), index in p_index.items():
        entries = {index: -1.0}
        rhs = 1.0
        for endpoint in (s, t):
            if endpoint in query_set:
                rhs -= 1.0
            else:
                entries[y_index[endpoint]] = 1.0
        ub(entries, rhs)

    a_ub = csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(row, num_vars))
    b_ub = np.array(ub_rhs)

    return Program7(
        graph=graph,
        query=query_list,
        root=root,
        pool=tracked,
        directed=directed,
        pairs=pairs,
        objective=objective,
        a_eq=a_eq,
        b_eq=b_eq,
        a_ub_static=a_ub,
        b_ub_static=b_ub,
        y_index=y_index,
        x_index=x_index,
    )


@dataclass(frozen=True)
class Program7Bound:
    """Outcome of the lazy-constraint LP relaxation."""

    value: float
    cycles_added: int
    rounds: int
    converged: bool


def _solve_lp(
    program: Program7, y_fixed: dict[Node, float] | None = None
) -> tuple[float, np.ndarray | None]:
    num_vars = program.num_variables
    num_y = len(program.y_index)
    bounds: list[tuple[float, float | None]] = []
    for node, index in sorted(program.y_index.items(), key=lambda kv: kv[1]):
        if y_fixed and node in y_fixed:
            bounds.append((y_fixed[node], y_fixed[node]))
        else:
            bounds.append((0.0, 1.0))
    bounds += [(0.0, 1.0)] * (num_vars - num_y)

    if program.cycle_rows:
        extra_rows = []
        extra_cols = []
        extra_data = []
        for i, row in enumerate(program.cycle_rows):
            for col, value in row.items():
                extra_rows.append(i)
                extra_cols.append(col)
                extra_data.append(value)
        lazy = csr_matrix(
            (extra_data, (extra_rows, extra_cols)),
            shape=(len(program.cycle_rows), num_vars),
        )
        from scipy.sparse import vstack

        a_ub = vstack([program.a_ub_static, lazy])
        b_ub = np.concatenate([program.b_ub_static, np.array(program.cycle_rhs)])
    else:
        a_ub = program.a_ub_static
        b_ub = program.b_ub_static

    outcome = linprog(
        program.objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=bounds,
        method="highs",
    )
    if not outcome.success:
        return math.inf, None
    return float(outcome.fun), outcome.x


def _find_violated_cycle(
    program: Program7, solution: np.ndarray
) -> list[tuple[Node, Node]] | None:
    """Separation oracle: a cycle of weight < 1 under ``1 - x_uv - x_vu``.

    For each edge ``{a, b}`` run Dijkstra from ``a`` to ``b`` avoiding that
    edge; path weight + edge weight < 1 - ε exposes a violated cycle.
    """
    weight: dict[frozenset, float] = {}
    for u, v in program.graph.edges():
        used = solution[program.x_index[(u, v)]] + solution[program.x_index[(v, u)]]
        weight[frozenset((u, v))] = max(0.0, 1.0 - used)

    epsilon = 1e-6
    for u, v in program.graph.edges():
        closing = weight[frozenset((u, v))]
        if closing >= 1.0 - epsilon:
            continue
        path = _dijkstra_avoiding(program.graph, weight, u, v, 1.0 - closing)
        if path is not None:
            cycle = list(zip(path, path[1:])) + [(v, u)]
            return cycle
    return None


def _dijkstra_avoiding(
    graph: Graph,
    weight: dict[frozenset, float],
    source: Node,
    target: Node,
    budget: float,
) -> list[Node] | None:
    """Min-weight ``source -> target`` path avoiding the direct edge,
    pruned at ``budget`` (with a small tolerance)."""
    counter = 0
    heap: list[tuple[float, int, Node]] = [(0.0, counter, source)]
    dist: dict[Node, float] = {}
    parent: dict[Node, Node] = {}
    tentative = {source: 0.0}
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for neighbor in graph.neighbors(node):
            if node == source and neighbor == target:
                continue  # the avoided closing edge
            if neighbor in dist:
                continue
            candidate = d + weight[frozenset((node, neighbor))]
            if candidate >= budget - 1e-9:
                continue
            if candidate < tentative.get(neighbor, math.inf):
                tentative[neighbor] = candidate
                parent[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return None


def program7_lower_bound(
    graph: Graph,
    query: Iterable[Node],
    candidates: Iterable[Node] | None = None,
    max_rounds: int = MAX_SEPARATION_ROUNDS,
) -> Program7Bound:
    """Certified lower bound from Program (7)'s LP with lazy cycle cuts."""
    program = build_program7(graph, query, candidates=candidates)
    value = -math.inf
    rounds = 0
    converged = False
    while rounds < max_rounds:
        rounds += 1
        value, solution = _solve_lp(program)
        if solution is None:
            # Infeasible should not happen for connected graphs; report -inf.
            return Program7Bound(
                value=-math.inf, cycles_added=len(program.cycle_rows),
                rounds=rounds, converged=False,
            )
        cycle = _find_violated_cycle(program, solution)
        if cycle is None:
            converged = True
            break
        program.add_cycle_constraint(cycle)
    return Program7Bound(
        value=value,
        cycles_added=len(program.cycle_rows),
        rounds=rounds,
        converged=converged,
    )


@dataclass(frozen=True)
class Program7Solution:
    """Integer solution of Program (7) found by branching on ``y``."""

    selected: frozenset[Node]
    objective: float
    nodes_explored: int
    converged: bool


def solve_program7(
    graph: Graph,
    query: Iterable[Node],
    candidates: Iterable[Node] | None = None,
    node_budget: int = 200,
) -> Program7Solution:
    """Branch on fractional ``y`` until the LP (with lazy cycles) is integral.

    Intended for tiny instances; the returned objective is Program (7)'s
    optimum, i.e. a host-distance relaxation of the true Wiener optimum.
    """
    program = build_program7(graph, query, candidates=candidates)
    best_value = math.inf
    best_selection: frozenset[Node] | None = None
    explored = 0
    stack: list[dict[Node, float]] = [{}]
    converged = True
    while stack:
        explored += 1
        if explored > node_budget:
            converged = False
            break
        fixing = stack.pop()
        value, solution = _separated_solve(program, fixing)
        if solution is None or value >= best_value - 1e-9:
            continue
        fractional = _most_fractional_y(program, solution, fixing)
        if fractional is None:
            best_value = value
            best_selection = frozenset(
                node for node, index in program.y_index.items()
                if solution[index] > 0.5
            ) | frozenset(program.query)
            continue
        stack.append({**fixing, fractional: 0.0})
        stack.append({**fixing, fractional: 1.0})

    if best_selection is None:
        best_selection = frozenset(program.query)
        best_value = math.inf
    return Program7Solution(
        selected=best_selection,
        objective=best_value,
        nodes_explored=explored,
        converged=converged,
    )


def _separated_solve(
    program: Program7, fixing: dict[Node, float]
) -> tuple[float, np.ndarray | None]:
    """LP + lazy cycle separation under partial y fixings."""
    for _ in range(MAX_SEPARATION_ROUNDS):
        value, solution = _solve_lp(program, y_fixed=fixing)
        if solution is None:
            return math.inf, None
        cycle = _find_violated_cycle(program, solution)
        if cycle is None:
            return value, solution
        program.add_cycle_constraint(cycle)
    return value, solution


def _most_fractional_y(
    program: Program7, solution: np.ndarray, fixing: dict[Node, float]
) -> Node | None:
    best_node = None
    best_score = 1e-6
    for node, index in program.y_index.items():
        if node in fixing:
            continue
        fraction = solution[index]
        score = min(fraction, 1.0 - fraction)
        if score > best_score:
            best_score = score
            best_node = node
    return best_node
