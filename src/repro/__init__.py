"""repro — a reproduction of "The Minimum Wiener Connector Problem" (SIGMOD 2015).

Given a connected graph ``G`` and a query set ``Q``, find a connected
subgraph containing ``Q`` that minimizes the Wiener index (the sum of all
pairwise shortest-path distances).  The package ships:

* :func:`repro.minimum_wiener_connector` — the paper's constant-factor
  approximation algorithm (``ws-q``);
* :class:`repro.ConnectorService` — the persistent serving API: build one
  index per graph, then ``solve`` / ``solve_many`` many queries against it
  (cached roots, candidates, and results; optional process parallelism);
* :class:`repro.ShardedConnectorService` — the scale-out layer: the same
  contract served by N persistent shard processes behind a
  consistent-hash router, bit-identical to the one-shot solver;
* :class:`repro.AsyncGateway` — the asyncio front-end: micro-batches
  concurrently-arriving ``await gateway.asolve(q)`` requests into
  ``solve_many`` windows over either service, coalescing identical
  in-flight queries and backpressuring on queue depth (``repro serve``
  exposes it as a JSON-lines TCP daemon, see :mod:`repro.serving`);
* exact algorithms and certified lower bounds (``repro.core.exact``,
  ``repro.solvers``);
* the evaluation baselines ``ppr``, ``cps``, ``ctp``, ``st``
  (``repro.baselines``);
* every dataset stand-in, workload generator, and experiment harness needed
  to regenerate the paper's tables and figures (``repro.datasets``,
  ``repro.workloads``, ``repro.experiments``).

Quickstart
----------
>>> from repro import Graph, minimum_wiener_connector
>>> from repro.datasets import karate_club
>>> graph = karate_club()
>>> result = minimum_wiener_connector(graph, query=[12, 25, 26, 30])
>>> result.query <= result.nodes
True
"""

from repro.core import (
    AsyncGateway,
    ConnectorResult,
    ConnectorService,
    ShardedConnectorService,
    SolveOptions,
    minimum_wiener_connector,
    steiner_tree_unweighted,
    wiener_steiner,
)
from repro.errors import (
    DisconnectedGraphError,
    EdgeNotFoundError,
    GraphError,
    InvalidQueryError,
    NodeNotFoundError,
    ParseError,
    ReproError,
    SolverBudgetExceeded,
)
from repro.graphs import Graph, WeightedGraph, wiener_index

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "WeightedGraph",
    "wiener_index",
    "AsyncGateway",
    "ConnectorResult",
    "ConnectorService",
    "ShardedConnectorService",
    "SolveOptions",
    "minimum_wiener_connector",
    "wiener_steiner",
    "steiner_tree_unweighted",
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "DisconnectedGraphError",
    "InvalidQueryError",
    "SolverBudgetExceeded",
    "ParseError",
    "__version__",
]
