"""Exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate *what*
went wrong: malformed graphs, disconnected inputs, bad query sets, solver
resource exhaustion, and parse failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph operation received structurally invalid input."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DisconnectedGraphError(GraphError):
    """An operation requiring a connected graph got a disconnected one."""


class DeltaError(GraphError):
    """A :class:`repro.core.versioned.GraphDelta` is malformed or inapplicable.

    Raised when a delta batch is internally inconsistent (duplicate or
    conflicting ops on one edge, self-loops, negative weights) or cannot
    be applied to the target graph (inserting an existing edge, deleting
    or reweighting a missing one).  Deltas are all-or-nothing: an
    inapplicable op fails the whole batch before anything mutates.
    """


class InvalidQueryError(ReproError):
    """The query set ``Q`` is empty or contains nodes outside the graph."""


class SolverBudgetExceeded(ReproError):
    """An exact solver exhausted its node/time budget.

    Carries the best certified lower and upper bounds found so far, mirroring
    how the paper reports Gurobi runs that exhausted memory (Table 2 rows
    marked with a dagger).
    """

    def __init__(self, lower_bound: float, upper_bound: float) -> None:
        super().__init__(
            "solver budget exceeded; best certified interval is "
            f"[{lower_bound}, {upper_bound}]"
        )
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound


class ParseError(ReproError):
    """A file (edge list, SteinLib ``.stp``) could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class TraceError(ReproError):
    """A load trace (JSONL) is malformed: bad header, record, or version."""


class ServiceClosedError(ReproError, RuntimeError):
    """An operation hit a sharded service that is (or just became) closed.

    Raised by every post-close entry point of the sharded service and by
    the unrecoverable failover paths (a shard died mid-batch with no
    replica, no live replicas for a key range) — the conditions after
    which the ring must be rebuilt.  Subclasses :class:`RuntimeError`
    because a decade of call sites and tests catch ``RuntimeError`` with
    the exact message strings; the type adds a branchable class without
    breaking that contract.
    """


class ServerStateError(ReproError, RuntimeError):
    """A lifecycle method was called in the wrong state.

    ``start()`` on a started server, ``stop()``/``port`` on one that was
    never started — for the TCP gateway server, the socket shard host,
    and the recording proxy alike.  Subclasses :class:`RuntimeError` for
    the same compatibility reason as :class:`ServiceClosedError`.
    """
