"""CSR fast path for WienerSteiner — the array backend of Algorithm 1.

The seed implementation rebuilt a hashable-node ``WeightedGraph`` for every
``(root, λ)`` Steiner instance and ran every traversal as dict/deque BFS.
This module keeps a single :class:`~repro.graphs.csr.CSRGraph` for the
whole sweep and replaces each inner loop with array operations:

* line 1 of Algorithm 1 (one BFS per candidate root) uses the vectorized
  frontier BFS of :meth:`CSRGraph.bfs_tree`, cached per root;
* the Lemma-4 reweighting ``w(u,v) = λ + max(d_r(u), d_r(v))/λ`` becomes a
  single vectorized expression over a per-root ``max(d_r[u], d_r[v])`` arc
  array — one numpy line per λ instead of ``O(|E|)`` dict inserts per
  ``(root, λ)`` pair;
* Mehlhorn phase 1 (:func:`mehlhorn_steiner_csr`) runs an array-heap
  multi-source Dijkstra directly over ``(indptr, indices, weights)`` and
  reduces the crossing-edge candidates with one ``lexsort``;
* candidate scoring reuses the CSR structure through
  :meth:`CSRGraph.induced` index masks instead of ``graph.subgraph``
  rebuilds.

Tie-breaking everywhere is by the relabeled integer index — the same
canonical rule the dict backend applies through its order map — and phases
2–3 of Mehlhorn are literally shared code
(:func:`repro.core.steiner.steiner_tree_from_voronoi`), so
``backend="csr"`` returns the *same connector* as ``backend="dict"``, just
one to two orders of magnitude faster on large graphs.
"""

from __future__ import annotations

import heapq
import math
import random
from collections.abc import Iterable

from repro.core.adjust import adjust_distances
from repro.core.lru import LRUCache
from repro.core.steiner import steiner_tree_from_voronoi
from repro.graphs.csr import (
    HAS_NUMPY,
    CSRGraph,
    np,
    scipy_csr_matrix as _scipy_csr_matrix,
    scipy_dijkstra as _scipy_dijkstra,
)
from repro.graphs.graph import Graph, Node, WeightedGraph

__all__ = [
    "CSRWienerSteinerEngine",
    "dijkstra_distances_csr",
    "mehlhorn_steiner_csr",
    "voronoi_dijkstra_csr",
]


def voronoi_dijkstra_csr(
    indptr: list[int],
    indices: list[int],
    weights: list[float],
    num_nodes: int,
    source_indices: Iterable[int],
) -> tuple[list[float], list[int], list[int]]:
    """Array-heap multi-source Dijkstra (Mehlhorn phase 1) on flat CSR lists.

    Plain Python lists beat numpy arrays here: the heap loop does scalar
    indexing, where ndarray ``__getitem__`` overhead dominates.  Heap keys
    are ``(dist, source_idx, node_idx, parent_idx)`` — identical to
    :func:`repro.core.steiner.voronoi_dijkstra_canonical`, so both backends
    settle every node with the same distance, source, and parent.
    """
    inf = math.inf
    n = num_nodes
    dist = [inf] * n
    parent = [-1] * n
    closest = [-1] * n
    best = [inf] * n
    settled = bytearray(n)
    # Heap entries are (dist, packed) with packed = (s*n + v)*(n+1) + (p+1):
    # ordering by packed equals ordering by (s, v, p), so pops happen in the
    # exact (dist, source, node, parent) order of the dict twin while tuple
    # construction and comparison stay cheap in the hot loop.
    base = n + 1
    heap: list[tuple[float, int]] = []
    for source_idx in sorted(set(source_indices)):
        best[source_idx] = 0.0
        heap.append((0.0, (source_idx * n + source_idx) * base))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, packed = pop(heap)
        rest = packed // base
        u_idx = rest % n
        if settled[u_idx]:
            continue
        settled[u_idx] = 1
        dist[u_idx] = d
        source_base = rest - u_idx  # == s * n
        closest[u_idx] = source_base // n
        parent[u_idx] = packed % base - 1
        u_tag = u_idx + 1
        lo = indptr[u_idx]
        hi = indptr[u_idx + 1]
        for v_idx, weight in zip(indices[lo:hi], weights[lo:hi]):
            if settled[v_idx]:
                continue
            candidate = d + weight
            if candidate < best[v_idx]:
                best[v_idx] = candidate
                push(heap, (candidate, (source_base + v_idx) * base + u_tag))
    return dist, parent, closest


def _voronoi_phase(
    csr: CSRGraph,
    weights,
    terminals: list[int],
    indptr_list: list[int] | None = None,
    indices_list: list[int] | None = None,
    matrix=None,
):
    """Mehlhorn phase 1, fastest available route.

    For strictly positive weights (every ``G_{r,λ}`` instance qualifies:
    ``w ≥ λ > 0``), only the *distances* need a Dijkstra — the canonical
    ``(parent, closest)`` are a pure function of the distance array
    (:func:`_voronoi_from_distances`).  Distances come from scipy's C
    Dijkstra when available, else the Python array-heap; both give the
    same bits, because the float min-plus fixpoint is unique for
    non-negative weights.  Zero weights fall back to the canonical
    settle-order heap (:func:`voronoi_dijkstra_csr`), matching the dict
    backend's branch exactly.
    """
    positive = bool(len(weights)) and float(weights.min()) > 0.0
    if positive and _scipy_dijkstra is not None:
        n = csr.num_nodes
        if matrix is not None:
            # A persistent caller (the engine) hands us a preassembled
            # matrix over the same (indptr, indices); only the weight
            # buffer changes between candidates, so skip scipy's
            # construction-time validation and just overwrite the data.
            matrix.data[:] = weights
        else:
            matrix = _scipy_csr_matrix(
                (weights, csr.indices, csr.indptr), shape=(n, n)
            )
        dist_arr = _scipy_dijkstra(
            matrix, directed=True, indices=terminals, min_only=True
        )
        parent, closest = _voronoi_from_distances(csr, weights, dist_arr, terminals)
        return dist_arr, parent, closest
    if indptr_list is None:
        indptr_list = csr.indptr.tolist()
    if indices_list is None:
        indices_list = csr.indices.tolist()
    if not positive:
        return voronoi_dijkstra_csr(
            indptr_list, indices_list, weights.tolist(), csr.num_nodes, terminals
        )
    dist = dijkstra_distances_csr(
        indptr_list, indices_list, weights.tolist(), csr.num_nodes, terminals
    )
    dist_arr = np.asarray(dist, dtype=np.float64)
    parent, closest = _voronoi_from_distances(csr, weights, dist_arr, terminals)
    return dist_arr, parent, closest


def dijkstra_distances_csr(
    indptr: list[int],
    indices: list[int],
    weights: list[float],
    num_nodes: int,
    source_indices: Iterable[int],
) -> list[float]:
    """Distance-only multi-source Dijkstra on flat CSR lists.

    The CSR twin of
    :func:`repro.core.steiner.dijkstra_distances_canonical`: 2-tuple heap
    entries, no parent/source bookkeeping.  Distances are tie-free, so
    this returns the same bits as the packed-key loop or scipy — it just
    does strictly less work per edge when only distances are needed.
    """
    inf = math.inf
    dist = [inf] * num_nodes
    best = [inf] * num_nodes
    settled = bytearray(num_nodes)
    heap: list[tuple[float, int]] = []
    for source_idx in sorted(set(source_indices)):
        best[source_idx] = 0.0
        heap.append((0.0, source_idx))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, u_idx = pop(heap)
        if settled[u_idx]:
            continue
        settled[u_idx] = 1
        dist[u_idx] = d
        lo = indptr[u_idx]
        hi = indptr[u_idx + 1]
        for v_idx, weight in zip(indices[lo:hi], weights[lo:hi]):
            if settled[v_idx]:
                continue
            candidate = d + weight
            if candidate < best[v_idx]:
                best[v_idx] = candidate
                push(heap, (candidate, v_idx))
    return dist


def _voronoi_from_distances(
    csr: CSRGraph, weights, dist_arr, terminals: list[int]
) -> tuple[list[int], "np.ndarray"]:
    """The canonical Voronoi forest as a pure function of exact distances.

    A node's parent is the *tight* inbound neighbor — ``dist[u] + w(u, v)
    == dist[v]``, bit-exact — minimizing ``(dist[u], u)``; ``closest`` is
    the root of the resulting forest (every root is a source, because
    strictly positive weights force ``dist[parent] < dist[child]``).  The
    dict backend applies the same rule edge-by-edge
    (:func:`repro.core.steiner.canonical_forest_from_distances`), so both
    backends reconstruct the same forest from the same distances.  Tight
    arcs number ``O(|V|)`` in practice and everything here is vectorized:
    one lexsort for parents, pointer-doubling for roots.
    """
    src = csr.arc_src
    dst = csr.indices
    num_nodes = csr.num_nodes
    finite = np.isfinite(dist_arr)
    tight = finite[src] & finite[dst]
    tight &= dist_arr[src] + weights == dist_arr[dst]
    tail = src[tight]
    head = dst[tight]
    parent = np.full(num_nodes, -1, dtype=np.int64)
    if tail.size:
        order = np.lexsort((tail, dist_arr[tail], head))
        head_sorted = head[order]
        first = np.ones(head_sorted.size, dtype=bool)
        first[1:] = head_sorted[1:] != head_sorted[:-1]
        parent[head_sorted[first]] = tail[order][first]
    # Sources never have tight inbound arcs (w > 0), but pin them anyway.
    parent[np.asarray(terminals, dtype=np.int64)] = -1
    jump = np.where(parent >= 0, parent, np.arange(num_nodes, dtype=np.int64))
    while True:
        doubled = jump[jump]
        if np.array_equal(doubled, jump):
            break
        jump = doubled
    closest = jump
    closest[~finite] = -1
    return parent.tolist(), closest


def _crossing_candidates(
    csr: CSRGraph,
    weights,
    dist: list[float],
    closest: list[int],
    terminals_arr,
) -> dict[tuple[int, int], tuple[float, int, int]]:
    """Best crossing edge per terminal pair, via a scatter-min over arcs.

    Matches the dict backend's per-key minimum of
    ``(length, min endpoint, max endpoint)`` exactly: lengths are always
    evaluated as ``dist[lo] + w + dist[hi]`` over the ``lo < hi`` arc
    orientation (bit-identical floats), ``np.minimum.at`` finds the exact
    minimum length per terminal pair, and length ties fall back to the
    first matching arc — arcs arrive in CSR order, which *is* ascending
    ``(lo, hi)``, so the tie-break is the canonical one.
    """
    dist_arr = np.asarray(dist, dtype=np.float64)
    closest_arr = np.asarray(closest, dtype=np.int64)
    positions, tails, heads = csr.half_arcs
    half_weights = weights[positions]
    source_a = closest_arr[tails]
    source_b = closest_arr[heads]
    mask = (source_a >= 0) & (source_b >= 0) & (source_a != source_b)
    mask &= np.isfinite(half_weights)
    if not bool(mask.any()):
        return {}
    lo = tails[mask]
    hi = heads[mask]
    lengths = dist_arr[lo] + half_weights[mask] + dist_arr[hi]
    # Compact the source labels (node indices) to 0..t-1 terminal slots so
    # the scatter-min target stays tiny.
    slot_a = np.searchsorted(terminals_arr, source_a[mask])
    slot_b = np.searchsorted(terminals_arr, source_b[mask])
    pair_key = (
        np.minimum(slot_a, slot_b) * len(terminals_arr)
        + np.maximum(slot_a, slot_b)
    )
    if len(terminals_arr) ** 2 <= 1 << 22:
        min_length = np.full(len(terminals_arr) ** 2, np.inf)
    else:
        # Huge terminal sets: a dense |T|^2 scatter-min target would be
        # gigabytes; compact to the pairs actually present instead.
        unique_keys, pair_key = np.unique(pair_key, return_inverse=True)
        min_length = np.full(len(unique_keys), np.inf)
    np.minimum.at(min_length, pair_key, lengths)
    candidates: dict[tuple[int, int], tuple[float, int, int]] = {}
    for i in np.flatnonzero(lengths <= min_length[pair_key]):
        a = int(terminals_arr[slot_a[i]])
        b = int(terminals_arr[slot_b[i]])
        key = (a, b) if a < b else (b, a)
        if key not in candidates:
            candidates[key] = (float(lengths[i]), int(lo[i]), int(hi[i]))
    return candidates


def mehlhorn_steiner_csr(
    csr: CSRGraph,
    weights,
    terminal_indices: Iterable[int],
    indptr_list: list[int] | None = None,
    indices_list: list[int] | None = None,
    matrix=None,
) -> tuple[list[int], list[tuple[int, int]]]:
    """Mehlhorn's 2-approximation consuming ``(indptr, indices, weights)``.

    Returns ``(nodes, edges)`` of the pruned Steiner tree in index space —
    identical to what :func:`repro.core.steiner.mehlhorn_steiner_tree`
    returns (after relabeling) on the equivalent ``WeightedGraph``.
    ``indptr_list``/``indices_list`` let callers reuse pre-converted flat
    lists across many invocations (the engine does); ``matrix`` likewise
    lets them reuse a preassembled scipy matrix whose data buffer is
    overwritten with ``weights``.

    Raises
    ------
    DisconnectedGraphError
        If the terminals do not lie in a single component.
    """
    terminals = sorted(set(int(t) for t in terminal_indices))
    if len(terminals) == 1:
        return terminals, []
    dist, parent, closest = _voronoi_phase(
        csr, weights, terminals, indptr_list, indices_list, matrix
    )
    terminals_arr = np.asarray(terminals, dtype=np.int64)
    candidates = _crossing_candidates(csr, weights, dist, closest, terminals_arr)
    return steiner_tree_from_voronoi(
        terminals,
        candidates,
        parent.__getitem__,
        lambda a, b: float(weights[csr.arc_weight_position(a, b)]),
    )


class _IntArrayMapping:
    """Read-only ``Mapping[int, int]`` view of an int array with ``-1`` = absent."""

    __slots__ = ("_values",)

    def __init__(self, values) -> None:
        self._values = values

    def get(self, key: int, default=None):
        value = self._values[key]
        return int(value) if value >= 0 else default

    def __getitem__(self, key: int) -> int:
        value = self._values[key]
        if value < 0:
            raise KeyError(key)
        return int(value)

    def __contains__(self, key: int) -> bool:
        return self._values[key] >= 0


class _IndexHost:
    """The minimal host-graph facade :func:`adjust_distances` needs."""

    __slots__ = ("_num_nodes",)

    def __init__(self, num_nodes: int) -> None:
        self._num_nodes = num_nodes

    def has_node(self, node) -> bool:
        return isinstance(node, int) and 0 <= node < self._num_nodes


class CSRWienerSteinerEngine:
    """Array-backend engine behind ``wiener_steiner`` and the serving API.

    Holds the CSR arrays, the per-root BFS caches (distances, canonical
    parents, and the per-arc ``max(d_r[u], d_r[v])`` used by the Lemma-4
    reweighting), and the scoring kernels.  A one-shot ``wiener_steiner``
    call builds a throwaway engine for its single λ×root sweep;
    :class:`repro.core.service.ConnectorService` keeps one alive across
    many queries so the CSR arrays and root BFS data amortize.

    Parameters
    ----------
    graph:
        The host :class:`~repro.graphs.graph.Graph`; may be omitted when a
        prebuilt ``csr`` is supplied (the parallel workers do this — they
        receive only the int arrays, never a pickled graph).
    csr:
        A prebuilt :class:`~repro.graphs.csr.CSRGraph` to adopt instead of
        packing ``graph`` again.
    max_cached_roots:
        LRU bound on the per-root BFS cache (each entry holds ``O(|V| +
        |E|)`` arrays); ``None`` (default) means unbounded — right for a
        single sweep, wrong for a long-lived service.
    """

    def __init__(
        self,
        graph: Graph | None = None,
        csr: CSRGraph | None = None,
        max_cached_roots: int | None = None,
    ) -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by the dispatcher
            raise RuntimeError("the CSR backend requires numpy")
        if graph is None and csr is None:
            raise ValueError("need a graph or a prebuilt CSRGraph")
        self.graph = graph
        self.csr = csr if csr is not None else CSRGraph.from_graph(graph)
        # Flat-list copies feed the pure-Python heap loops; the scipy route
        # never touches them, so build them lazily.
        self._indptr_list: list[int] | None = None
        self._indices_list: list[int] | None = None
        self._root_cache = LRUCache(max_cached_roots)
        self._matrix = None

    def _flat_lists(self) -> tuple[list[int], list[int]]:
        if self._indptr_list is None:
            self._indptr_list = self.csr.indptr.tolist()
            self._indices_list = self.csr.indices.tolist()
        return self._indptr_list, self._indices_list

    def _scipy_matrix(self):
        """A reusable scipy matrix over the CSR structure (weights buffer
        overwritten per candidate); ``None`` when scipy is absent."""
        if _scipy_csr_matrix is None:
            return None
        if self._matrix is None:
            n = self.csr.num_nodes
            self._matrix = _scipy_csr_matrix(
                (
                    np.ones(len(self.csr.indices), dtype=np.float64),
                    self.csr.indices,
                    self.csr.indptr,
                ),
                shape=(n, n),
            )
        return self._matrix

    # -- line 1: per-root BFS cache -----------------------------------
    def _root_data(self, root: Node):
        cached = self._root_cache.get(root)
        if cached is None:
            root_idx = self.csr.index_of[root]
            dist, parent = self.csr.bfs_tree(root_idx)
            arc_max = np.maximum(dist[self.csr.arc_src], dist[self.csr.indices])
            cached = (dist, parent, arc_max)
            self._root_cache.put(root, cached)
        return cached

    @property
    def cached_roots(self) -> int:
        """How many root BFS entries are currently cached."""
        return len(self._root_cache)

    def apply_delta(self, delta, new_csr: CSRGraph) -> tuple[int, int]:
        """Rebase onto post-delta arrays with scoped root-cache invalidation.

        Adopts ``new_csr`` (dropping every structure derived from the old
        arrays: flat lists, the scipy matrix), then decides each cached
        root entry's fate from its *pre-delta* ``dist`` array and the
        delta — the same provable-invariance rules as
        :meth:`repro.core.wiener_steiner._DictEngine.apply_delta`, in
        index space.  Retained entries keep their ``(dist, parent)``
        arrays (with the gap-1 insert parent fix-up applied) and get
        their per-arc ``max`` array recomputed against the new arc
        layout — the exact expression a cold BFS would evaluate, over
        provably identical distances.  Returns ``(retained, evicted)``.
        """
        old_num_nodes = self.csr.num_nodes
        self.csr = new_csr
        self._indptr_list = None
        self._indices_list = None
        self._matrix = None
        if new_csr.num_nodes != old_num_nodes:
            return 0, self._root_cache.clear()
        index_of = new_csr.index_of
        ins = [(index_of[u], index_of[v]) for u, v in delta.inserts]
        dels = [(index_of[u], index_of[v]) for u, v in delta.deletes]
        arc_src = new_csr.arc_src
        arc_dst = new_csr.indices
        retained = evicted = 0
        for root in self._root_cache.keys():
            dist, parent, _stale_arc_max = self._root_cache.peek(root)
            safe = True
            fixups: list[tuple[int, int]] = []
            for iu, iv in ins:
                du = int(dist[iu])
                dv = int(dist[iv])
                if du < 0 and dv < 0:
                    continue
                if du < 0 or dv < 0:
                    safe = False
                    break
                gap = du - dv
                if gap == 0:
                    continue
                if abs(gap) == 1:
                    deep, shallow = (iu, iv) if gap > 0 else (iv, iu)
                    fixups.append((deep, shallow))
                    continue
                safe = False
                break
            if safe:
                for iu, iv in dels:
                    du = int(dist[iu])
                    dv = int(dist[iv])
                    if du < 0 and dv < 0:
                        continue
                    if du < 0 or dv < 0 or abs(du - dv) == 1:
                        safe = False
                        break
            if not safe:
                self._root_cache.pop(root)
                evicted += 1
                continue
            for deep, shallow in fixups:
                if shallow < int(parent[deep]):
                    parent[deep] = shallow
            arc_max = np.maximum(dist[arc_src], dist[arc_dst])
            self._root_cache.replace(root, (dist, parent, arc_max))
            retained += 1
        return retained, evicted

    def unreachable_queries(self, root: Node, query_set) -> list[Node]:
        dist = self._root_data(root)[0]
        index_of = self.csr.index_of
        return [q for q in query_set if dist[index_of[q]] < 0]

    # -- lines 7-11: one (root, λ) candidate --------------------------
    def candidate(
        self, root: Node, lam: float, query_set, adjust: bool
    ) -> frozenset[Node]:
        dist, parent, arc_max = self._root_data(root)
        weights = lam + arc_max / lam
        if bool((arc_max < 0).any()):
            # Arcs inside components unreachable from the root: the dict
            # backend omits them from G_{r,λ}; +inf is the array equivalent.
            weights = np.where(arc_max < 0, np.inf, weights)
        index_of = self.csr.index_of
        terminals = sorted({index_of[q] for q in query_set} | {index_of[root]})
        return self._candidate_from_weights(
            weights, dist, parent, terminals, query_set, adjust, index_of[root]
        )

    def candidates_for_root(
        self, root: Node, lams, query_set, adjust: bool
    ) -> list[frozenset[Node]]:
        """Lines 7–11 for one root across a λ batch, one vectorized pass.

        The whole grid's Lemma-4 weight rows are produced by a single
        broadcast ``λ[:, None] + arc_max[None, :] / λ[:, None]`` — the
        same elementwise float64 divide-and-add :meth:`candidate`
        evaluates per λ, so row ``i`` equals the single-λ weight array
        bit for bit — and the unreachable-arc mask, terminal index set,
        and root lookup are computed once instead of per λ.
        """
        dist, parent, arc_max = self._root_data(root)
        lam_arr = np.asarray(list(lams), dtype=np.float64)
        weight_rows = lam_arr[:, None] + arc_max[None, :] / lam_arr[:, None]
        if bool((arc_max < 0).any()):
            weight_rows = np.where(
                arc_max[None, :] < 0, np.inf, weight_rows
            )
        index_of = self.csr.index_of
        terminals = sorted({index_of[q] for q in query_set} | {index_of[root]})
        root_idx = index_of[root]
        return [
            self._candidate_from_weights(
                weight_rows[i], dist, parent, terminals, query_set, adjust,
                root_idx,
            )
            for i in range(len(lam_arr))
        ]

    def _candidate_from_weights(
        self, weights, dist, parent, terminals, query_set, adjust: bool,
        root_idx: int,
    ) -> frozenset[Node]:
        if _scipy_dijkstra is None:
            indptr_list, indices_list = self._flat_lists()
        else:
            indptr_list = indices_list = None
        tree_nodes, tree_edges = mehlhorn_steiner_csr(
            self.csr,
            weights,
            terminals,
            indptr_list=indptr_list,
            indices_list=indices_list,
            matrix=self._scipy_matrix(),
        )
        if adjust:
            # Rebuild the (small) tree with dict adjacency in canonical
            # insertion order so AdjustDistances walks it exactly like the
            # dict backend walks its label-space twin.
            tree = WeightedGraph()
            for idx in tree_nodes:
                tree.add_node(idx)
            for a, b in tree_edges:
                tree.add_edge(a, b, 1.0)
            adjusted = adjust_distances(
                _IndexHost(self.csr.num_nodes),
                tree,
                root_idx,
                bfs_distances_map=_IntArrayMapping(dist),
                bfs_parents_map=_IntArrayMapping(parent),
            )
            node_indices = set(adjusted.nodes())
        else:
            node_indices = set(tree_nodes)
        node_of = self.csr.node_of
        nodes = {node_of[i] for i in node_indices}
        nodes |= query_set
        return frozenset(nodes)

    # -- pruning primitives (exact integer data for the certified bounds)
    def host_distances(self, root: Node, nodes) -> list[int]:
        """Exact host BFS distances from ``root`` to each of ``nodes``.

        Raises on an unreachable node (distance ``-1``) — the sweep only
        asks about root-reachable vertices, so silence here would mask a
        pruning-soundness bug.
        """
        dist = self._root_data(root)[0]
        index_of = self.csr.index_of
        values = [int(dist[index_of[node]]) for node in nodes]
        if any(value < 0 for value in values):
            raise KeyError(f"node unreachable from root {root!r}")
        return values

    def induced_edge_count(self, nodes) -> int:
        """``|E(G[nodes])|`` by membership-filtered adjacency slices."""
        member_idx = np.sort(self.csr.indices_for(nodes))
        if member_idx.size < 2:
            return 0
        indptr = self.csr.indptr
        indices = self.csr.indices
        slices = [
            indices[int(indptr[i]) : int(indptr[i + 1])]
            for i in member_idx.tolist()
        ]
        neighbors = np.concatenate(slices) if slices else indices[:0]
        if neighbors.size == 0:
            return 0
        positions = np.searchsorted(member_idx, neighbors)
        positions[positions >= member_idx.size] = 0
        degree_sum = int((member_idx[positions] == neighbors).sum())
        return degree_sum // 2

    # -- line 15: scoring via induced index masks ---------------------
    def score_exact(self, nodes) -> float:
        return self.csr.induced(self.csr.indices_for(nodes)).wiener_index()

    def score_proxy(self, nodes, root: Node) -> float:
        sub = self.csr.induced(self.csr.indices_for(nodes))
        return len(nodes) * sub.rooted_distance_sum(sub.index_of[root])

    def score_sampled(self, nodes, num_sources: int, seed: int) -> float:
        """Remark-1 sampled Wiener estimate of ``G[nodes]`` on the arrays.

        Sources are drawn as *positions* into the canonically sorted node
        list (ascending relabeled index) with ``random.Random(seed)``, the
        same rule the dict engine applies, so both backends estimate from
        identical sources and the integer distance sums agree bit-for-bit.
        """
        sub = self.csr.induced(self.csr.indices_for(nodes))
        n = sub.num_nodes
        if n < 2:
            return 0.0
        if num_sources >= n:
            return sub.wiener_index()
        positions = random.Random(seed).sample(range(n), num_sources)
        total = 0
        for position in positions:
            dist = sub.bfs_distances(position)
            if bool((dist < 0).any()):
                return math.inf
            total += int(dist.sum())
        return (total / num_sources) * n / 2
