"""Uniform solve configuration: :class:`SolveOptions` and the :class:`Method` protocol.

Before the serving redesign every entry point grew its own keyword soup —
``wiener_steiner(beta, roots, selection, adjust, lambda_values, backend)``,
``parallel_wiener_steiner(max_workers, beta, adjust, backend)``,
``wiener_steiner_weighted(beta, max_lambda_values)`` — and the baseline
registry used a third, positional-only convention.  This module collapses
all of that into two small contracts:

* :class:`SolveOptions` — a frozen (hence hashable, hence cacheable)
  dataclass carrying every tunable of a connector solve.  It is the cache
  key unit of :class:`repro.core.service.ConnectorService` and the only
  payload besides the graph that the parallel workers receive.
* :class:`Method` — the protocol every connector method implements:
  ``solve(graph, query, options)`` plus a ``name`` tag.  The paper's
  algorithm (``ws-q``) and all four baselines (``st``, ``ppr``, ``cps``,
  ``ctp``) satisfy it, so the experiment harness and the CLI dispatch
  through one registry without per-method signatures.

``SolveOptions`` validates eagerly: a typo'd ``selection`` or a negative
``beta`` fails at construction, not halfway through a λ×root sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Iterable
from typing import Protocol, runtime_checkable

from repro.core.result import ConnectorResult
from repro.graphs.graph import Graph, Node

def stable_repr(value) -> str:
    """A repr whose equality tracks *value* equality for digest purposes.

    Plain ``repr`` distinguishes ``1`` from ``1.0`` even though Python
    (and every cache in this package) treats them as one key; numbers are
    therefore canonicalized through ``float`` and tuples recurse.  Used by
    :meth:`SolveOptions.stable_digest` and the sharded router's query
    hashing so equal keys never land on different shards.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return repr(value)
    if isinstance(value, (int, float)):
        return repr(float(value))
    if isinstance(value, tuple):
        return "(" + ",".join(stable_repr(v) for v in value) + ")"
    return repr(value)


#: Valid candidate-scoring policies (see :data:`SolveOptions.selection`).
SELECTIONS = ("a", "wiener", "auto", "sampled")

#: Valid engine backends (see :data:`SolveOptions.backend`).
BACKENDS = ("auto", "csr", "dict")


@dataclasses.dataclass(frozen=True)
class SolveOptions:
    """Every tunable of a connector solve, in one hashable value.

    Attributes
    ----------
    method:
        Method tag dispatched through :data:`repro.baselines.METHODS` —
        ``"ws-q"`` (default, the paper's algorithm), ``"st"``, ``"ppr"``,
        ``"cps"`` or ``"ctp"``.
    beta:
        λ-grid resolution of Algorithm 1 (the paper suggests ``β = 1``;
        smaller β tries more λ values).
    roots:
        Candidate roots; ``None`` (default) means the query set itself
        (Lemma 5).  Normalized to a tuple so options stay hashable.
    selection:
        Candidate scoring policy: ``"a"`` always uses the proxy
        ``A(H, r)``; ``"wiener"`` always scores exactly; ``"auto"``
        (default) scores exactly up to ``exact_threshold`` vertices and by
        the proxy beyond; ``"sampled"`` scores exactly up to
        ``exact_threshold`` and by the Remark-1 sampled Wiener estimator
        (``sample_sources`` BFS sources, deterministically seeded with
        ``sample_seed``) beyond — the approximate-scoring path for huge
        candidates.
    adjust:
        Apply the Lemma-2 ``AdjustDistances`` rebalancing (default on;
        turning it off is an ablation).
    lambda_values:
        Explicit λ grid overriding the geometric sweep; normalized to a
        tuple.
    backend:
        ``"auto"`` (default), ``"csr"`` or ``"dict"`` — both backends
        return bit-identical connectors, see :mod:`repro.core.fastpath`.
    exact_threshold:
        Largest candidate scored exactly under ``"auto"``/``"sampled"``.
    sample_sources:
        BFS source budget of the ``"sampled"`` estimator.
    sample_seed:
        Seed of the ``"sampled"`` estimator's source choice — fixed so
        repeated scoring of one candidate is deterministic (and therefore
        cacheable and backend-identical).
    prune:
        Apply certified landmark-bound pruning to the λ×root sweep
        (default on).  Pruning only ever skips ``(root, λ)`` pairs whose
        provable score lower bound exceeds the running incumbent, so the
        returned connector is bit-identical either way; turning it off is
        the benchmark/ablation escape hatch.  Excluded from
        :meth:`stable_digest` — pruned and unpruned solves of one query
        are the same answer, so they must share ring placement, gateway
        coalescing, and remote routing.
    """

    method: str = "ws-q"
    beta: float = 1.0
    roots: tuple[Node, ...] | None = None
    selection: str = "auto"
    adjust: bool = True
    lambda_values: tuple[float, ...] | None = None
    backend: str = "auto"
    exact_threshold: int = 600
    sample_sources: int = 64
    sample_seed: int = 0
    prune: bool = True

    def __post_init__(self) -> None:
        # Normalize iterable fields to tuples so the options value is
        # hashable (it is used directly as a cache key).
        if self.roots is not None and not isinstance(self.roots, tuple):
            object.__setattr__(self, "roots", tuple(self.roots))
        if self.lambda_values is not None and not isinstance(
            self.lambda_values, tuple
        ):
            object.__setattr__(self, "lambda_values", tuple(self.lambda_values))
        if not self.method or not isinstance(self.method, str):
            raise ValueError(f"method must be a non-empty string, got {self.method!r}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if self.selection not in SELECTIONS:
            raise ValueError(
                f"unknown selection policy {self.selection!r}; "
                f"choose from {SELECTIONS}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.lambda_values is not None and not self.lambda_values:
            raise ValueError(
                "lambda_values must be non-empty when given (omit it or "
                "pass None for the geometric grid)"
            )
        if self.exact_threshold < 0:
            raise ValueError(
                f"exact_threshold must be non-negative, got {self.exact_threshold}"
            )
        if self.sample_sources < 1:
            raise ValueError(
                f"sample_sources must be at least 1, got {self.sample_sources}"
            )

    def replace(self, **changes) -> "SolveOptions":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def stable_digest(self) -> bytes:
        """A process-stable 20-byte digest of this options value.

        ``hash()`` is salted per interpreter (``PYTHONHASHSEED``), so it
        cannot place keys on a consistent-hash ring that must agree across
        router restarts and shard processes.  This digest is derived from
        the :func:`stable_repr` of every field instead: equal options
        (``beta=1`` and ``beta=1.0`` included) have equal digests in every
        process, forever — the property the
        :class:`repro.core.sharded.ShardedConnectorService` router keys on.

        ``prune`` is deliberately excluded: pruning is certified to
        return the same connector bit for bit, so a pruned and an
        unpruned ask of one query are the *same key* — they must land on
        the same shard, coalesce in the gateway, and answer each other
        from the result caches of remote daemons that never saw the flag.
        """
        fields = tuple(
            (f.name, stable_repr(getattr(self, f.name)))
            for f in dataclasses.fields(self)
            if f.name != "prune"
        )
        return hashlib.sha1(repr(fields).encode("utf-8")).digest()


@runtime_checkable
class Method(Protocol):
    """The uniform contract of every connector method.

    ``METHODS[tag]`` values satisfy this protocol; they additionally stay
    *callable* with the legacy ``(graph, query, **kwargs)`` convention so
    pre-redesign call sites keep working unchanged.
    """

    name: str

    def solve(
        self,
        graph: Graph,
        query: Iterable[Node],
        options: SolveOptions | None = None,
    ) -> ConnectorResult:
        """Solve one query on ``graph`` under ``options``."""
        ...  # pragma: no cover - protocol definition


class FunctionMethod:
    """Adapt a plain ``(graph, query, **kwargs) -> ConnectorResult`` callable.

    The baselines predate :class:`SolveOptions` and take no Algorithm-1
    tunables, so their adapter simply ignores the options value; it exists
    to give them the same ``solve``/``name`` surface as ``ws-q``.
    """

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn) -> None:
        self.name = name
        self._fn = fn

    def solve(
        self,
        graph: Graph,
        query: Iterable[Node],
        options: SolveOptions | None = None,
    ) -> ConnectorResult:
        return self._fn(graph, query)

    def __call__(self, graph: Graph, query: Iterable[Node], *args, **kwargs):
        return self._fn(graph, query, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}({self.name!r})"


__all__ = ["BACKENDS", "SELECTIONS", "FunctionMethod", "Method", "SolveOptions", "stable_repr"]
