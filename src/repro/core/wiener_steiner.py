"""``WienerSteiner`` — Algorithm 1, the paper's main contribution.

A constant-factor approximation for Min Wiener Connector running in
``Õ(|Q| |E|)``:

1. compute BFS distances from every query vertex (line 1);
2. sweep a geometric grid of the balance parameter ``λ`` (Lemma 3 shows the
   right value lies in ``[1/√2, √|V|]``; a ``(1+β)`` grid loses only a
   ``(1+β)²`` factor — Step 5 of Section 4);
3. for every candidate root ``r ∈ Q`` (Lemma 5 licenses restricting roots
   to the query set) build the reweighted graph ``G_{r,λ}`` with edge
   weights ``λ + max(d_G(r,u), d_G(r,v)) / λ`` (Lemma 4) and run Mehlhorn's
   Steiner 2-approximation on terminals ``Q ∪ {r}``;
4. rebalance the resulting tree with ``AdjustDistances`` (Lemma 2);
5. keep the candidate minimizing ``A(H, r)`` — or, following Remark 1, the
   exact Wiener index when the candidate is small enough to afford it.

Backend architecture
--------------------

The λ×root sweep (grid, root list, dedup, scoring policy, selection) is
backend-independent; only the per-``(r, λ)`` candidate construction and
the scoring kernels are dispatched:

* ``backend="dict"`` — the pure-Python reference path: hashable-node
  ``WeightedGraph`` rebuilt per instance, dict/deque BFS, heap Dijkstra.
  Always available; the debugging escape hatch.
* ``backend="csr"`` — :class:`repro.core.fastpath.CSRWienerSteinerEngine`:
  the graph is relabeled once to ``0..n-1`` int arrays, BFS caches /
  reweighting / Steiner solving / scoring all run on numpy arrays.
  Requires numpy.
* ``backend="auto"`` (default) — ``"csr"`` when numpy is available and the
  graph has at least :data:`CSR_AUTO_THRESHOLD` nodes, else ``"dict"``.

Both backends break every tie by the canonical relabeled index (see
:func:`repro.graphs.csr.order_map`), so they return **identical**
connectors — the property-test suite asserts this on random corpora.

Serving architecture
--------------------

Since the ConnectorService redesign this module is the *reference layer*:
it owns the engine primitives (the dict engine, the λ grid, the scoring
policy) while the λ×root sweep itself lives in
:class:`repro.core.service.ConnectorService`, which keeps engines, root
BFS data, candidates, scores and results cached across queries.
:func:`wiener_steiner` remains the stable one-shot entry point — it now
builds a throwaway service per call, so its behavior (and its connectors,
bit for bit) are unchanged while multi-query callers migrate to
``ConnectorService.solve_many``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Mapping

from repro.core.adjust import adjust_distances
from repro.core.lru import LRUCache
from repro.core.steiner import mehlhorn_steiner_tree
from repro.errors import GraphError, InvalidQueryError
from repro.graphs.csr import HAS_NUMPY, order_map
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.traversal import bfs_distances, bfs_tree_canonical
from repro.graphs.wiener import rooted_distance_sum, wiener_index

#: Candidates at most this large are scored with the exact Wiener index
#: when ``selection="auto"`` (Remark 1: exact scoring is affordable because
#: solutions are typically small).
EXACT_SCORING_THRESHOLD = 600

#: ``backend="auto"`` switches to the CSR array backend at this many nodes;
#: below it the relabeling overhead eats the vectorization gain.
CSR_AUTO_THRESHOLD = 64


def wiener_steiner(
    graph: Graph,
    query: Iterable[Node],
    beta: float = 1.0,
    roots: Iterable[Node] | None = None,
    selection: str = "auto",
    adjust: bool = True,
    lambda_values: Iterable[float] | None = None,
    backend: str = "auto",
) -> ConnectorResult:
    """Return an approximate minimum Wiener connector for ``query``.

    Parameters
    ----------
    graph:
        The host graph ``G`` — connected, simple, undirected, unweighted.
    query:
        The query set ``Q`` (at least one vertex, all in ``G``).
    beta:
        Grid resolution for the λ sweep; the paper suggests ``β = 1``.
        Smaller β tries more λ values (better quality, more time).
    roots:
        Candidate roots; defaults to ``Q`` (Lemma 5).  Pass all of
        ``graph.nodes()`` to ablate the root restriction.
    selection:
        ``"a"`` scores candidates by the proxy ``A(H, r)`` (the worst-case
        analysis of Theorem 4); ``"wiener"`` scores every candidate by its
        exact Wiener index; ``"auto"`` (default) uses exact scoring for
        candidates up to :data:`EXACT_SCORING_THRESHOLD` vertices and the
        proxy beyond; ``"sampled"`` replaces that proxy tail with the
        Remark-1 sampled Wiener estimator.
    adjust:
        Apply the Lemma-2 ``AdjustDistances`` rebalancing (default).  The
        approximation guarantee needs it; turning it off is an ablation.
    lambda_values:
        Explicit λ grid overriding the geometric sweep.
    backend:
        ``"auto"`` (default), ``"csr"``, or ``"dict"`` — see the module
        docstring.  Both backends return identical connectors.

    Returns
    -------
    ConnectorResult
        With ``metadata`` keys ``root``, ``lambda``, ``candidates``
        (number of distinct candidate vertex sets scored), ``backend``
        and ``runtime_seconds``.

    Raises
    ------
    InvalidQueryError
        If ``query`` is empty or mentions vertices outside the graph.
    DisconnectedGraphError
        If the query vertices do not lie in one connected component.
    GraphError
        If ``backend="csr"`` is forced while numpy is unavailable.
    """
    from repro.core.options import SolveOptions
    from repro.core.service import ConnectorService

    if selection not in ("a", "wiener", "auto", "sampled"):
        raise ValueError(f"unknown selection policy {selection!r}")
    options = SolveOptions(
        beta=beta,
        roots=tuple(roots) if roots is not None else None,
        selection=selection,
        adjust=adjust,
        lambda_values=tuple(lambda_values) if lambda_values is not None else None,
        backend=backend,
        exact_threshold=EXACT_SCORING_THRESHOLD,
    )
    # A throwaway service sweeps once and dies: an unbounded root cache is
    # right here (every root is revisited per λ pass), while the service
    # default LRU bound would thrash on sweeps with many hundreds of roots.
    # A stream-constructed CSRGraph is accepted directly — the CSR-only
    # service path, so 10^6+-node instances never need the dict form.
    from repro.graphs.csr import CSRGraph

    if isinstance(graph, CSRGraph):
        return ConnectorService(
            None, options, csr=graph, max_cached_roots=None
        ).solve(query)
    return ConnectorService(graph, options, max_cached_roots=None).solve(query)


#: Public alias matching the paper's problem name.
minimum_wiener_connector = wiener_steiner


def _resolve_backend(backend: str, graph: Graph) -> str:
    if backend == "auto":
        if HAS_NUMPY and graph.num_nodes >= CSR_AUTO_THRESHOLD:
            return "csr"
        return "dict"
    if backend == "csr":
        if not HAS_NUMPY:
            raise GraphError(
                "backend='csr' requires numpy; use backend='dict' instead"
            )
        return "csr"
    if backend == "dict":
        return "dict"
    raise ValueError(f"unknown backend {backend!r}")


def _make_engine(
    backend_name: str, graph: Graph, max_cached_roots: int | None = None
):
    if backend_name == "csr":
        from repro.core.fastpath import CSRWienerSteinerEngine

        return CSRWienerSteinerEngine(graph, max_cached_roots=max_cached_roots)
    return _DictEngine(graph, max_cached_roots=max_cached_roots)


class _DictEngine:
    """The pure-Python reference engine (hashable nodes, dict adjacency).

    Structurally this is the seed implementation — a fresh reweighted
    ``WeightedGraph`` per ``(root, λ)`` instance — with tie-breaks
    canonicalized through the node order map so its output matches the CSR
    engine's exactly.  Like the CSR engine, the per-root BFS cache is
    optionally LRU-bounded so a long-lived service cannot grow without
    bound.
    """

    def __init__(
        self, graph: Graph, max_cached_roots: int | None = None
    ) -> None:
        self.graph = graph
        self._order = order_map(graph)
        self._root_cache = LRUCache(max_cached_roots)

    def _root_data(self, root: Node) -> tuple[dict, dict]:
        cached = self._root_cache.get(root)
        if cached is None:
            cached = bfs_tree_canonical(self.graph, root, self._order)
            self._root_cache.put(root, cached)
        return cached

    @property
    def cached_roots(self) -> int:
        """How many root BFS entries are currently cached."""
        return len(self._root_cache)

    def unreachable_queries(self, root: Node, query_set) -> list[Node]:
        distances = self._root_data(root)[0]
        return [q for q in query_set if q not in distances]

    def candidate(
        self, root: Node, lam: float, query_set, adjust: bool
    ) -> frozenset[Node]:
        """Lines 7–11 of Algorithm 1 for one ``(r, λ)`` pair."""
        return self.candidates_for_root(root, [lam], query_set, adjust)[0]

    def candidates_for_root(
        self, root: Node, lams, query_set, adjust: bool
    ) -> list[frozenset[Node]]:
        """Lines 7–11 for one root across a λ batch, sharing the root data.

        The λ grid only changes the *reweighting* of ``G_{r,λ}``: the
        per-arc ``max(d_r(u), d_r(v))`` values, the node iteration order,
        and the unreachable-endpoint skip rule are identical for every λ.
        One pass extracts that shared arc list; each λ then rebuilds its
        weighted instance from it — the same edges in the same insertion
        order with the same ``λ + max(·)/λ`` expression the single-λ
        construction always evaluated, so each returned candidate is
        bit-identical to an isolated :meth:`candidate` call.
        """
        host_distances, host_parents = self._root_data(root)
        node_list = list(self.graph.nodes())
        arcs: list[tuple[Node, Node, int]] = []
        for u, v in self.graph.edges():
            du = host_distances.get(u)
            dv = host_distances.get(v)
            if du is None or dv is None:
                continue
            arcs.append((u, v, du if du >= dv else dv))
        terminals = set(query_set) | {root}
        candidates: list[frozenset[Node]] = []
        for lam in lams:
            reweighted = WeightedGraph()
            for node in node_list:
                reweighted.add_node(node)
            for u, v, gap in arcs:
                reweighted.add_edge(u, v, lam + gap / lam)
            # G_{r,λ} weights are λ + max(·)/λ ≥ λ > 0 by construction.
            tree = mehlhorn_steiner_tree(
                reweighted, terminals, assume_positive_weights=True
            )
            if adjust:
                adjusted = adjust_distances(
                    self.graph,
                    tree,
                    root,
                    bfs_distances_map=host_distances,
                    bfs_parents_map=host_parents,
                )
                nodes = set(adjusted.nodes())
            else:
                nodes = set(tree.nodes())
            nodes |= query_set
            candidates.append(frozenset(nodes))
        return candidates

    # -- pruning primitives (exact integer data for the certified bounds)
    def host_distances(self, root: Node, nodes) -> list[int]:
        """Exact host BFS distances from ``root`` to each of ``nodes``.

        Raises ``KeyError`` on an unreachable node — the sweep only asks
        about root-reachable vertices (its reachability check ran first),
        so silence here would mask a pruning-soundness bug.
        """
        distances = self._root_data(root)[0]
        return [distances[node] for node in nodes]

    def induced_edge_count(self, nodes) -> int:
        """``|E(G[nodes])|`` by membership-filtered adjacency scans."""
        members = set(nodes)
        degree_sum = sum(
            1
            for node in members
            for neighbor in self.graph.neighbors(node)
            if neighbor in members
        )
        return degree_sum // 2

    def score_exact(self, nodes) -> float:
        return wiener_index(self.graph.subgraph(nodes))

    def score_proxy(self, nodes, root: Node) -> float:
        return len(nodes) * rooted_distance_sum(self.graph.subgraph(nodes), root)

    def score_sampled(self, nodes, num_sources: int, seed: int) -> float:
        """Remark-1 sampled Wiener estimate of ``G[nodes]``.

        Sources are sampled as positions into the canonically sorted node
        list (ascending order-map index) — the exact rule of
        :meth:`repro.core.fastpath.CSRWienerSteinerEngine.score_sampled` —
        so both backends score the same candidate identically.
        """
        ordered = sorted(nodes, key=self._order.__getitem__)
        n = len(ordered)
        if n < 2:
            return 0.0
        sub = self.graph.subgraph(nodes)
        if num_sources >= n:
            return wiener_index(sub)
        positions = random.Random(seed).sample(range(n), num_sources)
        total = 0
        for position in positions:
            distances = bfs_distances(sub, ordered[position])
            if len(distances) != n:
                return math.inf
            total += sum(distances.values())
        return (total / num_sources) * n / 2

    def apply_delta(self, delta, *, nodes_changed: bool) -> tuple[int, int]:
        """Scoped invalidation of the root-BFS cache after a graph delta.

        Called *after* the host graph (which this engine shares by
        reference) has been mutated; the cached ``(distances, parents)``
        entries still describe the pre-delta epoch and are the analysis
        input.  Returns ``(retained, evicted)``.

        A root entry survives only when the delta **provably** preserves
        its BFS tree:

        * insert ``(u, v)`` with both endpoints unreachable from the root
          — the edge joins components the root never sees;
        * insert with equal distances — a same-level edge lies on no
          shortest path and previous-level neighbor sets are untouched;
        * insert with distances differing by exactly 1 — distances are
          preserved (a shortcut needs a gap ≥ 2), and the single possible
          parent change (the deeper endpoint gaining a lower-order
          previous-level neighbor) is fixed up in place;
        * delete with both endpoints unreachable, or with a distance gap
          ≠ 1 — shortest paths only use gap-1 edges, so no current
          shortest path (and no canonical parent edge) is lost.

        Everything else — inserts bridging a gap ≥ 2 or reaching into an
        unreachable component, deletes of gap-1 edges — may move
        distances or parents, so the entry is evicted.  When the delta
        changed the node set (``nodes_changed``) every entry is evicted:
        a cached BFS that never saw a node cannot answer for it, and the
        canonical order map must be rebuilt.
        """
        if nodes_changed:
            evicted = self._root_cache.clear()
            self._order = order_map(self.graph)
            return 0, evicted
        order = self._order
        retained = evicted = 0
        for root in self._root_cache.keys():
            distances, parents = self._root_cache.peek(root)
            safe = True
            fixups: list[tuple[Node, Node]] = []
            for u, v in delta.inserts:
                du = distances.get(u)
                dv = distances.get(v)
                if du is None and dv is None:
                    continue
                if du is None or dv is None:
                    safe = False
                    break
                gap = du - dv
                if gap == 0:
                    continue
                if abs(gap) == 1:
                    deep, shallow = (u, v) if gap > 0 else (v, u)
                    fixups.append((deep, shallow))
                    continue
                safe = False
                break
            if safe:
                for u, v in delta.deletes:
                    du = distances.get(u)
                    dv = distances.get(v)
                    if du is None and dv is None:
                        continue
                    if du is None or dv is None or abs(du - dv) == 1:
                        safe = False
                        break
            if not safe:
                self._root_cache.pop(root)
                evicted += 1
                continue
            for deep, shallow in fixups:
                current = parents.get(deep)
                if current is not None and order[shallow] < order[current]:
                    parents[deep] = shallow
            retained += 1
        return retained, evicted


def _validate_query(graph: Graph, query_set: frozenset[Node]) -> None:
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    missing = [q for q in query_set if not graph.has_node(q)]
    if missing:
        raise InvalidQueryError(
            f"query vertices not in graph: {sorted(map(repr, missing))}"
        )


def _lambda_grid(num_nodes: int, beta: float) -> list[float]:
    """Geometric grid of λ values covering ``[1/√2, √|V|]`` (Lemma 3)."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    low = 1 / math.sqrt(2)
    high = math.sqrt(max(num_nodes, 2))
    grid = []
    value = low
    while value < high:
        grid.append(value)
        value *= 1 + beta
    grid.append(high)
    return grid


def _reweighted_graph(
    graph: Graph, host_distances: Mapping[Node, int], lam: float
) -> WeightedGraph:
    """Build ``G_{r,λ}`` with ``w(u,v) = λ + max(d_G(r,u), d_G(r,v)) / λ``.

    Lemma 4 shows Steiner trees of this weighted graph approximate the
    node-weighted objective ``B(·, r, λ)`` within a factor 2.  Edges inside
    components unreachable from the root are omitted — they can never be
    useful for this root (the CSR backend marks them ``+inf`` instead).
    """
    reweighted = WeightedGraph()
    for node in graph.nodes():
        reweighted.add_node(node)
    for u, v in graph.edges():
        du = host_distances.get(u)
        dv = host_distances.get(v)
        if du is None or dv is None:
            continue
        reweighted.add_edge(u, v, lam + max(du, dv) / lam)
    return reweighted


def _score(
    engine,
    nodes: frozenset[Node],
    root: Node,
    selection: str,
    exact_threshold: int = EXACT_SCORING_THRESHOLD,
    sample_sources: int = 64,
    sample_seed: int = 0,
) -> float:
    """Score a candidate per the selection policy (line 15 / Remark 1).

    ``"a"`` always uses the proxy ``A(H, r)``; ``"wiener"`` always scores
    exactly; ``"auto"`` scores exactly up to ``exact_threshold`` vertices
    and by the proxy beyond; ``"sampled"`` replaces that proxy tail with
    the Remark-1 sampled Wiener estimator (``sample_sources`` BFS sources,
    deterministically seeded).  Exact and sampled sums are integers, so
    both engines return bit-equal scores for the same candidate set.
    """
    if selection not in ("a", "wiener", "auto", "sampled"):
        raise ValueError(f"unknown selection policy {selection!r}")
    use_exact = selection == "wiener" or (
        selection in ("auto", "sampled") and len(nodes) <= exact_threshold
    )
    if use_exact:
        return engine.score_exact(nodes)
    if selection == "sampled":
        return engine.score_sampled(nodes, sample_sources, sample_seed)
    return engine.score_proxy(nodes, root)
