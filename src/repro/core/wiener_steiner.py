"""``WienerSteiner`` — Algorithm 1, the paper's main contribution.

A constant-factor approximation for Min Wiener Connector running in
``Õ(|Q| |E|)``:

1. compute BFS distances from every query vertex (line 1);
2. sweep a geometric grid of the balance parameter ``λ`` (Lemma 3 shows the
   right value lies in ``[1/√2, √|V|]``; a ``(1+β)`` grid loses only a
   ``(1+β)²`` factor — Step 5 of Section 4);
3. for every candidate root ``r ∈ Q`` (Lemma 5 licenses restricting roots
   to the query set) build the reweighted graph ``G_{r,λ}`` with edge
   weights ``λ + max(d_G(r,u), d_G(r,v)) / λ`` (Lemma 4) and run Mehlhorn's
   Steiner 2-approximation on terminals ``Q ∪ {r}``;
4. rebalance the resulting tree with ``AdjustDistances`` (Lemma 2);
5. keep the candidate minimizing ``A(H, r)`` — or, following Remark 1, the
   exact Wiener index when the candidate is small enough to afford it.

Backend architecture
--------------------

The λ×root sweep (grid, root list, dedup, scoring policy, selection) is
backend-independent; only the per-``(r, λ)`` candidate construction and
the scoring kernels are dispatched:

* ``backend="dict"`` — the pure-Python reference path: hashable-node
  ``WeightedGraph`` rebuilt per instance, dict/deque BFS, heap Dijkstra.
  Always available; the debugging escape hatch.
* ``backend="csr"`` — :class:`repro.core.fastpath.CSRWienerSteinerEngine`:
  the graph is relabeled once to ``0..n-1`` int arrays, BFS caches /
  reweighting / Steiner solving / scoring all run on numpy arrays.
  Requires numpy.
* ``backend="auto"`` (default) — ``"csr"`` when numpy is available and the
  graph has at least :data:`CSR_AUTO_THRESHOLD` nodes, else ``"dict"``.

Both backends break every tie by the canonical relabeled index (see
:func:`repro.graphs.csr.order_map`), so they return **identical**
connectors — the property-test suite asserts this on random corpora.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Mapping

from repro.errors import DisconnectedGraphError, GraphError, InvalidQueryError
from repro.core.adjust import adjust_distances
from repro.core.result import ConnectorResult
from repro.core.steiner import mehlhorn_steiner_tree
from repro.graphs.csr import HAS_NUMPY, order_map
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.traversal import bfs_tree_canonical
from repro.graphs.wiener import rooted_distance_sum, wiener_index

#: Candidates at most this large are scored with the exact Wiener index
#: when ``selection="auto"`` (Remark 1: exact scoring is affordable because
#: solutions are typically small).
EXACT_SCORING_THRESHOLD = 600

#: ``backend="auto"`` switches to the CSR array backend at this many nodes;
#: below it the relabeling overhead eats the vectorization gain.
CSR_AUTO_THRESHOLD = 64


def wiener_steiner(
    graph: Graph,
    query: Iterable[Node],
    beta: float = 1.0,
    roots: Iterable[Node] | None = None,
    selection: str = "auto",
    adjust: bool = True,
    lambda_values: Iterable[float] | None = None,
    backend: str = "auto",
) -> ConnectorResult:
    """Return an approximate minimum Wiener connector for ``query``.

    Parameters
    ----------
    graph:
        The host graph ``G`` — connected, simple, undirected, unweighted.
    query:
        The query set ``Q`` (at least one vertex, all in ``G``).
    beta:
        Grid resolution for the λ sweep; the paper suggests ``β = 1``.
        Smaller β tries more λ values (better quality, more time).
    roots:
        Candidate roots; defaults to ``Q`` (Lemma 5).  Pass all of
        ``graph.nodes()`` to ablate the root restriction.
    selection:
        ``"a"`` scores candidates by the proxy ``A(H, r)`` (the worst-case
        analysis of Theorem 4); ``"wiener"`` scores every candidate by its
        exact Wiener index; ``"auto"`` (default) uses exact scoring for
        candidates up to :data:`EXACT_SCORING_THRESHOLD` vertices and the
        proxy beyond.
    adjust:
        Apply the Lemma-2 ``AdjustDistances`` rebalancing (default).  The
        approximation guarantee needs it; turning it off is an ablation.
    lambda_values:
        Explicit λ grid overriding the geometric sweep.
    backend:
        ``"auto"`` (default), ``"csr"``, or ``"dict"`` — see the module
        docstring.  Both backends return identical connectors.

    Returns
    -------
    ConnectorResult
        With ``metadata`` keys ``root``, ``lambda``, ``candidates``
        (number of distinct candidate vertex sets scored), ``backend``
        and ``runtime_seconds``.

    Raises
    ------
    InvalidQueryError
        If ``query`` is empty or mentions vertices outside the graph.
    DisconnectedGraphError
        If the query vertices do not lie in one connected component.
    GraphError
        If ``backend="csr"`` is forced while numpy is unavailable.
    """
    started = time.perf_counter()
    query_set = frozenset(query)
    _validate_query(graph, query_set)
    backend_name = _resolve_backend(backend, graph)

    if len(query_set) == 1:
        only = next(iter(query_set))
        return ConnectorResult(
            host=graph, nodes=frozenset([only]), query=query_set, method="ws-q",
            metadata={"root": only, "lambda": None, "candidates": 1,
                      "backend": backend_name,
                      "runtime_seconds": time.perf_counter() - started},
        )

    root_list = list(dict.fromkeys(roots)) if roots is not None else sorted(
        query_set, key=repr
    )
    if not root_list:
        raise InvalidQueryError("root candidate list must be non-empty")

    engine = _make_engine(backend_name, graph)

    # Line 1: one BFS per query vertex / root candidate (cached by the engine).
    for root in root_list:
        unreachable = engine.unreachable_queries(root, query_set)
        if unreachable:
            raise DisconnectedGraphError(
                f"query vertices {sorted(map(repr, unreachable))} unreachable "
                f"from root {root!r}"
            )

    grid = list(lambda_values) if lambda_values is not None else _lambda_grid(
        graph.num_nodes, beta
    )

    best_key: float = math.inf
    best_nodes: frozenset[Node] | None = None
    best_root: Node | None = None
    best_lambda: float | None = None
    scored: dict[frozenset[Node], float] = {}

    for lam in grid:
        for root in root_list:
            candidate = engine.candidate(root, lam, query_set, adjust)
            if candidate in scored:
                continue
            key = _score(engine, candidate, root, selection)
            scored[candidate] = key
            if key < best_key:
                best_key = key
                best_nodes = candidate
                best_root = root
                best_lambda = lam

    assert best_nodes is not None  # the grid and root list are non-empty
    return ConnectorResult(
        host=graph,
        nodes=best_nodes,
        query=query_set,
        method="ws-q",
        metadata={
            "root": best_root,
            "lambda": best_lambda,
            "candidates": len(scored),
            "backend": backend_name,
            "runtime_seconds": time.perf_counter() - started,
        },
    )


#: Public alias matching the paper's problem name.
minimum_wiener_connector = wiener_steiner


def _resolve_backend(backend: str, graph: Graph) -> str:
    if backend == "auto":
        if HAS_NUMPY and graph.num_nodes >= CSR_AUTO_THRESHOLD:
            return "csr"
        return "dict"
    if backend == "csr":
        if not HAS_NUMPY:
            raise GraphError(
                "backend='csr' requires numpy; use backend='dict' instead"
            )
        return "csr"
    if backend == "dict":
        return "dict"
    raise ValueError(f"unknown backend {backend!r}")


def _make_engine(backend_name: str, graph: Graph):
    if backend_name == "csr":
        from repro.core.fastpath import CSRWienerSteinerEngine

        return CSRWienerSteinerEngine(graph)
    return _DictEngine(graph)


class _DictEngine:
    """The pure-Python reference engine (hashable nodes, dict adjacency).

    Structurally this is the seed implementation — a fresh reweighted
    ``WeightedGraph`` per ``(root, λ)`` instance — with tie-breaks
    canonicalized through the node order map so its output matches the CSR
    engine's exactly.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._order = order_map(graph)
        self._root_cache: dict[Node, tuple[dict, dict]] = {}

    def _root_data(self, root: Node) -> tuple[dict, dict]:
        cached = self._root_cache.get(root)
        if cached is None:
            cached = bfs_tree_canonical(self.graph, root, self._order)
            self._root_cache[root] = cached
        return cached

    def unreachable_queries(self, root: Node, query_set) -> list[Node]:
        distances = self._root_data(root)[0]
        return [q for q in query_set if q not in distances]

    def candidate(
        self, root: Node, lam: float, query_set, adjust: bool
    ) -> frozenset[Node]:
        """Lines 7–11 of Algorithm 1 for one ``(r, λ)`` pair."""
        host_distances, host_parents = self._root_data(root)
        reweighted = _reweighted_graph(self.graph, host_distances, lam)
        terminals = set(query_set) | {root}
        # G_{r,λ} weights are λ + max(·)/λ ≥ λ > 0 by construction.
        tree = mehlhorn_steiner_tree(
            reweighted, terminals, assume_positive_weights=True
        )
        if adjust:
            adjusted = adjust_distances(
                self.graph,
                tree,
                root,
                bfs_distances_map=host_distances,
                bfs_parents_map=host_parents,
            )
            nodes = set(adjusted.nodes())
        else:
            nodes = set(tree.nodes())
        nodes |= query_set
        return frozenset(nodes)

    def score_exact(self, nodes) -> float:
        return wiener_index(self.graph.subgraph(nodes))

    def score_proxy(self, nodes, root: Node) -> float:
        return len(nodes) * rooted_distance_sum(self.graph.subgraph(nodes), root)


def _validate_query(graph: Graph, query_set: frozenset[Node]) -> None:
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    missing = [q for q in query_set if not graph.has_node(q)]
    if missing:
        raise InvalidQueryError(
            f"query vertices not in graph: {sorted(map(repr, missing))}"
        )


def _lambda_grid(num_nodes: int, beta: float) -> list[float]:
    """Geometric grid of λ values covering ``[1/√2, √|V|]`` (Lemma 3)."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    low = 1 / math.sqrt(2)
    high = math.sqrt(max(num_nodes, 2))
    grid = []
    value = low
    while value < high:
        grid.append(value)
        value *= 1 + beta
    grid.append(high)
    return grid


def _reweighted_graph(
    graph: Graph, host_distances: Mapping[Node, int], lam: float
) -> WeightedGraph:
    """Build ``G_{r,λ}`` with ``w(u,v) = λ + max(d_G(r,u), d_G(r,v)) / λ``.

    Lemma 4 shows Steiner trees of this weighted graph approximate the
    node-weighted objective ``B(·, r, λ)`` within a factor 2.  Edges inside
    components unreachable from the root are omitted — they can never be
    useful for this root (the CSR backend marks them ``+inf`` instead).
    """
    reweighted = WeightedGraph()
    for node in graph.nodes():
        reweighted.add_node(node)
    for u, v in graph.edges():
        du = host_distances.get(u)
        dv = host_distances.get(v)
        if du is None or dv is None:
            continue
        reweighted.add_edge(u, v, lam + max(du, dv) / lam)
    return reweighted


def _score(engine, nodes: frozenset[Node], root: Node, selection: str) -> float:
    """Score a candidate per the selection policy (line 15 / Remark 1).

    Exact Wiener sums are integers, so both engines return bit-equal
    scores for the same candidate set.
    """
    if selection not in ("a", "wiener", "auto"):
        raise ValueError(f"unknown selection policy {selection!r}")
    use_exact = selection == "wiener" or (
        selection == "auto" and len(nodes) <= EXACT_SCORING_THRESHOLD
    )
    if use_exact:
        return engine.score_exact(nodes)
    return engine.score_proxy(nodes, root)
