"""``WienerSteiner`` — Algorithm 1, the paper's main contribution.

A constant-factor approximation for Min Wiener Connector running in
``Õ(|Q| |E|)``:

1. compute BFS distances from every query vertex (line 1);
2. sweep a geometric grid of the balance parameter ``λ`` (Lemma 3 shows the
   right value lies in ``[1/√2, √|V|]``; a ``(1+β)`` grid loses only a
   ``(1+β)²`` factor — Step 5 of Section 4);
3. for every candidate root ``r ∈ Q`` (Lemma 5 licenses restricting roots
   to the query set) build the reweighted graph ``G_{r,λ}`` with edge
   weights ``λ + max(d_G(r,u), d_G(r,v)) / λ`` (Lemma 4) and run Mehlhorn's
   Steiner 2-approximation on terminals ``Q ∪ {r}``;
4. rebalance the resulting tree with ``AdjustDistances`` (Lemma 2);
5. keep the candidate minimizing ``A(H, r)`` — or, following Remark 1, the
   exact Wiener index when the candidate is small enough to afford it.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Mapping

from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.core.adjust import adjust_distances
from repro.core.result import ConnectorResult
from repro.core.steiner import mehlhorn_steiner_tree
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.traversal import bfs_tree
from repro.graphs.wiener import rooted_distance_sum, wiener_index

#: Candidates at most this large are scored with the exact Wiener index
#: when ``selection="auto"`` (Remark 1: exact scoring is affordable because
#: solutions are typically small).
EXACT_SCORING_THRESHOLD = 600


def wiener_steiner(
    graph: Graph,
    query: Iterable[Node],
    beta: float = 1.0,
    roots: Iterable[Node] | None = None,
    selection: str = "auto",
    adjust: bool = True,
    lambda_values: Iterable[float] | None = None,
) -> ConnectorResult:
    """Return an approximate minimum Wiener connector for ``query``.

    Parameters
    ----------
    graph:
        The host graph ``G`` — connected, simple, undirected, unweighted.
    query:
        The query set ``Q`` (at least one vertex, all in ``G``).
    beta:
        Grid resolution for the λ sweep; the paper suggests ``β = 1``.
        Smaller β tries more λ values (better quality, more time).
    roots:
        Candidate roots; defaults to ``Q`` (Lemma 5).  Pass all of
        ``graph.nodes()`` to ablate the root restriction.
    selection:
        ``"a"`` scores candidates by the proxy ``A(H, r)`` (the worst-case
        analysis of Theorem 4); ``"wiener"`` scores every candidate by its
        exact Wiener index; ``"auto"`` (default) uses exact scoring for
        candidates up to :data:`EXACT_SCORING_THRESHOLD` vertices and the
        proxy beyond.
    adjust:
        Apply the Lemma-2 ``AdjustDistances`` rebalancing (default).  The
        approximation guarantee needs it; turning it off is an ablation.
    lambda_values:
        Explicit λ grid overriding the geometric sweep.

    Returns
    -------
    ConnectorResult
        With ``metadata`` keys ``root``, ``lambda``, ``candidates``
        (number of distinct candidate vertex sets scored) and
        ``runtime_seconds``.

    Raises
    ------
    InvalidQueryError
        If ``query`` is empty or mentions vertices outside the graph.
    DisconnectedGraphError
        If the query vertices do not lie in one connected component.
    """
    started = time.perf_counter()
    query_set = frozenset(query)
    _validate_query(graph, query_set)

    if len(query_set) == 1:
        only = next(iter(query_set))
        return ConnectorResult(
            host=graph, nodes=frozenset([only]), query=query_set, method="ws-q",
            metadata={"root": only, "lambda": None, "candidates": 1,
                      "runtime_seconds": time.perf_counter() - started},
        )

    root_list = list(dict.fromkeys(roots)) if roots is not None else sorted(
        query_set, key=repr
    )
    if not root_list:
        raise InvalidQueryError("root candidate list must be non-empty")

    # Line 1: one BFS per query vertex / root candidate.
    bfs_cache: dict[Node, tuple[dict[Node, int], dict[Node, Node]]] = {}
    for root in root_list:
        bfs_cache[root] = bfs_tree(graph, root)
        reached = bfs_cache[root][0]
        unreachable = [q for q in query_set if q not in reached]
        if unreachable:
            raise DisconnectedGraphError(
                f"query vertices {sorted(map(repr, unreachable))} unreachable "
                f"from root {root!r}"
            )

    grid = list(lambda_values) if lambda_values is not None else _lambda_grid(
        graph.num_nodes, beta
    )

    best_key: float = math.inf
    best_nodes: frozenset[Node] | None = None
    best_root: Node | None = None
    best_lambda: float | None = None
    scored: dict[frozenset[Node], float] = {}

    for lam in grid:
        for root in root_list:
            host_distances, host_parents = bfs_cache[root]
            candidate = _candidate_for(
                graph, query_set, root, lam, host_distances, host_parents, adjust
            )
            if candidate in scored:
                continue
            key = _score(graph, candidate, root, selection)
            scored[candidate] = key
            if key < best_key:
                best_key = key
                best_nodes = candidate
                best_root = root
                best_lambda = lam

    assert best_nodes is not None  # the grid and root list are non-empty
    return ConnectorResult(
        host=graph,
        nodes=best_nodes,
        query=query_set,
        method="ws-q",
        metadata={
            "root": best_root,
            "lambda": best_lambda,
            "candidates": len(scored),
            "runtime_seconds": time.perf_counter() - started,
        },
    )


#: Public alias matching the paper's problem name.
minimum_wiener_connector = wiener_steiner


def _validate_query(graph: Graph, query_set: frozenset[Node]) -> None:
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    missing = [q for q in query_set if not graph.has_node(q)]
    if missing:
        raise InvalidQueryError(
            f"query vertices not in graph: {sorted(map(repr, missing))}"
        )


def _lambda_grid(num_nodes: int, beta: float) -> list[float]:
    """Geometric grid of λ values covering ``[1/√2, √|V|]`` (Lemma 3)."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    low = 1 / math.sqrt(2)
    high = math.sqrt(max(num_nodes, 2))
    grid = []
    value = low
    while value < high:
        grid.append(value)
        value *= 1 + beta
    grid.append(high)
    return grid


def _candidate_for(
    graph: Graph,
    query_set: frozenset[Node],
    root: Node,
    lam: float,
    host_distances: Mapping[Node, int],
    host_parents: Mapping[Node, Node],
    adjust: bool,
) -> frozenset[Node]:
    """Lines 7–11 of Algorithm 1 for one ``(r, λ)`` pair."""
    reweighted = _reweighted_graph(graph, host_distances, lam)
    terminals = set(query_set) | {root}
    tree = mehlhorn_steiner_tree(reweighted, terminals)
    if adjust:
        adjusted = adjust_distances(
            graph,
            tree,
            root,
            bfs_distances_map=host_distances,
            bfs_parents_map=host_parents,
        )
        nodes = set(adjusted.nodes())
    else:
        nodes = set(tree.nodes())
    nodes |= query_set
    return frozenset(nodes)


def _reweighted_graph(
    graph: Graph, host_distances: Mapping[Node, int], lam: float
) -> WeightedGraph:
    """Build ``G_{r,λ}`` with ``w(u,v) = λ + max(d_G(r,u), d_G(r,v)) / λ``.

    Lemma 4 shows Steiner trees of this weighted graph approximate the
    node-weighted objective ``B(·, r, λ)`` within a factor 2.
    """
    reweighted = WeightedGraph()
    for node in graph.nodes():
        reweighted.add_node(node)
    for u, v in graph.edges():
        weight = lam + max(host_distances[u], host_distances[v]) / lam
        reweighted.add_edge(u, v, weight)
    return reweighted


def _score(
    graph: Graph, nodes: frozenset[Node], root: Node, selection: str
) -> float:
    """Score a candidate per the selection policy (line 15 / Remark 1)."""
    if selection not in ("a", "wiener", "auto"):
        raise ValueError(f"unknown selection policy {selection!r}")
    subgraph = graph.subgraph(nodes)
    use_exact = selection == "wiener" or (
        selection == "auto" and len(nodes) <= EXACT_SCORING_THRESHOLD
    )
    if use_exact:
        return wiener_index(subgraph)
    return len(nodes) * rooted_distance_sum(subgraph, root)
