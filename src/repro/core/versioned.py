"""Versioned mutable graphs: canonical edge deltas and epoch-stamped indexes.

Every layer of the serving tower below this module assumes one immutable
host graph; this module is what lets the graph *change* without tearing
the tower down.  Two pieces:

* :class:`GraphDelta` — a canonical, digestable batch of edge inserts /
  deletes / reweights.  Canonical means the batch is a *value*: endpoint
  order, op order, and numeric spellings are normalized at construction,
  so two deltas describing the same mutation have equal fields and equal
  :meth:`~GraphDelta.digest` in every process.  Replay is defined on all
  three graph representations — the dict :class:`~repro.graphs.graph.Graph`,
  the :class:`~repro.graphs.graph.WeightedGraph`, and the packed
  :class:`~repro.graphs.csr.CSRGraph` arrays — and produces the *same*
  canonical node order on each, which is what keeps ``backend="dict"``
  and ``backend="csr"`` bit-identical across mutations.
* :class:`VersionedIndex` — an epoch counter over a mutating graph.
  Epoch 0 is the construction-time graph; every ``apply(delta)`` bumps
  the epoch, rebuilds the CSR arrays *from the current arrays* (not from
  scratch), and remembers the delta so a replica that missed some epochs
  can request the catch-up suffix (:meth:`~VersionedIndex.deltas_since`)
  instead of a full restart.  Each epoch has its own
  :meth:`~VersionedIndex.index_digest` — the remote handshake token.

Deltas are **all-or-nothing**: validation happens before any mutation, so
a bad op (insert of an existing edge, delete of a missing one) raises
:class:`~repro.errors.DeltaError` and leaves the graph at the old epoch.

Scoped invalidation (which cache entries survive a delta) lives with the
caches in :meth:`repro.core.service.ConnectorService.apply_delta`; this
module only answers "what changed, canonically, and at which epoch".
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.core.options import stable_repr
from repro.errors import DeltaError, GraphError
from repro.graphs.graph import Graph, Node, WeightedGraph

__all__ = [
    "GraphDelta",
    "VersionedIndex",
    "csr_has_edge",
    "index_digest_of",
]

#: How many applied deltas a :class:`VersionedIndex` keeps for replica
#: catch-up before the oldest epochs become unrecoverable (a replica that
#: far behind must resync from a full payload instead).
MAX_CATCHUP_HISTORY = 1024


def _node_key(node: Node):
    """A total order over hashable node labels, stable across processes.

    Numbers sort among themselves by value (``1`` and ``1.0`` are one
    node, exactly as dict keys treat them); everything else sorts by
    ``(type name, repr)``.  The same rule the wire protocol's
    ``canonical_sort`` applies to query sets.
    """
    if isinstance(node, bool):
        return (1, type(node).__name__, repr(node))
    if isinstance(node, (int, float)):
        return (0, float(node), "")
    return (1, type(node).__name__, repr(node))


def _canonical_edge(u: Node, v: Node) -> tuple[Node, Node]:
    if u == v:
        raise DeltaError(f"self-loop delta op on node {u!r}")
    return (u, v) if _node_key(u) <= _node_key(v) else (v, u)


def _edge_sort_key(edge):
    return (_node_key(edge[0]), _node_key(edge[1]))


def _has_arc(csr, a: int, b: int) -> bool:
    from repro.graphs.csr import np

    lo = int(csr.indptr[a])
    hi = int(csr.indptr[a + 1])
    k = lo + int(np.searchsorted(csr.indices[lo:hi], b))
    return k < hi and int(csr.indices[k]) == b


def csr_has_edge(csr, u: Node, v: Node) -> bool:
    """Whether the undirected edge ``{u, v}`` exists in a CSR index.

    The label-space twin of :meth:`Graph.has_edge` for bare-array
    services (shard workers hold no dict graph to ask).
    """
    iu = csr.index_of.get(u)
    iv = csr.index_of.get(v)
    if iu is None or iv is None:
        return False
    return _has_arc(csr, iu, iv)


@dataclasses.dataclass(frozen=True)
class GraphDelta:
    """A canonical, digestable batch of edge mutations.

    Attributes
    ----------
    inserts:
        ``(u, v)`` pairs to add.  On a weighted replay the new edges get
        weight ``1.0`` (the uniform weight the serving tower's unweighted
        host graphs lift to).
    deletes:
        ``(u, v)`` pairs to remove.
    reweights:
        ``(u, v, w)`` triples setting the weight of an *existing* edge.
        Only meaningful on weighted graphs; replaying a reweight onto an
        unweighted :class:`Graph` or CSR index raises
        :class:`~repro.errors.DeltaError`.

    Construction canonicalizes: each edge's endpoints are ordered by the
    process-stable node order, each op list is sorted, weights go through
    ``float``, and the same undirected edge may appear in **at most one**
    op across the whole batch (conflicting or duplicate ops are rejected,
    which also makes the batch order-independent).  Two deltas describing
    the same mutation therefore compare equal and share a digest.
    """

    inserts: tuple[tuple[Node, Node], ...] = ()
    deletes: tuple[tuple[Node, Node], ...] = ()
    reweights: tuple[tuple[Node, Node, float], ...] = ()

    def __post_init__(self) -> None:
        inserts = tuple(
            sorted((_canonical_edge(u, v) for u, v in self.inserts),
                   key=_edge_sort_key)
        )
        deletes = tuple(
            sorted((_canonical_edge(u, v) for u, v in self.deletes),
                   key=_edge_sort_key)
        )
        reweights = []
        for u, v, w in self.reweights:
            a, b = _canonical_edge(u, v)
            weight = float(w)
            if weight < 0:
                raise DeltaError(
                    f"negative weight {w!r} in reweight of ({u!r}, {v!r})"
                )
            reweights.append((a, b, weight))
        reweights = tuple(sorted(reweights, key=_edge_sort_key))
        seen: set[tuple] = set()
        for edge in [*inserts, *deletes, *(e[:2] for e in reweights)]:
            marker = (_node_key(edge[0]), _node_key(edge[1]))
            if marker in seen:
                raise DeltaError(
                    f"edge {edge!r} appears in more than one delta op"
                )
            seen.add(marker)
        object.__setattr__(self, "inserts", inserts)
        object.__setattr__(self, "deletes", deletes)
        object.__setattr__(self, "reweights", reweights)
        if not (inserts or deletes or reweights):
            raise DeltaError("a GraphDelta must contain at least one op")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_ops(self) -> int:
        return len(self.inserts) + len(self.deletes) + len(self.reweights)

    def touched_edges(self) -> list[tuple[Node, Node]]:
        """Every ``(u, v)`` edge this delta mentions, canonical order."""
        return [
            *self.inserts,
            *self.deletes,
            *[(u, v) for u, v, _ in self.reweights],
        ]

    def touched_nodes(self) -> set[Node]:
        """Every node label this delta mentions."""
        return {node for edge in self.touched_edges() for node in edge}

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """A process-stable hex digest of the canonical op batch."""
        digest = hashlib.sha1()
        for tag, ops in (
            (b"i", self.inserts),
            (b"d", self.deletes),
            (b"w", self.reweights),
        ):
            for op in ops:
                digest.update(tag)
                digest.update(stable_repr(tuple(op)).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Wire form (pure JSON, for the gateway surface and the CLI)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-safe dict; inverse of :meth:`from_payload`."""
        payload: dict = {}
        if self.inserts:
            payload["insert"] = [[u, v] for u, v in self.inserts]
        if self.deletes:
            payload["delete"] = [[u, v] for u, v in self.deletes]
        if self.reweights:
            payload["reweight"] = [[u, v, w] for u, v, w in self.reweights]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphDelta":
        """Parse the JSON wire form, rejecting unknown keys and bad shapes."""
        if not isinstance(payload, dict):
            raise DeltaError(f"delta payload must be an object, got {payload!r}")
        unknown = set(payload) - {"insert", "delete", "reweight"}
        if unknown:
            raise DeltaError(f"unknown delta payload keys: {sorted(unknown)}")

        def pairs(key: str) -> list[tuple]:
            ops = payload.get(key) or []
            parsed = []
            for op in ops:
                if not isinstance(op, (list, tuple)) or len(op) != 2:
                    raise DeltaError(f"{key} ops must be [u, v] pairs, got {op!r}")
                parsed.append((op[0], op[1]))
            return parsed

        reweights = []
        for op in payload.get("reweight") or []:
            if not isinstance(op, (list, tuple)) or len(op) != 3:
                raise DeltaError(
                    f"reweight ops must be [u, v, weight] triples, got {op!r}"
                )
            reweights.append((op[0], op[1], op[2]))
        return cls(
            inserts=tuple(pairs("insert")),
            deletes=tuple(pairs("delete")),
            reweights=tuple(reweights),
        )

    # ------------------------------------------------------------------
    # Replay — all-or-nothing, identical canonical order on every backend
    # ------------------------------------------------------------------
    def _check_applicable(self, has_edge) -> None:
        for u, v in self.inserts:
            if has_edge(u, v):
                raise DeltaError(f"cannot insert existing edge ({u!r}, {v!r})")
        for u, v in self.deletes:
            if not has_edge(u, v):
                raise DeltaError(f"cannot delete missing edge ({u!r}, {v!r})")
        for u, v, _ in self.reweights:
            if not has_edge(u, v):
                raise DeltaError(f"cannot reweight missing edge ({u!r}, {v!r})")

    def apply_to_graph(self, graph: Graph) -> None:
        """Replay onto an unweighted dict :class:`Graph`, in place.

        New endpoints are created in canonical op order — the same
        insertion order :meth:`apply_to_csr` appends them in, so the two
        backends keep one node numbering after any delta sequence.
        """
        if self.reweights:
            raise DeltaError(
                "reweight ops need a weighted graph; the serving tower's "
                "host graphs are unweighted"
            )
        self._check_applicable(graph.has_edge)
        for u, v in self.deletes:
            graph.remove_edge(u, v)
        for u, v in self.inserts:
            graph.add_edge(u, v)

    def apply_to_weighted(self, graph: WeightedGraph) -> None:
        """Replay onto a :class:`WeightedGraph`, in place (inserts get 1.0)."""
        self._check_applicable(graph.has_edge)
        for u, v in self.deletes:
            graph.remove_edge(u, v)
        for u, v in self.inserts:
            graph.add_edge(u, v, 1.0)
        for u, v, w in self.reweights:
            graph.set_weight(u, v, w)

    def apply_to_csr(self, csr):
        """A new :class:`~repro.graphs.csr.CSRGraph` with this delta applied.

        Built from the *current* arrays: kept arcs are mask-copied, new
        arcs appended, and one lexsort restores the canonical ascending
        row order.  Existing node indices never move; new endpoints are
        appended in canonical op order (matching :meth:`apply_to_graph`'s
        insertion order on the dict twin).
        """
        from repro.graphs.csr import CSRGraph, np

        if self.reweights:
            raise DeltaError("reweight ops need a weighted graph")
        node_of = list(csr.node_of)
        index_of = dict(csr.index_of)
        old_n = csr.num_nodes
        for u, v in self.inserts:
            for node in (u, v):
                if node not in index_of:
                    index_of[node] = len(node_of)
                    node_of.append(node)
        # Validate *everything* before touching any array (all-or-nothing).
        for u, v in self.inserts:
            iu, iv = index_of[u], index_of[v]
            if iu < old_n and iv < old_n and _has_arc(csr, iu, iv):
                raise DeltaError(f"cannot insert existing edge ({u!r}, {v!r})")
        drop_positions = []
        for u, v in self.deletes:
            iu = index_of.get(u)
            iv = index_of.get(v)
            if (
                iu is None or iv is None or iu >= old_n or iv >= old_n
                or not _has_arc(csr, iu, iv)
            ):
                raise DeltaError(f"cannot delete missing edge ({u!r}, {v!r})")
            drop_positions.append(csr.arc_weight_position(iu, iv))
            drop_positions.append(csr.arc_weight_position(iv, iu))
        n = len(node_of)
        keep = np.ones(csr.num_arcs, dtype=bool)
        if drop_positions:
            keep[np.asarray(drop_positions, dtype=np.int64)] = False
        src = csr.arc_src[keep]
        dst = csr.indices[keep]
        if self.inserts:
            add_src = np.empty(2 * len(self.inserts), dtype=np.int64)
            add_dst = np.empty(2 * len(self.inserts), dtype=np.int64)
            for k, (u, v) in enumerate(self.inserts):
                iu, iv = index_of[u], index_of[v]
                add_src[2 * k], add_dst[2 * k] = iu, iv
                add_src[2 * k + 1], add_dst[2 * k + 1] = iv, iu
            src = np.concatenate([src, add_src])
            dst = np.concatenate([dst, add_dst])
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr, dst, node_of, index_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"{type(self).__name__}(+{len(self.inserts)} "
            f"-{len(self.deletes)} ~{len(self.reweights)})"
        )


def index_digest_of(graph: Graph | None = None, csr=None) -> str:
    """The process- and host-stable hex digest of a graph index's content.

    The remote handshake token: built from the
    :func:`~repro.core.options.stable_repr` of the node and canonical edge
    sets, so it agrees wherever the same *logical* graph is loaded —
    router or shard host, dict or CSR index, any ``PYTHONHASHSEED``,
    before or after the same delta sequence.
    """
    if graph is not None:
        node_reprs = sorted(stable_repr(node) for node in graph.nodes())
        edge_reprs = sorted(
            "|".join(sorted((stable_repr(u), stable_repr(v))))
            for u, v in graph.edges()
        )
    elif csr is not None:
        node_of = csr.node_of
        node_reprs = sorted(stable_repr(node) for node in node_of)
        indptr, indices = csr.indptr, csr.indices
        edge_reprs = sorted(
            "|".join(
                sorted((stable_repr(node_of[i]), stable_repr(node_of[j])))
            )
            for i in range(len(node_of))
            for j in indices[indptr[i]:indptr[i + 1]]
            if i <= j
        )
    else:
        raise GraphError("index_digest_of needs a graph or a CSRGraph")
    digest = hashlib.sha1()
    digest.update(repr(len(node_reprs)).encode("utf-8"))
    for text in node_reprs:
        digest.update(b"n")
        digest.update(text.encode("utf-8"))
    for text in edge_reprs:
        digest.update(b"e")
        digest.update(text.encode("utf-8"))
    return digest.hexdigest()


class VersionedIndex:
    """Epoch-numbered snapshots of a mutating graph index.

    Epoch 0 is the construction-time graph; :meth:`apply` validates and
    replays one :class:`GraphDelta`, bumps the epoch, refreshes the CSR
    arrays incrementally (when they have been built), and records the
    delta for replica catch-up.  The graph and CSR views always describe
    the *same* epoch — there is no window where they disagree, because
    the CSR refresh happens inside :meth:`apply` before the epoch bump
    returns.

    Parameters
    ----------
    graph:
        The mutable host :class:`Graph`; may be ``None`` for an
        arrays-only index (shard workers), in which case deltas replay
        directly onto the CSR arrays.
    csr:
        Optional prebuilt :class:`~repro.graphs.csr.CSRGraph` to adopt.
    epoch:
        The starting epoch number — non-zero when this index is a replica
        catching up to a router that has already applied deltas.
    """

    __slots__ = ("graph", "_csr", "_epoch", "_base_epoch", "_history", "_digest")

    def __init__(self, graph: Graph | None = None, csr=None, *, epoch: int = 0) -> None:
        if graph is None and csr is None:
            raise GraphError("VersionedIndex needs a graph or a CSRGraph")
        self.graph = graph
        self._csr = csr
        self._epoch = int(epoch)
        self._base_epoch = self._epoch
        self._history: list[GraphDelta] = []
        self._digest: str | None = None

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def csr(self):
        """The current epoch's CSR arrays, built lazily from the graph."""
        if self._csr is None:
            from repro.graphs.csr import CSRGraph

            self._csr = CSRGraph.from_graph(self.graph)
        return self._csr

    @property
    def csr_built(self) -> bool:
        return self._csr is not None

    def index_digest(self) -> str:
        """This epoch's handshake digest (cached until the next delta)."""
        if self._digest is None:
            self._digest = index_digest_of(self.graph, self._csr)
        return self._digest

    def apply(self, delta: GraphDelta) -> int:
        """Replay ``delta``; returns the new epoch number.

        All-or-nothing: an inapplicable delta raises
        :class:`~repro.errors.DeltaError` with graph, arrays, epoch and
        history untouched.
        """
        if not isinstance(delta, GraphDelta):
            raise DeltaError(
                f"apply() takes a GraphDelta, got {type(delta).__name__}"
            )
        if self.graph is not None:
            # Refresh the arrays FIRST: apply_to_csr is pure (returns new
            # arrays), so a failure leaves the old epoch fully intact,
            # whereas the in-place graph replay must come last.
            new_csr = (
                delta.apply_to_csr(self._csr) if self._csr is not None else None
            )
            delta.apply_to_graph(self.graph)
            self._csr = new_csr
        else:
            self._csr = delta.apply_to_csr(self._csr)
        self._epoch += 1
        self._digest = None
        self._history.append(delta)
        if len(self._history) > MAX_CATCHUP_HISTORY:
            del self._history[0]
            self._base_epoch += 1
        return self._epoch

    def align(self, epoch: int) -> None:
        """Renumber this timeline so the current version is ``epoch``.

        A pure relabeling — graph, arrays, digest and retained history
        are untouched; only the epoch coordinates shift.  Used by a shard
        host whose digest-verified graph matches a router counting from a
        different base (a daemon restarted with the already-mutated
        dataset starts at 0 again), so that sweep stamping and catch-up
        arithmetic share one timeline.
        """
        shift = int(epoch) - self._epoch
        self._epoch += shift
        self._base_epoch += shift

    def deltas_since(self, epoch: int) -> tuple[GraphDelta, ...] | None:
        """The catch-up suffix from ``epoch`` to now, oldest first.

        ``None`` when catch-up is impossible: ``epoch`` is ahead of this
        index (the peer diverged) or behind the retained history window.
        An up-to-date peer gets the empty tuple.
        """
        if epoch > self._epoch or epoch < self._base_epoch:
            return None
        return tuple(self._history[epoch - self._base_epoch:])

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        shape = self.graph if self.graph is not None else self._csr
        return f"{type(self).__name__}(epoch={self._epoch}, {shape!r})"
