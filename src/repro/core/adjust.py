"""``AdjustDistances`` — Lemma 2 / Appendix A.3 of the paper.

Given a subtree ``T`` of the host graph ``G`` and a root ``r``, the
procedure grafts pieces of the BFS shortest-path tree of ``G`` onto ``T`` so
that every vertex ends up within a ``(1 + √2)`` stretch of its true distance
from ``r``, while the vertex count grows by at most the same ``(1 + √2)``
factor.  This is the balancing step of Khuller, Raghavachari and Young's
*light approximate shortest-path trees* (LAST), adapted as in the paper so
the vertex set may grow (properties (a)–(d) of Lemma 2).

The traversal walks ``T`` depth-first while maintaining tentative distances
``d[v]`` (upper bounds on the distance from ``r`` inside the tree under
construction).  Whenever the tentative distance of the current vertex
exceeds ``(1 + √2) · d_G(r, v)``, the whole shortest path from ``r`` is
relaxed into the tree, resetting ``d[v] = d_G(r, v)``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.traversal import bfs_tree

#: The stretch/blow-up factor of Lemma 2.
ALPHA = 1 + math.sqrt(2)


def adjust_distances(
    graph: Graph,
    tree: Graph | WeightedGraph,
    root: Node,
    alpha: float = ALPHA,
    bfs_distances_map: Mapping[Node, int] | None = None,
    bfs_parents_map: Mapping[Node, Node] | None = None,
) -> Graph:
    """Return the rebalanced tree ``T'`` of Lemma 2.

    Parameters
    ----------
    graph:
        The host graph ``G`` (unweighted).
    tree:
        A subtree of ``G`` containing ``root``.  Edge weights, if present,
        are ignored — only the topology matters here.
    root:
        The root vertex ``r``; must belong to the tree.
    alpha:
        Stretch threshold; the paper fixes ``1 + √2`` which balances the
        size increase and the distance guarantee.
    bfs_distances_map, bfs_parents_map:
        Optional precomputed BFS tree of ``G`` from ``root`` (both or
        neither).  ``WienerSteiner`` passes these in because it has already
        run the BFS for the objective function.

    Returns
    -------
    Graph
        A tree ``T'`` with ``V(T') ⊇ V(T)``, ``|V(T')| ≤ α |V(T)|``, and
        ``d_{T'}(r, v) ≤ α · d_G(r, v)`` for every vertex.

    Raises
    ------
    NodeNotFoundError
        If the root is missing from the tree or graph.
    GraphError
        If a tree vertex is unreachable from the root in ``G``.
    """
    if not tree.has_node(root):
        raise NodeNotFoundError(root)
    if not graph.has_node(root):
        raise NodeNotFoundError(root)
    if bfs_distances_map is None or bfs_parents_map is None:
        bfs_distances_map, bfs_parents_map = bfs_tree(graph, root)

    # Tentative distance and parent of the tree under construction.
    d: dict[Node, float] = {root: 0.0}
    p: dict[Node, Node] = {}

    def relax(u: Node, v: Node) -> None:
        if d.get(v, math.inf) > d.get(u, math.inf) + 1:
            d[v] = d[u] + 1
            p[v] = u

    def add_path(u: Node) -> None:
        # Collect the BFS shortest path root -> u, then relax it top-down so
        # every vertex on it reaches its exact host distance.
        path = [u]
        while path[-1] != root:
            node = path[-1]
            parent = bfs_parents_map.get(node)
            if parent is None:
                raise GraphError(
                    f"tree vertex {node!r} unreachable from root {root!r} in host graph"
                )
            path.append(parent)
        path.reverse()
        for parent, child in zip(path, path[1:]):
            relax(parent, child)

    # Iterative DFS over the tree, relaxing each tree edge on entry and again
    # on exit (the paper's dfs does relax(u, v); dfs(v); relax(v, u)).
    visited = {root}
    if d[root] > alpha * bfs_distances_map.get(root, 0):  # pragma: no cover
        add_path(root)
    stack: list[tuple[Node, Node | None]] = [(root, None)]
    order: list[tuple[Node, Node]] = []  # (child, parent) in visit order
    while stack:
        u, parent = stack.pop()
        for v in _tree_neighbors(tree, u):
            if v == parent or v in visited:
                continue
            visited.add(v)
            relax(u, v)
            host = bfs_distances_map.get(v)
            if host is None:
                raise GraphError(
                    f"tree vertex {v!r} unreachable from root {root!r} in host graph"
                )
            if d.get(v, math.inf) > alpha * host:
                add_path(v)
            order.append((v, u))
            stack.append((v, u))
    # Exit-relaxations in reverse visit order propagate improvements back up.
    for v, u in reversed(order):
        relax(v, u)

    result = Graph(nodes=[root])
    for v, parent in p.items():
        result.add_edge(v, parent)
    for node in visited:
        result.add_node(node)
    return result


def _tree_neighbors(tree: Graph | WeightedGraph, node: Node):
    neighbors = tree.neighbors(node)
    # WeightedGraph neighbors are a {node: weight} map; Graph's are a set.
    return list(neighbors)


def verify_lemma2(
    graph: Graph,
    original: Graph | WeightedGraph,
    adjusted: Graph,
    root: Node,
    alpha: float = ALPHA,
) -> list[str]:
    """Return a list of violated Lemma-2 properties (empty when all hold).

    Checks: (a) vertex containment, (b) size blow-up ≤ α, (c) distance
    stretch ≤ α.  Used by the test suite and by debug assertions.
    """
    from repro.graphs.traversal import bfs_distances

    problems: list[str] = []
    original_nodes = set(original.nodes())
    adjusted_nodes = set(adjusted.nodes())
    if not original_nodes <= adjusted_nodes:
        problems.append("(a) adjusted tree lost original vertices")
    if len(adjusted_nodes) > alpha * max(len(original_nodes), 1) + 1e-9:
        problems.append(
            f"(b) size blow-up {len(adjusted_nodes)} > {alpha} * {len(original_nodes)}"
        )
    host = bfs_distances(graph, root)
    inside = bfs_distances(adjusted, root)
    for node in adjusted_nodes:
        if node not in inside:
            problems.append(f"(c) {node!r} disconnected from root in adjusted tree")
            continue
        if inside[node] > alpha * host[node] + 1e-9:
            problems.append(
                f"(c) stretch violated at {node!r}: {inside[node]} > {alpha} * {host[node]}"
            )
    return problems
