"""Certified lower bounds for pruning the λ×root sweep.

The λ×root sweep of :meth:`repro.core.service.ConnectorService._solve_ws`
scores one candidate connector per ``(root, λ)`` pair and keeps the
strict-improvement minimum.  This module supplies **provable lower
bounds** on the scores those candidates can achieve, so the sweep may
skip a pair — or a whole root — whose bound already exceeds the running
incumbent, *without ever changing the answer*.

Certification argument
----------------------

Write ``M`` for the final minimum key of the sweep and consider a pruned
pair whose bound ``b`` exceeded the incumbent at decision time.  The
incumbent is non-increasing, so ``b > incumbent >= M``; every score the
pruned pair could have contributed is ``>= b > M``, hence the pair can
neither attain the minimum nor (by induction over the canonical pair
order — see ``_solve_ws``) ever update the incumbent in the unpruned
run either.  The two runs therefore hold equal incumbents at every pair
both process, make the same strict-improvement updates, and finish on
the same ``(nodes, root, λ, key)``.

Two properties carry that induction and are load-bearing:

* **Bounds must hold under any scoring root.**  The sweep deduplicates
  candidates (``if candidate in scored``), so pruning a root can hand a
  shared candidate's *first* encounter — and, for root-dependent proxy
  scores, its recorded key — to a different root.  Every root-level
  bound below therefore lower-bounds the candidate's score under *every*
  root that could end up scoring it, not just the generating one
  (:func:`proxy_score_floor` minimizes over the whole root list).
* **Bounds must be bit-deterministic across backends, shard replicas,
  warm and cold caches.**  Everything here is integer arithmetic over
  exact per-root BFS distances — the tables the sweep has already forced
  for its reachability check — never floating point, never the optional
  :class:`~repro.graphs.landmarks.LandmarkIndex` (which only some
  serving paths own).  The per-root tables are themselves the landmark
  tables of the pruning scheme: every candidate root doubles as a
  landmark whose triangle bounds certify the distances below.

What is bounded
---------------

For a root ``r`` with terminals ``T = Q ∪ {r}``, every candidate the
sweep can produce for ``r`` (any λ, adjust on or off) is a connected
superset of ``T`` containing an ``r``-to-farthest-terminal path, so its
size ``s`` satisfies ``s >= m = max(|T|, D + 1)`` with
``D = max_q d_G(r, q)``.  Induced distances can only grow
(``d_G[C] >= d_G``), which yields closed-form floors per scoring policy:

* exact Wiener (``selection="wiener"``, or small candidates under
  ``"auto"``/``"sampled"``): :func:`exact_score_floor`;
* the proxy ``A(H, r') = |C| * sum_v d_G[C](r', v)`` (``"a"``, or the
  large-candidate tail of ``"auto"``): :func:`proxy_score_floor`;
* the Remark-1 sampled estimator (large-candidate tail of
  ``"sampled"``): every BFS source contributes at least ``s - 1``, so
  the estimate is at least ``C(s, 2)``.

:func:`root_bound` dispatches on the selection policy, taking the
minimum over the size regimes a policy can route a candidate through.
:func:`candidate_bound` is the sharper per-candidate variant used once a
candidate set is known but before its (expensive) score is computed.
"""

from __future__ import annotations

from math import comb

__all__ = [
    "candidate_bound",
    "exact_score_floor",
    "pairwise_gap_sum",
    "proxy_score_floor",
    "root_bound",
]


def pairwise_gap_sum(values: list[int]) -> int:
    """``sum over pairs {i, j} of |values[i] - values[j]|`` in O(n log n).

    Sorted, each element ``x_j`` (0-indexed rank ``j``) is the larger of
    ``j`` pairs and the smaller of ``n - 1 - j``, contributing
    ``x_j * (2j - n + 1)``.  Used on exact per-root distances: since
    ``d(u, v) >= |d_r(u) - d_r(v)|`` (triangle inequality through the
    root's table), the result lower-bounds the sum of pairwise distances
    of the value owners — in the host graph and a fortiori in any
    induced subgraph.
    """
    ordered = sorted(values)
    n = len(ordered)
    return sum(x * (2 * j - n + 1) for j, x in enumerate(ordered))


def exact_score_floor(s: int, eccentricity: int, terminal_pair_sum: int,
                      num_terminals: int) -> int:
    """Floor on the exact Wiener index of any admissible candidate of size ``s``.

    ``eccentricity`` is ``D = max_q d_G(r, q)``; ``terminal_pair_sum`` is
    a certified lower bound on ``sum over pairs of T of d_G(u, v)`` with
    ``num_terminals = |T|``.  Two floors, take the larger:

    * **path floor** — the candidate contains an ``r``-to-farthest-
      terminal path that is shortest *within the candidate*, of length
      ``L >= D``; pairs along it sum to ``C(L+2, 3)`` and the remaining
      ``C(s,2) - C(L+1, 2)`` pairs are each ``>= 1``, which simplifies to
      ``C(s, 2) + C(L+1, 3)`` — increasing in ``L``, so ``L = D`` is
      safe;
    * **terminal floor** — the ``C(|T|, 2)`` terminal pairs contribute at
      least ``terminal_pair_sum`` and every other pair at least 1.

    Both are increasing in ``s``, so evaluating at the regime's minimum
    size bounds the whole regime.
    """
    base = comb(s, 2)
    path_floor = comb(eccentricity + 1, 3)
    terminal_floor = terminal_pair_sum - comb(num_terminals, 2)
    return base + max(path_floor, terminal_floor, 0)


def proxy_score_floor(s: int, scorer_floors: list[tuple[int, int]]) -> int:
    """Floor on ``|C| * sum_v d_G[C](r', v)`` over every possible scorer ``r'``.

    ``scorer_floors`` holds one ``(distance_sum, terminal_count)`` entry
    per root in the sweep's root list: ``distance_sum`` is
    ``sum_{q in Q, q != r'} d_G(r', q)`` (exact, from ``r'``'s table) and
    ``terminal_count`` is ``|Q ∪ {r'}|``.  A candidate scored by ``r'``
    contains ``Q ∪ {r'}``, so its rooted distance sum is at least
    ``distance_sum`` plus 1 per remaining vertex.  The minimum over
    scorers is what certifies pruning in the presence of candidate
    deduplication: a pruned root's candidate may be *scored* by any other
    root that also produces it.
    """
    per_scorer = min(
        distance_sum + max(0, s - terminal_count)
        for distance_sum, terminal_count in scorer_floors
    )
    return s * per_scorer


def root_bound(
    selection: str,
    exact_threshold: int,
    min_size: int,
    eccentricity: int,
    terminal_pair_sum: int,
    num_terminals: int,
    scorer_floors: list[tuple[int, int]],
) -> int:
    """Certified floor on every key any of this root's candidates can get.

    ``min_size`` is ``m = max(|T|, D + 1)``, the provable minimum
    candidate size for this root.  The selection policy decides which
    scoring regimes a candidate can fall into; regimes switch on the
    *actual* size ``s``, so each regime's floor is evaluated at the
    smallest ``s`` that can reach it and the dispatch takes the minimum
    over reachable regimes:

    * ``"wiener"`` — always exact;
    * ``"a"`` — always the proxy, under any scorer;
    * ``"auto"`` — exact for ``s <= exact_threshold`` (unreachable when
      ``m`` already exceeds it), proxy for ``s > exact_threshold``
      (reachable from ``max(m, exact_threshold + 1)`` up);
    * ``"sampled"`` — exact below the threshold, the sampled estimator's
      ``C(s, 2)`` floor above it.
    """
    exact = exact_score_floor(
        min_size, eccentricity, terminal_pair_sum, num_terminals
    )
    if selection == "wiener":
        return exact
    if selection == "a":
        return proxy_score_floor(min_size, scorer_floors)
    overflow_size = max(min_size, exact_threshold + 1)
    if selection == "auto":
        overflow = proxy_score_floor(overflow_size, scorer_floors)
    else:  # "sampled"
        overflow = comb(overflow_size, 2)
    if min_size > exact_threshold:
        return overflow
    return min(exact, overflow)


def candidate_bound(
    selection: str,
    exact_threshold: int,
    size: int,
    root_distances: list[int],
    induced_edges: int,
) -> int:
    """Certified floor on the key of one *known* candidate before scoring it.

    ``root_distances`` are the exact host distances from the scoring root
    to every candidate vertex (from the root's BFS table — every
    candidate vertex is root-reachable by construction);
    ``induced_edges`` is ``|E(G[C])|``.  Unlike :func:`root_bound` the
    scoring root here is pinned — the sweep computes this bound exactly
    where the unpruned sweep would compute the score, so the same root
    scores (or skips) the same candidate on every serving path.

    * exact regime: ``d_G[C](u, v) >= |d_r(u) - d_r(v)|`` summed by
      :func:`pairwise_gap_sum`, against the edge-deficit floor
      ``2 C(s,2) - |E(G[C])|`` (non-adjacent pairs are at distance >= 2);
    * proxy regime: ``s * sum_v d_G(r, v)`` — induced distances only
      grow, so the host-table sum is a floor (and a tight one);
    * sampled regime: ``C(s, 2)``.
    """
    use_exact = selection == "wiener" or (
        selection in ("auto", "sampled") and size <= exact_threshold
    )
    if use_exact:
        gap_floor = pairwise_gap_sum(root_distances)
        deficit_floor = 2 * comb(size, 2) - induced_edges
        return max(gap_floor, deficit_floor)
    if selection == "sampled":
        return comb(size, 2)
    return size * sum(root_distances)
