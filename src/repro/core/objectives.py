"""The chain of objective functions from Section 4.

The approximation algorithm works through a sequence of relaxations:

* ``W(H)`` — the Wiener index (Problem 1);
* ``A(H, r) = |V(H)| · Σ_u d_H(u, r)`` — the rooted proxy (Problem 2),
  within a factor 2 of ``2 W(H) / |V(H)| · |V(H)|`` by Lemma 1;
* ``Ã(H, r) = |V(H)| · Σ_u d_G(u, r)`` — the *weak* variant measuring
  distances in the host graph (Problem 3);
* ``B(H, r, λ) = λ |H| + Σ_u d_G(r, u) / λ`` — the linearization
  (Problem 4) that reduces to Steiner tree.

All helpers accept the host graph plus a vertex set, so no subgraphs need to
be materialized in the inner loops of the algorithm.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances
from repro.graphs.wiener import rooted_distance_sum, wiener_index


def a_objective(graph: Graph, nodes: Iterable[Node], root: Node) -> float:
    """Return ``A(G[S], root) = |S| · Σ_{u ∈ S} d_{G[S]}(u, root)``.

    Distances are measured inside the induced subgraph; the value is
    infinite when the subgraph is disconnected (some node unreachable from
    the root).
    """
    node_set = set(nodes)
    subgraph = graph.subgraph(node_set)
    total = rooted_distance_sum(subgraph, root)
    return len(node_set) * total


def best_rooted_a(graph: Graph, nodes: Iterable[Node]) -> tuple[float, Node]:
    """Return ``(A(H), argmin root)`` minimizing ``A(H, r)`` over roots in H."""
    node_set = set(nodes)
    subgraph = graph.subgraph(node_set)
    best_value = math.inf
    best_root = next(iter(node_set))
    for root in node_set:
        total = rooted_distance_sum(subgraph, root)
        value = len(node_set) * total
        if value < best_value:
            best_value = value
            best_root = root
    return best_value, best_root


def weak_a_objective(
    nodes: Iterable[Node], host_distances: Mapping[Node, int]
) -> float:
    """Return ``Ã(S, r) = |S| · Σ_{u ∈ S} d_G(u, r)``.

    ``host_distances`` must be the BFS distance map from the root in the
    *host* graph.  Infinite if some node is unreachable in the host.
    """
    node_list = list(nodes)
    total = 0.0
    for node in node_list:
        d = host_distances.get(node)
        if d is None:
            return math.inf
        total += d
    return len(node_list) * total


def b_objective(
    nodes: Iterable[Node],
    host_distances: Mapping[Node, int],
    lam: float,
) -> float:
    """Return ``B(S, r, λ) = λ |S| + (Σ_{u ∈ S} d_G(r, u)) / λ`` (Eq. (3))."""
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    node_list = list(nodes)
    total = 0.0
    for node in node_list:
        d = host_distances.get(node)
        if d is None:
            return math.inf
        total += d
    return lam * len(node_list) + total / lam


def optimal_lambda(nodes: Iterable[Node], host_distances: Mapping[Node, int]) -> float:
    """Return the λ of Lemma 3: ``sqrt(Σ d_G(r, u) / |S|)`` for a solution S.

    Clamped below by ``1/sqrt(2)`` as in the lemma's statement (the sum can
    be small for tiny solutions hugging the root).
    """
    node_list = list(nodes)
    if not node_list:
        raise ValueError("empty node set")
    total = sum(host_distances[node] for node in node_list)
    return max(math.sqrt(total / len(node_list)), 1 / math.sqrt(2))


def wiener_of_nodes(graph: Graph, nodes: Iterable[Node]) -> float:
    """Return ``W(G[S])`` — convenience wrapper for candidate scoring."""
    return wiener_index(graph.subgraph(nodes))


def verify_lemma1(graph: Graph, nodes: Iterable[Node]) -> tuple[float, float, float]:
    """Return ``(min_r Σ d(v,r), 2W/|V|, 2 min_r Σ d(v,r))`` for Lemma 1 checks.

    Lemma 1 states ``min_r Σ_v d(v,r) <= 2 W(H)/|V(H)| <= 2 min_r Σ_v d(v,r)``.
    Exposed for tests and sanity checks.
    """
    subgraph = graph.subgraph(set(nodes))
    n = subgraph.num_nodes
    best = math.inf
    for root in subgraph.nodes():
        distances = bfs_distances(subgraph, root)
        if len(distances) != n:
            return math.inf, math.inf, math.inf
        best = min(best, float(sum(distances.values())))
    middle = 2 * wiener_index(subgraph) / n if n else 0.0
    return best, middle, 2 * best
