"""ConnectorService — a persistent multi-query serving API over one graph.

The paper's §6.6 scalability discussion (parallel roots, approximate
distances) assumes the expensive per-graph state is *reusable*; before
this module the public API was one-shot — every ``wiener_steiner()`` call
rebuilt the CSR arrays, re-ran every root BFS, and threw all of it away.
:class:`ConnectorService` is the layer that amortizes:

* **one graph index** — the CSR arrays (or the dict engine's order map)
  are built once at construction and shared by every query;
* **per-root BFS caches with LRU bounds** — Algorithm 1's line-1 BFS data
  (distances, canonical parents, the Lemma-4 per-arc ``max`` array) is
  keyed by root and survives across queries, so workloads whose queries
  share vertices never recompute a root.  The LRU bound keeps a
  long-lived service's memory proportional to the hot root set, not to
  the query history;
* **candidate / score / result caches** — a ``(root, λ, terminals)``
  candidate, an exact (or deterministic sampled) Wiener score, and a
  whole ``(query, options)`` result are each pure functions of their key,
  so repeated and overlapping queries are answered from cache with
  *bit-identical* connectors;
* **array-shipping parallelism** — ``solve_many(parallel=True)`` and the
  per-root map of :func:`repro.core.parallel.parallel_wiener_steiner`
  send workers the two CSR int arrays (plus the label list), never a
  pickled ``Graph``; each worker process rebuilds its engine from the
  arrays once and then serves its share of the batch;
* **optional landmark index** — a :class:`repro.graphs.landmarks.LandmarkIndex`
  built once per service (on the shared CSR arrays when numpy is
  available) for approximate distance queries alongside exact solves.

Identity contract
-----------------

``ConnectorService.solve`` returns the *same connector, bit for bit*, as
the one-shot :func:`repro.core.wiener_steiner.wiener_steiner` under equal
options — cold or warm caches, after LRU eviction, sequentially or in
parallel.  Every cache key captures the full input of the value it
stores, and the λ×root sweep below is the same canonical loop the
one-shot path always ran (``wiener_steiner()`` is now literally a
throwaway service).  The property-test suite asserts this on random
corpora.

Quickstart
----------
>>> from repro.core.service import ConnectorService
>>> from repro.datasets import karate_club
>>> service = ConnectorService(karate_club())
>>> results = service.solve_many([[12, 25], [12, 26, 30]])
>>> [sorted(r.query) for r in results]
[[12, 25], [12, 26, 30]]
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.lru import LRUCache
from repro.core.options import SolveOptions
from repro.core.pruning import candidate_bound, root_bound
from repro.core.result import ConnectorResult
from repro.core.versioned import (
    GraphDelta,
    VersionedIndex,
    csr_has_edge,
    index_digest_of,
)
from repro.core.wiener_steiner import (
    _lambda_grid,
    _make_engine,
    _resolve_backend,
    _score,
    _validate_query,
)
from repro.errors import (
    DeltaError,
    DisconnectedGraphError,
    GraphError,
    InvalidQueryError,
)
from repro.graphs.csr import HAS_NUMPY, CSRGraph
from repro.graphs.graph import Graph, Node

__all__ = [
    "ConnectorService",
    "ServiceStats",
    "SweepOutcome",
    "cache_hit_rate",
    "service_from_payload",
]

#: The cache layers whose hit/miss counters back ``hit_rate()`` helpers.
HIT_RATE_LAYERS = ("result", "candidate", "score")


def cache_hit_rate(snapshots, layer: str) -> float:
    """Aggregate hit rate of one cache layer, ``0.0`` before any lookup.

    ``snapshots`` is any iterable of :class:`ServiceStats`-shaped
    objects (one for a single service, the per-shard tuple for a sharded
    one).  Shared by :meth:`ServiceStats.hit_rate` and
    :meth:`~repro.core.sharded.ShardedStats.hit_rate` so the layer names,
    the error message, and the zero-lookup guard cannot drift apart.
    """
    if layer not in HIT_RATE_LAYERS:
        raise ValueError(
            f"unknown cache layer {layer!r}; choose from {HIT_RATE_LAYERS}"
        )
    hits = misses = 0
    for snapshot in snapshots:
        hits += getattr(snapshot, f"{layer}_hits")
        misses += getattr(snapshot, f"{layer}_misses")
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class ServiceStats:
    """Cache observability snapshot (see :meth:`ConnectorService.stats`).

    Hit/miss counters cover the whole service lifetime; the ``*_cache_size``
    fields report *current* occupancy, which is what LRU-bound tests and
    shard introspection need.  ``uptime_seconds`` is how long this replica
    has existed — for a remote shard that is the *daemon's* lifetime
    (which may predate any router connecting), the baseline health
    dashboards and failover decisions compare against.
    """

    queries_served: int
    result_hits: int
    result_misses: int
    candidate_hits: int
    candidate_misses: int
    score_hits: int
    score_misses: int
    cached_roots: int
    result_cache_size: int = 0
    candidate_cache_size: int = 0
    score_cache_size: int = 0
    uptime_seconds: float = 0.0
    #: Graph version this replica serves: 0 at construction, +1 per
    #: applied delta.  The fields below are lifetime totals across every
    #: :meth:`ConnectorService.apply_delta` — how many cache entries the
    #: scoped invalidation evicted vs proved safe to keep.  All three
    #: default for wire compatibility with pre-mutation stats payloads.
    epoch: int = 0
    entries_invalidated: int = 0
    entries_retained: int = 0
    #: Certified-pruning counters: of all the (root, λ) pairs the λ×root
    #: sweeps of this replica's lifetime visited, how many were skipped
    #: because a provable score lower bound exceeded the incumbent
    #: (``pairs_pruned``) vs carried through candidate construction and
    #: scoring (``pairs_scored``).  They partition the visited pairs:
    #: ``pairs_pruned + pairs_scored`` equals the lifetime pair total.
    #: ``landmark_rebuilds`` counts LandmarkIndex constructions (lazy
    #: first builds and the eager post-delta rebuilds alike).  All three
    #: default for wire compatibility with older stats payloads.
    pairs_pruned: int = 0
    pairs_scored: int = 0
    landmark_rebuilds: int = 0

    @property
    def prune_rate(self) -> float:
        """Share of visited sweep pairs skipped by certified pruning."""
        total = self.pairs_pruned + self.pairs_scored
        return self.pairs_pruned / total if total else 0.0

    def hit_rate(self, layer: str = "result") -> float:
        """Cache hit rate of one layer, ``0.0`` before any lookup.

        ``layer`` is ``"result"`` (default), ``"candidate"`` or
        ``"score"`` — the three LRU layers with hit/miss counters.  The
        zero-lookup guard means a cold service reports ``0.0`` instead of
        dividing by zero, so benchmarks and dashboards can print the
        ratio unconditionally.
        """
        return cache_hit_rate((self,), layer)


@dataclass(frozen=True)
class SweepOutcome:
    """The picklable outcome of one λ×root sweep (label space).

    This is the unit the parallel and sharded serving layers ship between
    processes: everything a graph-holding router needs to build a
    :class:`~repro.core.result.ConnectorResult`, and nothing it does not
    (no host graph, no subgraph).
    """

    nodes: frozenset
    root: object
    lam: float | None
    candidates: int
    key: float
    backend: str
    runtime_seconds: float


#: Backwards-compatible private alias (pre-sharding name).
_Solved = SweepOutcome


class ConnectorService:
    """Serve many Min-Wiener-Connector queries from one persistent index.

    Parameters
    ----------
    graph:
        The host graph.  May be ``None`` when a prebuilt ``csr`` is given
        (the parallel workers construct services this way); such a
        service can run sweeps but only the graph-holding parent can
        build :class:`~repro.core.result.ConnectorResult` objects.
    options:
        Default :class:`~repro.core.options.SolveOptions` for every solve;
        individual calls may override them.
    csr:
        A prebuilt :class:`~repro.graphs.csr.CSRGraph` to adopt instead of
        packing ``graph``.
    max_cached_roots / max_cached_candidates / max_cached_scores /
    max_cached_results:
        LRU bounds of the four cache layers (``None`` = unbounded).  The
        defaults keep a busy service's footprint modest; a throwaway
        one-shot service never fills them.
    landmarks:
        When set, :attr:`landmark_index` lazily builds a
        :class:`~repro.graphs.landmarks.LandmarkIndex` with this many
        landmarks, reusing the service's CSR arrays.
    """

    def __init__(
        self,
        graph: Graph | None = None,
        options: SolveOptions | None = None,
        *,
        csr: CSRGraph | None = None,
        max_cached_roots: int | None = 512,
        max_cached_candidates: int | None = 4096,
        max_cached_scores: int | None = 4096,
        max_cached_results: int | None = 1024,
        landmarks: int | None = None,
        epoch: int = 0,
    ) -> None:
        if graph is None and csr is None:
            raise GraphError("ConnectorService needs a graph or a CSRGraph")
        # Defensive copy: the service *owns* its graph.  Cached answers are
        # pure functions of the graph content at a given epoch, so a caller
        # mutating the submitted graph behind the service's back would
        # silently corrupt every warm entry; the only supported mutation
        # path is apply_delta, which versions the copy.
        self.graph = graph.copy() if graph is not None else None
        self.options = options if options is not None else SolveOptions()
        self._csr = csr
        self._versioned = VersionedIndex(self.graph, csr, epoch=epoch)
        self._engines: dict[str, object] = {}
        self._max_cached_roots = max_cached_roots
        self._candidates = LRUCache(max_cached_candidates)
        self._scores = LRUCache(max_cached_scores)
        self._results = LRUCache(max_cached_results)
        self._landmark_count = landmarks
        self._landmark_index = None
        self._landmark_rebuilds = 0
        self._queries_served = 0
        self._entries_invalidated = 0
        self._entries_retained = 0
        self._pairs_pruned = 0
        self._pairs_scored = 0
        self._index_digest: str | None = None
        self._created = time.monotonic()

    # ------------------------------------------------------------------
    # Shape / validation helpers
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        if self.graph is not None:
            return self.graph.num_nodes
        return self._csr.num_nodes

    def _has_node(self, node) -> bool:
        if self.graph is not None:
            return self.graph.has_node(node)
        return node in self._csr.index_of

    def _validate(self, query_set: frozenset) -> None:
        if self.graph is not None:
            _validate_query(self.graph, query_set)
            return
        if not query_set:
            raise InvalidQueryError("query set must be non-empty")
        missing = [q for q in query_set if q not in self._csr.index_of]
        if missing:
            raise InvalidQueryError(
                f"query vertices not in graph: {sorted(map(repr, missing))}"
            )

    def index_digest(self) -> str:
        """A process- and host-stable hex digest of the graph index content.

        The handshake token of the remote shard transport: a
        :class:`~repro.core.sharded.ShardedConnectorService` router sends
        this digest to every shard-host daemon at connect time and the
        daemon refuses mismatches — two processes that do not serve the
        *same* graph must never share a key ring, or the bit-identity
        contract breaks silently (a shard would sweep a different
        vertex/edge set than the router validates against).

        Built from the :func:`~repro.core.options.stable_repr` of the
        node and canonical edge sets, so it agrees wherever the same
        graph is loaded: router or shard host, dict or CSR index, any
        ``PYTHONHASHSEED``, today's process or a restarted one.
        """
        if self._index_digest is None:
            self._index_digest = index_digest_of(self.graph, self._csr)
        return self._index_digest

    def _backend_name(self, options: SolveOptions) -> str:
        if self.graph is not None:
            return _resolve_backend(options.backend, self.graph)
        # CSR-only services (parallel workers) have no dict fallback.
        if options.backend == "dict":
            raise GraphError("backend='dict' needs the original graph")
        if options.backend == "csr" or HAS_NUMPY:
            return "csr"
        raise GraphError("a CSR-only service requires numpy")

    def _engine(self, backend_name: str):
        engine = self._engines.get(backend_name)
        if engine is None:
            if backend_name == "csr":
                from repro.core.fastpath import CSRWienerSteinerEngine

                if self._csr is None:
                    # Built through the version index so the epoch counter
                    # and the arrays can never describe different graphs.
                    self._csr = self._versioned.csr
                engine = CSRWienerSteinerEngine(
                    self.graph,
                    csr=self._csr,
                    max_cached_roots=self._max_cached_roots,
                )
            else:
                engine = _make_engine(
                    backend_name, self.graph, self._max_cached_roots
                )
            # Keyed by backend name, so the ceiling is the number of
            # engine backends (three) — bounded by the key domain.
            self._engines[backend_name] = engine  # repro-lint: disable=RPR004
        return engine

    def _merge(self, options: SolveOptions | None) -> SolveOptions:
        if options is None:
            return self.options
        if not isinstance(options, SolveOptions):
            raise TypeError(
                f"options must be a SolveOptions, got {type(options).__name__}"
            )
        return options

    # ------------------------------------------------------------------
    # The λ×root sweep (Algorithm 1) with service-level caches
    # ------------------------------------------------------------------
    def _solve_ws(self, query_set: frozenset, options: SolveOptions) -> SweepOutcome:
        """Run one WienerSteiner sweep; returns a label-space outcome.

        This is the canonical λ-major loop of the historical one-shot
        ``wiener_steiner``: same grid, same root order, same per-query
        candidate dedup, same strict-improvement selection.  The caches
        only short-circuit recomputation of pure functions, so warm and
        cold services return identical outcomes.

        Two certified accelerations ride on the canonical order (both are
        pure functions of ``(graph, query, options)``, so every serving
        path — one-shot, warm service, shard replica, any epoch — makes
        the same decisions):

        * **certified pruning** (``options.prune``, default on): a root
          whose :func:`~repro.core.pruning.root_bound` exceeds the
          incumbent at its first canonical encounter is skipped for the
          whole grid, and a constructed candidate whose
          :func:`~repro.core.pruning.candidate_bound` exceeds the
          incumbent skips its (expensive) scoring.  The bounds hold under
          any scoring root and the incumbent only decreases, so a pruned
          pair could never have produced a strict improvement — the
          winner is bit-identical with pruning on or off (the
          ``candidates`` trace may legitimately shrink, since pruned
          roots' candidate sets are never materialized);
        * **λ work sharing**: each root's candidates are built for the
          whole grid in one engine batch at the root's first unpruned
          encounter (one vectorized reweighting pass on the CSR backend,
          one shared arc list on the dict backend), honoring the
          candidate LRU per ``(root, λ)`` entry.
        """
        started = time.perf_counter()
        self._validate(query_set)
        backend_name = self._backend_name(options)

        if len(query_set) == 1:
            only = next(iter(query_set))
            return SweepOutcome(
                nodes=frozenset([only]), root=only, lam=None, candidates=1,
                key=0.0, backend=backend_name,
                runtime_seconds=time.perf_counter() - started,
            )

        root_list = _root_list(options, query_set)

        engine = self._engine(backend_name)

        # Line 1: one BFS per candidate root (cached by the engine, shared
        # across every query that mentions the root).
        for root in root_list:
            unreachable = engine.unreachable_queries(root, query_set)
            if unreachable:
                raise DisconnectedGraphError(
                    f"query vertices {sorted(map(repr, unreachable))} "
                    f"unreachable from root {root!r}"
                )

        grid = (
            list(options.lambda_values)
            if options.lambda_values is not None
            else _lambda_grid(self.num_nodes, options.beta)
        )

        prune = options.prune and options.method == "ws-q"
        # Integer bounds from the exact root tables the reachability loop
        # above just forced — free of extra traversals.
        bounds = (
            _sweep_root_bounds(engine, root_list, query_set, options)
            if prune
            else {}
        )

        best_key: float = math.inf
        best_nodes: frozenset | None = None
        best_root = None
        best_lambda: float | None = None
        scored: dict[frozenset, float] = {}
        pruned_roots: set = set()
        batches: dict = {}
        pairs_pruned = pairs_scored = 0

        for lam_i, lam in enumerate(grid):
            for root in root_list:
                if prune:
                    if root in pruned_roots:
                        pairs_pruned += 1
                        continue
                    if lam_i == 0 and bounds[root] > best_key:
                        # Decided once, at the root's first canonical
                        # encounter; the bound is λ-independent.
                        pruned_roots.add(root)
                        pairs_pruned += 1
                        continue
                per_lam = batches.get(root)
                if per_lam is None:
                    per_lam = self._candidates_for_root(
                        engine, backend_name, root, grid, query_set,
                        options.adjust,
                    )
                    batches[root] = per_lam
                candidate = per_lam[lam_i]
                if candidate in scored:
                    pairs_scored += 1
                    continue
                if prune:
                    # Checked *before* the score-cache lookup so warm and
                    # cold sweeps prune (and count) identically.
                    floor = self._score_bound(engine, candidate, root, options)
                    if floor > best_key:
                        # Sentinel entry: later (root, λ) encounters of
                        # this candidate dedup against it, and the trace
                        # still counts the candidate as materialized.
                        scored[candidate] = float(floor)
                        pairs_pruned += 1
                        continue
                pairs_scored += 1
                key = self._score_candidate(engine, candidate, root, options)
                scored[candidate] = key
                if key < best_key:
                    best_key = key
                    best_nodes = candidate
                    best_root = root
                    best_lambda = lam

        # The first (λ, root) pair is never pruned (no finite bound
        # exceeds an infinite incumbent), so a winner always exists.
        assert best_nodes is not None
        self._pairs_pruned += pairs_pruned
        self._pairs_scored += pairs_scored
        return SweepOutcome(
            nodes=best_nodes,
            root=best_root,
            lam=best_lambda,
            candidates=len(scored),
            key=best_key,
            backend=backend_name,
            runtime_seconds=time.perf_counter() - started,
        )

    def _candidates_for_root(
        self, engine, backend_name: str, root, grid: list, query_set,
        adjust: bool,
    ) -> list:
        """All of one root's grid candidates, batch-built through the LRU.

        Grid positions already cached are honored entry by entry; only
        the missing λ values go to the engine's batch constructor (which
        produces the same frozensets an isolated per-λ call would), so a
        warm service never rebuilds what it has while a cold one pays a
        single shared pass per root.
        """
        per_lam: list = [None] * len(grid)
        missing: list[int] = []
        for i, lam in enumerate(grid):
            cached = self._candidates.get(
                (backend_name, root, lam, query_set, adjust)
            )
            if cached is not None:
                per_lam[i] = cached
            else:
                missing.append(i)
        if missing:
            built = engine.candidates_for_root(
                root, [grid[i] for i in missing], query_set, adjust
            )
            for i, candidate in zip(missing, built):
                per_lam[i] = candidate
                self._candidates.put(
                    (backend_name, root, grid[i], query_set, adjust), candidate
                )
        return per_lam

    def _score_bound(
        self, engine, nodes: frozenset, root, options: SolveOptions
    ) -> int:
        """Certified integer floor on a known candidate's key (see
        :func:`repro.core.pruning.candidate_bound`)."""
        node_list = list(nodes)
        distances = engine.host_distances(root, node_list)
        selection = options.selection
        use_exact = selection == "wiener" or (
            selection in ("auto", "sampled")
            and len(nodes) <= options.exact_threshold
        )
        induced_edges = engine.induced_edge_count(nodes) if use_exact else 0
        return candidate_bound(
            selection,
            options.exact_threshold,
            len(nodes),
            distances,
            induced_edges,
        )

    def _score_candidate(
        self, engine, nodes: frozenset, root, options: SolveOptions
    ) -> float:
        """Score per the selection policy, caching root-independent kinds.

        Exact and sampled scores depend only on the candidate set (the
        sampled estimator is deterministically seeded), so they are cached
        across roots, λ values, *and* queries; the proxy ``A(H, r)`` is
        root-dependent and cheap, so it is computed directly.  Both
        backends return bit-equal scores, hence one shared cache.
        """
        selection = options.selection
        use_exact = selection == "wiener" or (
            selection in ("auto", "sampled")
            and len(nodes) <= options.exact_threshold
        )
        if use_exact:
            score_key = ("exact", nodes)
        elif selection == "sampled":
            score_key = (
                "sampled", nodes, options.sample_sources, options.sample_seed
            )
        else:
            return engine.score_proxy(nodes, root)
        cached = self._scores.get(score_key)
        if cached is not None:
            return cached
        value = _score(
            engine,
            nodes,
            root,
            selection,
            exact_threshold=options.exact_threshold,
            sample_sources=options.sample_sources,
            sample_seed=options.sample_seed,
        )
        self._scores.put(score_key, value)
        return value

    # ------------------------------------------------------------------
    # Public solving API
    # ------------------------------------------------------------------
    def solve(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> ConnectorResult:
        """Solve one query; repeated ``(query, options)`` pairs hit cache.

        Non-``ws-q`` methods (``options.method``) are dispatched through
        the uniform :data:`repro.baselines.METHODS` registry and cached
        the same way.

        Cache hits return the *same* :class:`ConnectorResult` object
        (standard memoization semantics, and what makes repeats
        bit-identical for free) — treat ``result.metadata`` as read-only,
        since mutating it would alter every later response for the query.
        """
        opts = self._merge(options)
        if self.graph is None and opts.method != "ws-q":
            raise GraphError(
                f"method {opts.method!r} needs the original graph; a "
                "service built from bare CSR arrays serves ws-q only"
            )
        query_set = frozenset(query)
        result_key = (query_set, opts)
        cached = self._results.get(result_key)
        if cached is not None:
            self._queries_served += 1
            return cached
        if opts.method == "ws-q":
            solved = self._solve_ws(query_set, opts)
            result = self._to_result(query_set, solved)
        else:
            from repro.baselines import METHODS

            try:
                method = METHODS[opts.method]
            except KeyError:
                raise ValueError(
                    f"unknown method {opts.method!r}; "
                    f"choose from {sorted(METHODS)}"
                ) from None
            result = method.solve(self.graph, query_set, opts)
        self._results.put(result_key, result)
        self._queries_served += 1
        return result

    def sweep(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> SweepOutcome:
        """Run one λ×root sweep and return its picklable outcome.

        This is the *shard-side worker API*: unlike :meth:`solve` it works
        on a graph-less (bare-CSR) service, so a shard worker process can
        serve it, and the graph-holding router turns the outcome into a
        :class:`ConnectorResult`.  Outcomes are cached in the result LRU
        under a ``("sweep", query, options)`` key — disjoint from
        :meth:`solve` keys — so warm re-asks of a shard are answered
        without recomputation, bit-identically.
        """
        opts = self._merge(options)
        query_set = frozenset(query)
        cache_key = ("sweep", query_set, opts)
        cached = self._results.get(cache_key)
        if cached is not None:
            self._queries_served += 1
            return cached
        outcome = self._solve_ws(query_set, opts)
        self._results.put(cache_key, outcome)
        self._queries_served += 1
        return outcome

    def solve_many(
        self,
        queries: Iterable[Iterable[Node]],
        options: SolveOptions | None = None,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> list[ConnectorResult]:
        """Solve a batch of queries; returns results in input order.

        Sequentially (default) the batch flows through :meth:`solve`, so
        the engine's root BFS cache deduplicates shared roots across
        queries and repeated queries are free.  With ``parallel=True`` the
        *distinct* uncached queries are distributed over worker processes
        that receive the shared CSR int arrays (not a pickled graph) and
        keep their own engine caches for the jobs they serve.
        """
        query_sets = [frozenset(q) for q in queries]
        opts = self._merge(options)
        if not parallel or opts.method != "ws-q":
            return [self.solve(query_set, opts) for query_set in query_sets]
        return self._solve_many_parallel(query_sets, opts, max_workers)

    def solve_parallel_roots(
        self,
        query: Iterable[Node],
        options: SolveOptions | None = None,
        *,
        max_workers: int | None = None,
    ) -> ConnectorResult:
        """The §6.6 Map-Reduce: one worker per candidate root.

        Each worker receives the shared CSR arrays, sweeps the λ grid for
        its single root with exact (``"wiener"``) scoring, and reports the
        best candidate; the driver keeps the overall winner.  Equivalent
        in quality to :meth:`solve` with ``selection="wiener"`` (ties
        between equal-quality candidates may resolve differently).
        """
        if self.graph is None:
            raise GraphError("solve_parallel_roots needs the original graph")
        opts = self._merge(options).replace(selection="wiener")
        query_set = frozenset(query)
        self._validate(query_set)
        if len(query_set) == 1:
            return self.solve(query_set, opts)

        roots = _root_list(opts, query_set)
        workers = max_workers or min(len(roots), os.cpu_count() or 1)
        jobs = [(tuple(sorted(query_set, key=repr)), (root,)) for root in roots]
        payload = self.worker_payload(opts)
        best: SweepOutcome | None = None
        total_candidates = 0
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(payload,),
        )
        try:
            for solved in pool.map(_worker_solve_roots, jobs):
                total_candidates += solved.candidates
                if best is None or solved.key < best.key:
                    best = solved
        finally:
            # A worker fault surfaces mid-iteration; without cancelling the
            # queued jobs the join can only happen after every remaining job
            # runs, and an interrupted parent leaks pool semaphores.  The
            # explicit finally-joined shutdown reaps the workers on every
            # exit path (tests/test_service.py asserts clean teardown).
            pool.shutdown(wait=True, cancel_futures=True)

        assert best is not None and best.key < math.inf
        self._queries_served += 1
        return ConnectorResult(
            host=self.graph,
            nodes=best.nodes,
            query=query_set,
            method="ws-q",
            metadata={
                "root": best.root,
                "parallel": True,
                "workers": workers,
                "candidates": total_candidates,
                "backend": best.backend,
            },
        )

    # ------------------------------------------------------------------
    # Parallel plumbing (array shipping)
    # ------------------------------------------------------------------
    def worker_payload(
        self,
        options: SolveOptions | None = None,
        *,
        cache_limits: dict | None = None,
    ) -> dict:
        """The picklable seed of a worker-side replica of this service.

        For the CSR backend that is the two int arrays plus the label
        list — orders of magnitude less pickling than the dict-of-sets
        ``Graph`` the old ``core.parallel`` shipped.  The dict backend
        (no numpy, or forced) still ships the graph.  ``cache_limits``
        forwards ``max_cached_*`` constructor bounds to the replica, so a
        sharded deployment can pin every shard's memory footprint.

        Feed the payload to :func:`service_from_payload` in the worker.
        """
        opts = self._merge(options)
        payload: dict = {
            "options": opts,
            "limits": dict(cache_limits) if cache_limits else {},
            # The graph version the payload captures: a replica built from
            # it starts at this epoch, so a respawn after deltas reports
            # the right version in the mutate/handshake protocol.
            "epoch": self.epoch,
        }
        if self._backend_name(opts) == "csr":
            self._engine("csr")  # ensures self._csr exists
            csr = self._csr
            payload.update(
                kind="csr",
                indptr=csr.indptr,
                indices=csr.indices,
                node_of=csr.node_of,
            )
        else:
            payload.update(kind="graph", graph=self.graph)
        return payload

    def _solve_many_parallel(
        self,
        query_sets: Sequence[frozenset],
        opts: SolveOptions,
        max_workers: int | None,
    ) -> list[ConnectorResult]:
        # Deduplicate the batch and strip queries already served: workers
        # only ever see distinct, uncached work.  Results for this batch
        # are held in a local map so LRU eviction (a bounded result cache
        # smaller than the batch) can never lose them mid-call.
        batch: dict[frozenset, ConnectorResult] = {}
        pending: list[frozenset] = []
        pending_set: set[frozenset] = set()
        for query_set in query_sets:
            if query_set in batch or query_set in pending_set:
                continue
            cached = self._results.get((query_set, opts))
            if cached is not None:
                batch[query_set] = cached
            else:
                self._validate(query_set)
                pending.append(query_set)
                pending_set.add(query_set)
        if pending:
            payload = self.worker_payload(opts)
            # Batch-level root co-location: queries that share terminals
            # share per-root BFS tables inside a worker's engine cache, so
            # order the batch by its canonical root tuple and hand the
            # pool contiguous chunks — overlapping queries land in one
            # process and reuse its tables instead of recomputing them
            # across the pool.  Results are keyed by query set, so the
            # reorder cannot change what any caller receives.
            pending.sort(
                key=lambda q: tuple(repr(r) for r in _root_list(opts, q))
            )
            jobs = [tuple(sorted(q, key=repr)) for q in pending]
            workers = max_workers or min(len(pending), os.cpu_count() or 1)
            chunksize = max(1, len(jobs) // (workers * 4))
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(payload,),
            )
            try:
                solutions = pool.map(_worker_solve, jobs, chunksize=chunksize)
                for query_set, solved in zip(pending, solutions):
                    result = self._to_result(
                        query_set,
                        solved,
                        extra={"parallel": True, "workers": workers},
                    )
                    batch[query_set] = result
                    self._results.put((query_set, opts), result)
            finally:
                # Join the pool on *every* exit path and cancel what never
                # started: a fault in one worker job must not strand queued
                # jobs or leak the pool's semaphores past the call.
                pool.shutdown(wait=True, cancel_futures=True)
        self._queries_served += len(query_sets)
        return [batch[query_set] for query_set in query_sets]

    def _to_result(
        self, query_set: frozenset, solved: SweepOutcome, extra: dict | None = None
    ) -> ConnectorResult:
        metadata = {
            "root": solved.root,
            "lambda": solved.lam,
            "candidates": solved.candidates,
            "backend": solved.backend,
            "runtime_seconds": solved.runtime_seconds,
        }
        if extra:
            metadata.update(extra)
        return ConnectorResult(
            host=self.graph if self.graph is not None
            else self._induced_host(solved.nodes),
            nodes=solved.nodes,
            query=query_set,
            method="ws-q",
            metadata=metadata,
        )

    def _induced_host(self, nodes: frozenset) -> Graph:
        """A dict host for results of a graph-less (bare-CSR) service.

        ``ConnectorResult`` uses its host only through
        ``host.subgraph(result.nodes)`` (Wiener index and density of the
        connector), and the induced subgraph of an already-induced host is
        itself — so materializing just ``G[S]`` from the CSR arrays gives
        bit-identical derived metrics without ever building the full dict
        graph.  Connectors are small (tens of vertices), so this stays
        cheap even on a 10^6-node instance.
        """
        self._engine("csr")  # ensures self._csr exists
        csr = self._csr
        return csr.induced(csr.indices_for(nodes)).to_graph()

    # ------------------------------------------------------------------
    # Mutation: versioned epochs + scoped invalidation
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The graph version this service serves (0 until the first delta)."""
        return self._versioned.epoch

    def deltas_since(self, epoch: int):
        """Catch-up deltas from ``epoch`` to now (``None`` = unrecoverable).

        The negotiation primitive of the reconnect handshake: a replica
        that was down across some epochs reports its last known epoch and
        replays this suffix instead of resyncing a full graph payload.
        """
        return self._versioned.deltas_since(epoch)

    def align_epoch(self, epoch: int) -> None:
        """Adopt a peer's epoch numbering for this (digest-verified) graph.

        Shard hosts call this when a router's ``hello`` digest matches
        but its epoch count does not (the daemon was restarted with the
        already-mutated dataset and began counting from 0 again).  Pure
        renumbering — graph and caches untouched.
        """
        self._versioned.align(epoch)

    def apply_delta(self, delta: GraphDelta) -> int:
        """Mutate the graph to the next epoch; returns the new epoch number.

        All-or-nothing: an inapplicable delta raises
        :class:`~repro.errors.DeltaError` with the graph, the caches, and
        the epoch untouched.

        On success the caches are **scope-invalidated**, not dropped: a
        reachability-invariance pass over the delta decides, per cached
        entry, whether the touched edges can reach the entry's answer.

        * **root-BFS entries** (per engine) survive when every delta edge
          provably preserves that root's distances and canonical parents
          — see the engines' ``apply_delta`` for the exact rules;
        * **score entries** survive unless a delta edge has *both*
          endpoints inside the scored candidate set (exact and sampled
          scores are pure functions of the induced subgraph ``G[S]``,
          which only such an edge can change);
        * **candidate and result entries** are always evicted: every edge
          of the host graph participates in the Lemma-4 reweighted
          instance ``G_{r,λ}``, so any edge change can reach them.

        ``entries_retained`` / ``entries_invalidated`` in :meth:`stats`
        accumulate the outcome, and the epoch bump invalidates the
        handshake digest — remote peers must renegotiate before their
        next sweep is accepted.
        """
        if not isinstance(delta, GraphDelta):
            raise DeltaError(
                f"apply_delta takes a GraphDelta, got {type(delta).__name__}"
            )
        # Reject before analysis: the retention pass below fixes cached
        # entries up in place, which must not happen for a delta that the
        # version index would then refuse.
        if delta.reweights:
            raise DeltaError(
                "reweight ops need a weighted graph; the serving host "
                "graph is unweighted"
            )
        if self.graph is not None:
            delta._check_applicable(self.graph.has_edge)
        else:
            delta._check_applicable(
                lambda u, v: csr_has_edge(self._csr, u, v)
            )
        nodes_changed = any(
            not self._has_node(node) for node in delta.touched_nodes()
        )
        touched = delta.touched_edges()

        epoch = self._versioned.apply(delta)
        self._csr = self._versioned.csr if self._versioned.csr_built else None
        self._index_digest = None
        # The landmark index is a whole-graph structure; when the service
        # owns one, rebuild it *now* rather than lazily — shard replicas
        # apply deltas off the query path, so an eager rebuild keeps the
        # first post-mutate sweep from paying k BFS/Dijkstra passes.
        self._landmark_index = None
        if self._landmark_count is not None:
            self._build_landmark_index()

        retained = invalidated = 0
        for name, engine in self._engines.items():
            if name == "csr":
                kept, gone = engine.apply_delta(delta, self._versioned.csr)
            else:
                kept, gone = engine.apply_delta(
                    delta, nodes_changed=nodes_changed
                )
            retained += kept
            invalidated += gone
        for key in self._scores.keys():
            nodes = key[1]
            if any(u in nodes and v in nodes for u, v in touched):
                self._scores.pop(key)
                invalidated += 1
            else:
                retained += 1
        invalidated += self._candidates.clear()
        invalidated += self._results.clear()
        self._entries_retained += retained
        self._entries_invalidated += invalidated
        return epoch

    # ------------------------------------------------------------------
    # Observability / extras
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A snapshot of the cache layers (serving observability)."""
        cached_roots = 0
        for engine in self._engines.values():
            cached_roots += getattr(engine, "cached_roots", 0)
        return ServiceStats(
            queries_served=self._queries_served,
            result_hits=self._results.hits,
            result_misses=self._results.misses,
            candidate_hits=self._candidates.hits,
            candidate_misses=self._candidates.misses,
            score_hits=self._scores.hits,
            score_misses=self._scores.misses,
            cached_roots=cached_roots,
            result_cache_size=len(self._results),
            candidate_cache_size=len(self._candidates),
            score_cache_size=len(self._scores),
            uptime_seconds=time.monotonic() - self._created,
            epoch=self._versioned.epoch,
            entries_invalidated=self._entries_invalidated,
            entries_retained=self._entries_retained,
            pairs_pruned=self._pairs_pruned,
            pairs_scored=self._pairs_scored,
            landmark_rebuilds=self._landmark_rebuilds,
        )

    @property
    def landmark_index(self):
        """The service's shared :class:`LandmarkIndex` (or ``None``).

        Built lazily on first access when the service was constructed
        with ``landmarks=k`` — one set of landmark BFS tables serves
        every approximate-distance consumer for the life of the service
        (the ROADMAP's "landmark reuse across queries" item).
        """
        if self._landmark_count is None:
            return None
        if self._landmark_index is None:
            self._build_landmark_index()
        return self._landmark_index

    def _build_landmark_index(self) -> None:
        """(Re)build the shared landmark index and count the rebuild."""
        from repro.graphs.landmarks import LandmarkIndex

        if self.graph is None:
            # Bare-CSR replicas (shard workers) still get landmark tables
            # — the index runs entirely on the shared int arrays.
            if self._csr is None:
                self._csr = self._versioned.csr
            self._landmark_index = LandmarkIndex(
                None, num_landmarks=self._landmark_count, csr=self._csr
            )
        else:
            if (
                self._csr is None
                and HAS_NUMPY
                and self.graph.num_nodes >= LandmarkIndex.CSR_THRESHOLD
            ):
                # Build the service's shared arrays now rather than letting
                # the index create a private duplicate; the first CSR solve
                # adopts the same object.
                self._csr = self._versioned.csr
            self._landmark_index = LandmarkIndex(
                self.graph, num_landmarks=self._landmark_count, csr=self._csr
            )
        self._landmark_rebuilds += 1

    def estimate_distance(self, u: Node, v: Node) -> float:
        """Landmark upper bound on ``d_G(u, v)`` (requires ``landmarks=``)."""
        index = self.landmark_index
        if index is None:
            raise GraphError(
                "construct the service with landmarks=k to enable estimates"
            )
        return index.estimate(u, v)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release nothing — an in-process service holds no processes.

        Exists so every serving layer shares one lifecycle surface:
        callers (the CLI, benchmarks, the gateway server) can write
        ``with service:`` / ``service.close()`` without caring whether the
        service is this in-process one or the sharded one whose
        :meth:`~repro.core.sharded.ShardedConnectorService.close` reaps
        real shard processes.
        """

    def __enter__(self) -> "ConnectorService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        shape = (
            f"|V|={self.num_nodes}" if self.graph is not None or self._csr
            else "?"
        )
        return (
            f"{type(self).__name__}({shape}, served={self._queries_served}, "
            f"backends={sorted(self._engines)})"
        )


def _root_list(options: SolveOptions, query_set: frozenset) -> list:
    """The canonical root-candidate list of one sweep.

    Shared by the sequential sweep and the parallel-roots map so the two
    paths can never diverge on root handling (order, dedup, the Lemma-5
    default of the query set itself) — divergence here silently breaks the
    bit-identity contract between them.
    """
    roots = (
        list(dict.fromkeys(options.roots))
        if options.roots is not None
        else sorted(query_set, key=repr)
    )
    if not roots:
        raise InvalidQueryError("root candidate list must be non-empty")
    return roots


def _sweep_root_bounds(
    engine, root_list: list, query_set: frozenset, options: SolveOptions
) -> dict:
    """Per-root certified score floors for one sweep (see :mod:`repro.core.pruning`).

    Built from the exact per-root distance tables the sweep's
    reachability check has already forced, restricted to the query
    vertices — O(|roots| · |Q|) dictionary lookups, no new traversals.
    Every quantity is an integer derived deterministically from
    ``(graph, query, options)``, so all serving paths (both backends,
    warm or cold caches, any shard replica) compute identical bounds and
    hence make identical pruning decisions.
    """
    query = sorted(query_set, key=repr)
    dist_to_q = {
        r: dict(zip(query, engine.host_distances(r, query)))
        for r in dict.fromkeys(root_list)
    }
    # One (distance_sum, |Q ∪ {r'}|) floor per potential *scoring* root:
    # candidate dedup means a pruned root's candidate may be scored by any
    # other root, so proxy bounds must hold under all of them.
    scorer_floors = [
        (
            sum(d for q, d in dist_to_q[r].items() if q != r),
            len(query_set) + (0 if r in query_set else 1),
        )
        for r in root_list
    ]

    def lower(u, v) -> int:
        # Certified lower bound on d_G(u, v) for query vertices: exact
        # when either endpoint has a forced table (always true for the
        # Lemma-5 default roots = Q), else the best landmark-style
        # triangle gap through the root tables, floored at 1.
        if u == v:
            return 0
        if u in dist_to_q:
            return dist_to_q[u][v]
        if v in dist_to_q:
            return dist_to_q[v][u]
        gap = max(abs(t[u] - t[v]) for t in dist_to_q.values())
        return max(gap, 1)

    q_pair_sum = 0
    for i, u in enumerate(query):
        for v in query[i + 1:]:
            q_pair_sum += lower(u, v)

    bounds: dict = {}
    for r in root_list:
        dmap = dist_to_q[r]
        eccentricity = max(dmap.values())
        if r in query_set:
            num_terminals = len(query_set)
            pair_sum = q_pair_sum
        else:
            num_terminals = len(query_set) + 1
            pair_sum = q_pair_sum + sum(dmap.values())
        min_size = max(num_terminals, eccentricity + 1)
        bounds[r] = root_bound(
            options.selection,
            options.exact_threshold,
            min_size,
            eccentricity,
            pair_sum,
            num_terminals,
            scorer_floors,
        )
    return bounds


def service_from_payload(payload: dict) -> ConnectorService:
    """Rebuild a worker-side :class:`ConnectorService` from a payload.

    The inverse of :meth:`ConnectorService.worker_payload` — this is the
    whole picklable worker API: a ``"csr"`` payload yields a graph-less
    service sharing the router's int arrays (it can :meth:`~ConnectorService.sweep`
    but not build results), a ``"graph"`` payload yields a full replica.
    Used by both the per-batch pools above and the persistent shard
    processes of :mod:`repro.core.sharded`.
    """
    limits = payload.get("limits") or {}
    epoch = payload.get("epoch", 0)
    if payload["kind"] == "csr":
        csr = CSRGraph(payload["indptr"], payload["indices"], payload["node_of"])
        return ConnectorService(
            csr=csr, options=payload["options"], epoch=epoch, **limits
        )
    return ConnectorService(
        payload["graph"], options=payload["options"], epoch=epoch, **limits
    )


# ----------------------------------------------------------------------
# Worker-process globals (installed once per process by the initializer).
# ----------------------------------------------------------------------
_WORKER_SERVICE: ConnectorService | None = None


def _worker_init(payload) -> None:
    global _WORKER_SERVICE
    _WORKER_SERVICE = service_from_payload(payload)


def _worker_solve(query_tuple) -> SweepOutcome:
    """solve_many job: one full sweep for one query."""
    assert _WORKER_SERVICE is not None
    return _WORKER_SERVICE._solve_ws(
        frozenset(query_tuple), _WORKER_SERVICE.options
    )


def _worker_solve_roots(args) -> SweepOutcome:
    """parallel-roots job: sweep the λ grid for one pinned root."""
    assert _WORKER_SERVICE is not None
    query_tuple, roots = args
    options = _WORKER_SERVICE.options.replace(roots=roots)
    return _WORKER_SERVICE._solve_ws(frozenset(query_tuple), options)
