"""Jittered exponential backoff — the shared retry timing of the serving tower.

One policy object answers the only question retry loops keep re-deciding:
*how long until the next attempt*.  The serving layers that heal
themselves — :class:`~repro.core.sharded.ShardedConnectorService` reviving
a dead shard slot, :class:`~repro.serving.remote.RemoteShardTransport`
re-dialing a dropped daemon link — share this module so their timing
behavior (exponential growth, a hard delay cap, full-range jitter to
de-synchronize a fleet of routers hammering one recovering host) cannot
drift apart.

Two shapes:

* :class:`BackoffPolicy` — the immutable timing rule.  ``delays(seed=...)``
  yields the jittered schedule; a fixed seed makes the stream
  reproducible, which is what the chaos tests pin.
* :class:`RetrySchedule` — a *non-blocking* ledger over one policy for
  callers that cannot sleep (the synchronous shard router checks
  ``due()`` at batch boundaries instead of blocking a batch on a revival
  timer): ``record_failure()`` books the next attempt time,
  ``due(now)`` says whether it has arrived.

The blocking convenience :func:`call_with_backoff` exists for scripts and
tests; the router never blocks on it.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["BackoffPolicy", "RetrySchedule", "call_with_backoff"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Timing rule for retries: exponential growth, capped, jittered.

    Attempt ``k`` (0-based) waits ``base_delay * multiplier**k`` seconds,
    clamped to ``max_delay``, then jittered uniformly within
    ``±jitter * delay`` (never below zero).  Jitter exists so many
    routers that lost the same shard host do not retry in lockstep and
    re-stampede it the moment it comes back.
    """

    base_delay: float = 0.5
    max_delay: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be positive, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be at least "
                f"base_delay ({self.base_delay})"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be at least 1.0, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """The un-jittered delay before attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def delays(self, seed=None) -> Iterator[float]:
        """An infinite stream of jittered delays (deterministic per seed)."""
        rng = random.Random(seed)
        attempt = 0
        while True:
            delay = self.delay(attempt)
            if self.jitter:
                delay = max(0.0, delay + rng.uniform(-1.0, 1.0) * self.jitter * delay)
            yield delay
            attempt += 1


class RetrySchedule:
    """A non-blocking retry ledger: *when* is the next attempt allowed.

    Built for callers that must not sleep — the shard router consults the
    schedule at batch boundaries and simply skips revival while the
    timer runs.  ``record_failure()`` advances the jittered schedule;
    ``due()`` compares against a monotonic clock.  A fresh schedule is
    due immediately (the first attempt costs nothing); pass
    ``initial_delay=True`` to start the timer at construction, which is
    what a just-declared-dead shard wants (it *just* failed — retrying
    in the same breath is the first failure all over again).
    """

    def __init__(
        self,
        policy: BackoffPolicy | None = None,
        *,
        seed=None,
        initial_delay: bool = False,
        clock=time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else BackoffPolicy()
        self._delays = self.policy.delays(seed)
        self._clock = clock
        self.attempts = 0
        self.next_attempt = self._clock()
        if initial_delay:
            self.next_attempt += next(self._delays)

    def due(self, now: float | None = None) -> bool:
        """True when the backoff timer has expired."""
        return (self._clock() if now is None else now) >= self.next_attempt

    def record_failure(self, now: float | None = None) -> None:
        """Book the next attempt time after a failed try."""
        self.attempts += 1
        base = self._clock() if now is None else now
        self.next_attempt = base + next(self._delays)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"{type(self).__name__}(attempts={self.attempts}, "
            f"next_in={max(0.0, self.next_attempt - self._clock()):.2f}s)"
        )


def call_with_backoff(
    fn,
    *,
    policy: BackoffPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    max_attempts: int = 5,
    seed=None,
    sleep=time.sleep,
):
    """Call ``fn()`` until it succeeds, sleeping the policy's delays between.

    The blocking convenience for scripts and tests; raises the last
    failure after ``max_attempts`` tries.  The synchronous serving
    layers use :class:`RetrySchedule` instead — a router must never
    block a live batch on another shard's revival timer.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
    delays = (policy if policy is not None else BackoffPolicy()).delays(seed)
    for attempt in range(max_attempts):
        try:
            return fn()
        except retry_on:
            if attempt == max_attempts - 1:
                raise
            sleep(next(delays))
    raise AssertionError("unreachable")  # pragma: no cover
