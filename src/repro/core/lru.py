"""The one LRU bounded-map policy shared by every cache layer.

Root-BFS data inside both engines, and the candidate/score/result layers
of :class:`repro.core.service.ConnectorService`, all follow the same
rules: refresh recency on hit, evict the least-recently-used entry past
``maxsize``, count hits and misses for observability.  One implementation
here keeps the policy identical everywhere (a divergence between layers
would be invisible until it skewed an eviction-identity property test).
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]

#: Sentinel distinguishing "not cached" from a cached ``None`` in :meth:`pop`.
_MISSING = object()


class LRUCache:
    """A tiny LRU map with hit/miss counters; ``maxsize=None`` = unbounded."""

    __slots__ = ("_data", "_maxsize", "hits", "misses")

    def __init__(self, maxsize: int | None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"cache size must be positive or None, got {maxsize}")
        self._data: OrderedDict = OrderedDict()
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self._maxsize is not None and len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def peek(self, key):
        """Read ``key`` without recency or counter effects (``None`` if absent)."""
        return self._data.get(key)

    def replace(self, key, value) -> None:
        """Overwrite an *existing* entry without recency or counter effects.

        Raises ``KeyError`` for absent keys: replacing is cache
        maintenance (e.g. rebasing a retained entry onto new graph
        arrays), and silently inserting under maintenance would bypass
        the recency bookkeeping of :meth:`put`.
        """
        if key not in self._data:
            raise KeyError(key)
        self._data[key] = value

    def pop(self, key) -> bool:
        """Drop ``key`` if cached; returns whether it was present.

        A targeted eviction (scoped invalidation after a graph delta), so
        it touches neither the hit nor the miss counter — those measure
        lookup traffic, not cache maintenance.
        """
        return self._data.pop(key, _MISSING) is not _MISSING

    def keys(self):
        """A snapshot list of the cached keys, LRU-first."""
        return list(self._data)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._data)
        self._data.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._data)
