"""The one LRU bounded-map policy shared by every cache layer.

Root-BFS data inside both engines, and the candidate/score/result layers
of :class:`repro.core.service.ConnectorService`, all follow the same
rules: refresh recency on hit, evict the least-recently-used entry past
``maxsize``, count hits and misses for observability.  One implementation
here keeps the policy identical everywhere (a divergence between layers
would be invisible until it skewed an eviction-identity property test).
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache:
    """A tiny LRU map with hit/miss counters; ``maxsize=None`` = unbounded."""

    __slots__ = ("_data", "_maxsize", "hits", "misses")

    def __init__(self, maxsize: int | None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"cache size must be positive or None, got {maxsize}")
        self._data: OrderedDict = OrderedDict()
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self._maxsize is not None and len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)
