"""AsyncGateway — an asyncio serving front-end with micro-batching.

Every entry point below this module assumes the caller already holds a
fully-formed batch: :meth:`ConnectorService.solve_many` and the sharded
router both take a *list* of queries.  Real serving traffic arrives one
request at a time, concurrently — the ROADMAP's async-serving item.  The
gateway is the layer in between:

* **bounded admission queue** — :meth:`AsyncGateway.asolve` awaits on a
  queue with ``max_queue`` slots, so a flood of arrivals backpressures
  the callers instead of growing memory without bound.  The non-blocking
  :meth:`try_solve` variant *sheds* instead: when the queue is full it
  raises :class:`GatewayOverloadedError` immediately (and counts the shed
  request), the standard fast-fail admission-control policy;
* **micro-batch windows** — a single batcher task closes a window when it
  holds ``max_batch`` requests or the oldest request has waited
  ``max_wait_ms``, whichever comes first, then dispatches the window
  through the backing service's ``solve_many`` on a thread executor.  The
  event loop never blocks on a sweep, and because the executor is
  single-threaded the backing service (which is not thread-safe) only
  ever sees one batch at a time — while a window is solving, the next
  one is already filling;
* **cross-arrival coalescing** — the sharded router already dedups
  identical keys *within* a batch; the gateway extends that across
  *arrival time*.  Requests are keyed on
  ``(query, SolveOptions.stable_digest())``; an arrival whose key is
  already queued or in flight shares the existing future — one solve,
  many awaiters — which is how a burst of identical hot queries costs one
  sweep no matter how it interleaves with the windows;
* **observability** — :meth:`stats` snapshots a :class:`GatewayStats`:
  queue depth, in-flight requests, coalesced/shed counters, windows
  dispatched and their sizes, and a bounded reservoir of per-request
  latencies (admission to result) behind
  :meth:`GatewayStats.percentile` for p50/p95/p99 SLO checks;
* **graceful shutdown** — :meth:`aclose` stops admission, drains every
  queued request through normal windows, waits for in-flight windows,
  and resolves every outstanding future.  After ``aclose()`` the gateway
  is back in its idle state: the next :meth:`asolve` restarts the
  batcher ("reopen"), so one gateway can outlive maintenance windows.

Identity contract
-----------------

The gateway never computes: it only groups requests into ``solve_many``
calls on the backing service, and both backing services are bit-identical
to the one-shot :func:`~repro.core.wiener_steiner.wiener_steiner`.  Hence
connectors returned through :meth:`asolve` are bit-identical to one-shot
solves for *any* interleaving of concurrent submissions, any window
configuration, over a single service or a sharded one —
``tests/test_gateway.py`` fuzzes exactly this.

Quickstart
----------
::

    service = ConnectorService(graph)
    async with AsyncGateway(service, max_batch=16, max_wait_ms=2.0) as gw:
        results = await asyncio.gather(*(gw.asolve(q) for q in queries))
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.options import SolveOptions
from repro.core.result import ConnectorResult
from repro.graphs.graph import Node

__all__ = [
    "AsyncGateway",
    "GatewayClosedError",
    "GatewayOverloadedError",
    "GatewayStats",
    "service_health",
]


def service_health(stats) -> dict:
    """Summarize a backing service's snapshot as a health verdict.

    Accepts whatever the gateway's backing service returned from
    ``stats()`` — a :class:`~repro.core.sharded.ShardedStats` (the
    replicated ring, which carries real degradation state), a plain
    :class:`~repro.core.service.ServiceStats` (a single in-process
    replica: alive means healthy), or ``None`` (the service exposes no
    stats).  Returns a JSON-ready dict with at least ``status``
    (``"ok"`` or ``"degraded"``) and ``degraded``; for a sharded service
    it adds the ring's redundancy picture — ``replication``,
    ``dead_shards``, and the lifetime ``failovers`` / ``reconnects`` /
    ``shards_failed`` counters — so a load balancer or supervisor can
    read "serving, but with less redundancy than configured" straight
    off the gateway's ``stats`` op without knowing the service type.
    """
    if stats is None:
        return {"status": "ok", "degraded": False}
    dead = tuple(getattr(stats, "dead_shards", ()))
    health = {
        "status": "degraded" if dead else "ok",
        "degraded": bool(dead),
    }
    if hasattr(stats, "replication"):
        health.update(
            replication=stats.replication,
            dead_shards=list(dead),
            failovers=stats.failovers,
            reconnects=stats.reconnects,
            shards_failed=stats.shards_failed,
        )
    return health


class GatewayOverloadedError(RuntimeError):
    """Raised by :meth:`AsyncGateway.try_solve` when the queue is full."""


class GatewayClosedError(RuntimeError):
    """Raised when a request arrives while the gateway is draining."""


@dataclass(frozen=True)
class GatewayStats:
    """A point-in-time snapshot of the gateway (serving observability).

    ``queued``/``in_flight`` are instantaneous; every other field counts
    over the gateway's lifetime (surviving ``aclose()``/reopen cycles).
    ``window_sizes`` holds only the most *recent* windows (bounded, so a
    long-lived daemon's snapshot stays small); ``window_size_sum`` and
    ``windows_dispatched`` carry the exact lifetime totals behind
    :attr:`mean_window_size`.  ``latency_samples`` is a bounded reservoir
    of the most recent per-request latencies in seconds (admission to
    result), feeding :meth:`percentile` for p50/p95/p99 SLO checks.
    """

    queued: int
    in_flight: int
    admitted: int
    coalesced: int
    shed: int
    windows_dispatched: int
    window_sizes: tuple[int, ...]
    window_size_sum: int
    results_served: int
    failures: int
    latency_samples: tuple[float, ...] = ()

    @property
    def mean_window_size(self) -> float:
        """Mean requests per dispatched window (0.0 before any window)."""
        if not self.windows_dispatched:
            return 0.0
        return self.window_size_sum / self.windows_dispatched

    def percentile(self, p: float) -> float:
        """The ``p``-th latency percentile in seconds (``0 <= p <= 1``).

        Nearest-rank over the recent-sample reservoir; 0.0 when no
        request has been served yet.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {p}")
        if not self.latency_samples:
            return 0.0
        ordered = sorted(self.latency_samples)
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]


class _Request:
    """One admitted request: its key, payload, and the shared future."""

    __slots__ = ("key", "query_set", "options", "future", "admitted_at")

    def __init__(self, key, query_set, options, future, admitted_at) -> None:
        self.key = key
        self.query_set = query_set
        self.options = options
        self.future = future
        self.admitted_at = admitted_at


#: Queue sentinel telling the batcher to finish the current drain and exit.
_CLOSE = object()


class AsyncGateway:
    """Serve concurrently-arriving queries through micro-batched windows.

    Parameters
    ----------
    service:
        The backing :class:`~repro.core.service.ConnectorService` or
        :class:`~repro.core.sharded.ShardedConnectorService` (anything
        with ``solve_many(queries, options)``).  The gateway owns the
        *scheduling* of the service, not its lifetime: closing the
        gateway leaves the service (and its warm caches) untouched.
    options:
        Default :class:`SolveOptions` for requests that pass none; falls
        back to the service's own defaults.
    max_batch:
        Most requests per dispatched window (≥ 1).
    max_wait_ms:
        Longest a window may stay open waiting for more arrivals once it
        holds a request.  ``0`` disables waiting: every window closes as
        soon as the queue stops yielding requests synchronously.
    max_queue:
        Admission-queue bound; :meth:`asolve` backpressures (awaits) and
        :meth:`try_solve` sheds when it is full.
    max_pending_windows:
        Most windows dispatched but not yet resolved (≥ 1).  Without this
        bound a slow service would let the batcher drain the queue into
        an ever-growing pile of waiting windows and ``max_queue`` would
        never bind; with it, the batcher stalls once the pile is full,
        the queue genuinely fills, and admission backpressure engages.
        The default of 2 keeps one window solving and one staged.
    """

    def __init__(
        self,
        service,
        options: SolveOptions | None = None,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        max_pending_windows: int = 2,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        if max_pending_windows < 1:
            raise ValueError(
                f"max_pending_windows must be at least 1, got {max_pending_windows}"
            )
        self._service = service
        self._options = options
        self._max_batch = max_batch
        self._max_wait = max_wait_ms / 1000.0
        self._max_queue = max_queue
        self._max_pending_windows = max_pending_windows
        self._window_slots: asyncio.Semaphore | None = None
        # Lazily-created per-run state (needs a running event loop; reset
        # by aclose() so the gateway can be reopened).
        self._queue: asyncio.Queue | None = None
        self._batcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatches: set[asyncio.Task] = set()
        self._inflight: dict[object, asyncio.Future] = {}
        self._closing = False
        self._close_done: asyncio.Event | None = None
        self._close_task: asyncio.Task | None = None
        # Lifetime counters (survive aclose/reopen).  Window sizes keep a
        # bounded recent sample plus a running sum — an unbounded list
        # would be a slow leak in a daemon dispatching windows for days.
        self._admitted = 0
        self._coalesced = 0
        self._shed = 0
        self._windows = 0
        self._window_sizes: deque[int] = deque(maxlen=256)
        self._window_size_sum = 0
        self._served = 0
        self._failures = 0
        # Recent per-request latencies (admission → result, seconds):
        # the reservoir behind GatewayStats.percentile(), bounded for the
        # same slow-leak reason as the window sizes.
        self._latencies: deque[float] = deque(maxlen=512)

    @property
    def service(self):
        """The backing service (shared; the gateway does not own it)."""
        return self._service

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _merge(self, options: SolveOptions | None) -> SolveOptions:
        if options is not None:
            if not isinstance(options, SolveOptions):
                raise TypeError(
                    f"options must be a SolveOptions, got {type(options).__name__}"
                )
            return options
        if self._options is not None:
            return self._options
        return self._service.options

    def _ensure_running(self) -> None:
        if self._closing:
            raise GatewayClosedError("gateway is draining; retry after aclose()")
        if (
            self._batcher is not None
            and not self._batcher.done()
            and self._batcher.get_loop() is not asyncio.get_running_loop()
        ):
            # A live batcher on another loop means the gateway was used in
            # one asyncio.run() and reused in a second without aclose().
            # Its queue and futures belong to the (likely closed) old
            # loop; failing clearly here beats a RuntimeError from deep
            # inside Queue internals — or a silent hang.
            raise GatewayClosedError(
                "gateway is still bound to another event loop; "
                "aclose() it there before reusing it"
            )
        if self._batcher is None or self._batcher.done():
            if self._batcher is not None:
                # A done-but-not-nulled batcher means it *crashed* (a
                # normal aclose() nulls it): the task was cancelled out
                # from under us, say by a framework tearing down its
                # scope.  Fail every stranded future loudly — rebuilding
                # the queue would abandon them pending, and later equal
                # keys would coalesce onto dead futures forever.
                for key, future in list(self._inflight.items()):
                    if not future.done():
                        future.set_exception(
                            GatewayClosedError(
                                "gateway batcher died; request abandoned"
                            )
                        )
                        future.exception()  # consumed here if unawaited
                    self._inflight.pop(key, None)
            # First request (or first after aclose/reopen/crash): build
            # the run-scoped machinery on the *current* loop.  The
            # executor is *reused* if it exists — a crashed batcher may
            # have left a window mid-solve on its thread, and the backing
            # service is not thread-safe, so new windows must queue
            # behind that solve, never run beside it on a fresh thread.
            self._queue = asyncio.Queue(maxsize=self._max_queue)
            self._window_slots = asyncio.Semaphore(self._max_pending_windows)
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="gateway-solve"
                )
            self._batcher = asyncio.get_running_loop().create_task(
                self._batch_loop(), name="gateway-batcher"
            )

    def _admit(self, query: Iterable[Node], options: SolveOptions | None):
        """Common admission path: returns ``(request | None, future)``.

        ``request`` is ``None`` when the key coalesced onto an existing
        in-flight future and nothing must be enqueued.
        """
        # Validate before spinning anything up: a bad options value or an
        # unhashable query on an idle gateway must not leave a batcher
        # task and executor thread running with no caller responsible for
        # closing them.
        opts = self._merge(options)
        query_set = frozenset(query)
        key = (query_set, opts.stable_digest())
        self._ensure_running()
        existing = self._inflight.get(key)
        if existing is not None:
            self._coalesced += 1
            return None, existing
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        return _Request(key, query_set, opts, future, loop.time()), future

    async def asolve(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> ConnectorResult:
        """Solve one query through the batching window (backpressuring).

        Identical in-flight requests share one future and one solve; a
        full admission queue makes this call *wait*, which is the
        backpressure signal concurrent producers see.
        """
        request, future = self._admit(query, options)
        if request is not None:
            try:
                await self._queue.put(request)
            except BaseException:
                # Cancelled mid-backpressure.  Other callers may have
                # coalesced onto this future in the meantime, so it must
                # still resolve: hand the request off if a slot opened up,
                # otherwise fail it as shed — never leave it pending (a
                # hang for coalescers) and never cancel it (a spurious
                # CancelledError in callers that were not cancelled).
                # While draining, a hand-off could slip in behind the
                # _CLOSE sentinel and never dispatch, so shed instead.
                handed_off = False
                if not self._closing:
                    try:
                        self._queue.put_nowait(request)
                        handed_off = True
                    except asyncio.QueueFull:
                        pass
                if handed_off:
                    self._admitted += 1
                else:
                    self._inflight.pop(request.key, None)
                    self._shed += 1
                    if not future.done():
                        future.set_exception(
                            GatewayOverloadedError(
                                "request cancelled while waiting for a "
                                "full admission queue"
                            )
                        )
                        future.exception()  # consumed here if nobody coalesced
                raise
            self._admitted += 1
        # shield(): several awaiters may share this future; one caller
        # timing out must not cancel the solve for the others.
        return await asyncio.shield(future)

    def try_solve(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> asyncio.Future:
        """Admit without waiting: full queue ⇒ :class:`GatewayOverloadedError`.

        The load-shedding admission path: returns an awaitable for the
        (possibly shared) result on success, and fails fast — counting
        the shed request — when the gateway is saturated.  The returned
        future is a :func:`asyncio.shield` wrapper: cancelling it (e.g. a
        caller-side ``wait_for`` timeout) never cancels the underlying
        coalesced solve other callers may be awaiting.
        """
        request, future = self._admit(query, options)
        if request is not None:
            try:
                self._queue.put_nowait(request)
            except asyncio.QueueFull:
                self._inflight.pop(request.key, None)
                future.cancel()
                self._shed += 1
                raise GatewayOverloadedError(
                    f"admission queue full ({self._max_queue} requests)"
                ) from None
            self._admitted += 1
        wrapper = asyncio.shield(future)
        # Fire-and-forget callers may never await the wrapper; mark its
        # exception retrieved so a failed window doesn't log "Future
        # exception was never retrieved" at GC (awaiters still raise).
        wrapper.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        return wrapper

    # ------------------------------------------------------------------
    # The batcher task
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        closing = False
        while not closing:
            item = await self._queue.get()
            if item is _CLOSE:
                break
            window = [item]
            deadline = loop.time() + self._max_wait
            while len(window) < self._max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window timer expired; sweep up whatever is already
                    # queued (free — no extra latency) and dispatch.
                    while len(window) < self._max_batch:
                        try:
                            extra = self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        if extra is _CLOSE:
                            closing = True
                            break
                        window.append(extra)
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    continue  # loop once more through the deadline sweep
                if item is _CLOSE:
                    closing = True
                    break
                window.append(item)
            # A window slot bounds dispatched-but-unresolved windows: while
            # none is free the batcher stalls here, the admission queue
            # fills behind it, and producers feel real backpressure.
            await self._window_slots.acquire()
            task = loop.create_task(self._dispatch(window))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)
            # Bind the semaphore now: aclose() nulls the run-scoped state
            # before late done-callbacks get to run.
            task.add_done_callback(
                lambda _t, slots=self._window_slots: slots.release()
            )

    async def _dispatch(self, window: list[_Request]) -> None:
        """Solve one window on the executor and resolve its futures.

        A failure inside the service fails exactly the requests that
        caused it: when a grouped ``solve_many`` raises, the group is
        re-solved one request at a time so a single poisoned query (an
        unknown vertex, say) cannot fail the valid requests that merely
        shared its window.  The batcher and every other window are
        unaffected either way.
        """
        self._windows += 1
        self._window_sizes.append(len(window))
        self._window_size_sum += len(window)
        # One solve_many per distinct options value in the window: the
        # service API takes a single options argument per batch, and mixed
        # traffic must not collapse onto one request's tunables.
        groups: dict[SolveOptions, list[_Request]] = {}
        for request in window:
            groups.setdefault(request.options, []).append(request)

        def run() -> list[tuple[list[_Request], object, bool]]:
            resolved = []
            for opts, requests in groups.items():
                queries = [request.query_set for request in requests]
                try:
                    results = self._service.solve_many(queries, opts)
                except BaseException as exc:  # noqa: BLE001 - forwarded to futures
                    if len(requests) == 1:
                        resolved.append((requests, exc, False))
                        continue
                    # Per-request isolation: re-solve the group one by one
                    # so only the actually-failing requests fail.
                    for request in requests:
                        try:
                            single = self._service.solve_many(
                                [request.query_set], opts
                            )
                        except BaseException as single_exc:  # noqa: BLE001
                            if (
                                single_exc is not exc
                                and single_exc.__cause__ is None
                            ):
                                # Keep the group failure's diagnostic (a
                                # dead-shard message, say) chained under
                                # the re-solve's possibly-generic error.
                                single_exc.__cause__ = exc
                            resolved.append(([request], single_exc, False))
                        else:
                            if len(single) != 1:
                                resolved.append((
                                    [request],
                                    RuntimeError(
                                        f"service returned {len(single)} "
                                        "results for 1 query"
                                    ),
                                    False,
                                ))
                            else:
                                resolved.append(([request], single, True))
                else:
                    if len(results) != len(queries):
                        # A misbehaving service must fail this window's
                        # futures, not crash the dispatch task (which
                        # would strand other windows' futures at aclose).
                        resolved.append((
                            requests,
                            RuntimeError(
                                f"service returned {len(results)} results "
                                f"for {len(queries)} queries"
                            ),
                            False,
                        ))
                    else:
                        resolved.append((requests, results, True))
            return resolved

        loop = asyncio.get_running_loop()
        try:
            resolved = await loop.run_in_executor(self._executor, run)
        except BaseException as exc:  # executor torn down under us
            resolved = [(requests, exc, False) for requests in groups.values()]
        for requests, value, ok in resolved:
            for position, request in enumerate(requests):
                self._inflight.pop(request.key, None)
                if request.future.done():
                    continue  # pragma: no cover - awaiter torn down early
                if ok:
                    request.future.set_result(value[position])
                    self._served += 1
                    self._latencies.append(loop.time() - request.admitted_at)
                else:
                    request.future.set_exception(value)
                    # Consumed here in case every awaiter already timed
                    # out of its shielded wait (no GC-time "exception was
                    # never retrieved" log); real awaiters still raise.
                    request.future.exception()
                    self._failures += 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    async def amutate(self, delta) -> int:
        """Advance the backing service one graph version; returns the epoch.

        Epoch flips are serialized with the solve windows: the apply runs
        on the gateway's single dispatch-executor thread, so every window
        dispatched before this call completes first and every window
        dispatched after it solves on the new graph — no window ever
        spans two graph versions.  Requests already *admitted* but not
        yet dispatched are answered at the epoch current when their
        window runs, which is the dispatch-time contract every layer of
        the tower keeps.

        The backing service does the real work
        (:meth:`~repro.core.service.ConnectorService.apply_delta` /
        :meth:`~repro.core.sharded.ShardedConnectorService.apply_delta`);
        a service without one (a bare ``solve_many`` duck type) raises
        ``TypeError``.
        """
        apply = getattr(self._service, "apply_delta", None)
        if not callable(apply):
            raise TypeError(
                f"backing service {type(self._service).__name__} has no "
                "apply_delta; only versioned services can mutate"
            )
        if self._closing:
            raise GatewayClosedError("gateway is draining; retry after aclose()")
        executor = self._executor
        if executor is not None:
            try:
                submitted = asyncio.get_running_loop().run_in_executor(
                    executor, apply, delta
                )
            except RuntimeError:  # executor shut down by a concurrent aclose
                pass  # idle now, so the direct call below is safe
            else:
                # Awaited outside the except so the service's own errors
                # (DeltaError, ShardLinkError) propagate untouched.
                return await submitted
        # Reached only with no executor (aclose() already drained every
        # window) — nothing shares the loop thread, so blocking is safe.
        return apply(delta)  # repro-lint: disable=RPR002

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    async def aservice_stats(self):
        """The backing service's stats snapshot, window-safe.

        The backing services are not thread-safe, and a running gateway
        may have a window mid-``solve_many`` on the executor thread — a
        sharded ``stats()`` issued concurrently from the event loop would
        race it on the shard pipes.  This routes the snapshot through the
        same single-thread executor, serializing it with the windows; on
        an idle (or just-closed) gateway no window can be in flight, so
        the direct call is safe.  Returns ``None`` when the service has
        no ``stats()``.
        """
        stats = getattr(self._service, "stats", None)
        if not callable(stats):
            return None
        executor = self._executor
        if executor is not None:
            try:
                submitted = asyncio.get_running_loop().run_in_executor(
                    executor, stats
                )
            except RuntimeError:  # executor shut down by a concurrent aclose
                pass  # idle now, so the direct call below is safe
            else:
                # Awaited outside the except: a RuntimeError raised by the
                # service's own stats() must propagate, not trigger a
                # second, window-racing call on the loop thread.
                return await submitted
        # Executor gone => gateway idle/closed; a counters snapshot off
        # the loop thread cannot race a window that no longer exists.
        return stats()  # repro-lint: disable=RPR002

    def stats(self) -> GatewayStats:
        """Counters plus the instantaneous queue/in-flight depth."""
        return GatewayStats(
            queued=self._queue.qsize() if self._queue is not None else 0,
            in_flight=len(self._inflight),
            admitted=self._admitted,
            coalesced=self._coalesced,
            shed=self._shed,
            windows_dispatched=self._windows,
            window_sizes=tuple(self._window_sizes),
            window_size_sum=self._window_size_sum,
            results_served=self._served,
            failures=self._failures,
            latency_samples=tuple(self._latencies),
        )

    async def aclose(self) -> None:
        """Drain the queue, resolve every future, return to idle.

        New requests are refused while draining
        (:class:`GatewayClosedError`); queued requests flow through
        normal windows so their callers still get answers.  Idempotent,
        and the gateway is reusable afterwards — the next request starts
        a fresh batcher ("reopen").  Cancellation-safe: a caller timing
        out of ``aclose()`` (e.g. under ``asyncio.wait_for``) abandons
        only its own wait — the drain itself runs as a shielded task, so
        the batcher never sees half-reset state and every queued future
        still resolves.
        """
        if self._batcher is None:
            return
        if self._closing:
            # A concurrent aclose() is already draining; wait for it
            # rather than re-running the teardown over nulled state.
            done = self._close_done
            if done is not None:
                await done.wait()
            return
        self._closing = True
        self._close_done = asyncio.Event()
        # A strong reference: asyncio keeps only weak refs to tasks, and
        # a cancelled caller must not let the drain be collected mid-way.
        self._close_task = asyncio.get_running_loop().create_task(
            self._drain_and_reset(), name="gateway-drain"
        )
        await asyncio.shield(self._close_task)

    async def _drain_and_reset(self) -> None:
        batcher = self._batcher
        try:
            if not batcher.done():
                # A dead batcher would never consume the sentinel (and a
                # full queue would block this put forever).
                await self._queue.put(_CLOSE)
            try:
                await batcher
            except asyncio.CancelledError:
                if not batcher.cancelled():
                    raise  # the *drain* was cancelled (loop teardown)
                # else: the batcher was cancelled out from under us —
                # teardown below must still complete.
            except Exception:  # pragma: no cover - batcher bug backstop
                pass
            # Dispatch tasks spawn from the batcher only, so after it
            # exits this set is complete.  return_exceptions: one faulty
            # dispatch must not skip the sweep and executor shutdown below.
            while self._dispatches:
                await asyncio.gather(
                    *tuple(self._dispatches), return_exceptions=True
                )
            # A future still registered here was admitted but never
            # dispatched — the normal path makes that impossible (the
            # batcher drains the queue before exiting), but a crashed
            # batcher strands exactly these; failing them loudly beats a
            # caller awaiting forever.
            for key, future in list(self._inflight.items()):
                if not future.done():
                    future.set_exception(
                        GatewayClosedError("gateway closed before dispatch")
                    )
                    future.exception()  # consumed here if unawaited
                self._inflight.pop(key, None)
            # Off-loop: normally the executor is idle here, but after a
            # crashed-batcher recovery it may still be finishing an
            # orphaned solve — a synchronous wait would freeze every
            # other coroutine on this loop for that solve's duration.
            executor = self._executor
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: executor.shutdown(wait=True)
            )
        finally:
            self._queue = None
            self._batcher = None
            self._executor = None
            self._window_slots = None
            self._closing = False
            self._close_task = None
            self._close_done.set()
            self._close_done = None

    async def __aenter__(self) -> "AsyncGateway":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "idle" if self._batcher is None else (
            "draining" if self._closing else "running"
        )
        return (
            f"{type(self).__name__}({self._service!r}, {state}, "
            f"admitted={self._admitted}, coalesced={self._coalesced})"
        )
