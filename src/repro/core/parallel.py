"""Parallel WienerSteiner — the Map-Reduce scheme of §6.6.

The paper observes that Algorithm 1 parallelizes trivially: each candidate
root ``r ∈ Q`` is independent, so ``|Q|`` workers can each compute the BFS
from their root, sweep λ, build and solve the Steiner instances, and score
their own candidates (Map); the driver then keeps the best candidate
(Reduce), for a linear ``|Q|``-fold speedup when the graph fits in memory.

This module implements exactly that with a process pool (Python threads
would serialize on the GIL).  The graph is shipped to each worker once via
the pool initializer, not once per root.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import InvalidQueryError
from repro.core.result import ConnectorResult
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.graph import Graph, Node

# Worker-process globals, installed by _initialize.
_worker_graph: Graph | None = None
_worker_options: dict | None = None


@dataclass(frozen=True)
class _RootOutcome:
    """What a worker reports back for one root (small and picklable)."""

    root: Node
    nodes: frozenset[Node]
    wiener: float
    candidates: int


def _initialize(graph: Graph, options: dict) -> None:
    global _worker_graph, _worker_options
    _worker_graph = graph
    _worker_options = options


def _solve_root(args: tuple[Node, frozenset[Node]]) -> _RootOutcome:
    root, query = args
    assert _worker_graph is not None and _worker_options is not None
    result = wiener_steiner(
        _worker_graph,
        query,
        roots=[root],
        selection="wiener",
        **_worker_options,
    )
    return _RootOutcome(
        root=root,
        nodes=result.nodes,
        wiener=result.wiener_index,
        candidates=result.metadata["candidates"],
    )


def parallel_wiener_steiner(
    graph: Graph,
    query: Iterable[Node],
    max_workers: int | None = None,
    beta: float = 1.0,
    adjust: bool = True,
    backend: str = "auto",
) -> ConnectorResult:
    """Run WienerSteiner with one worker process per candidate root.

    Functionally equivalent to :func:`repro.core.wiener_steiner` with
    ``selection="wiener"`` (ties between equal-quality candidates may
    resolve differently).  Worth it when ``|Q|`` and the graph are large
    enough to amortize process start-up and graph pickling.

    Parameters
    ----------
    max_workers:
        Process count; defaults to ``min(|Q|, os.cpu_count())``.
    backend:
        Forwarded to each worker's :func:`wiener_steiner` call —
        ``"auto"`` (default), ``"csr"``, or ``"dict"``.  Each worker
        builds its own CSR arrays once and reuses them across its λ sweep.
    """
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    missing = [q for q in query_set if not graph.has_node(q)]
    if missing:
        raise InvalidQueryError(
            f"query vertices not in graph: {sorted(map(repr, missing))}"
        )
    if len(query_set) == 1:
        return wiener_steiner(graph, query_set)

    roots = sorted(query_set, key=repr)
    options = {"beta": beta, "adjust": adjust, "backend": backend}
    jobs = [(root, query_set) for root in roots]

    best: _RootOutcome | None = None
    total_candidates = 0
    with ProcessPoolExecutor(
        max_workers=max_workers or len(roots),
        initializer=_initialize,
        initargs=(graph, options),
    ) as pool:
        for outcome in pool.map(_solve_root, jobs):
            total_candidates += outcome.candidates
            if best is None or outcome.wiener < best.wiener:
                best = outcome

    assert best is not None and best.wiener < math.inf
    return ConnectorResult(
        host=graph,
        nodes=best.nodes,
        query=query_set,
        method="ws-q",
        metadata={
            "root": best.root,
            "parallel": True,
            "workers": max_workers or len(roots),
            "candidates": total_candidates,
        },
    )
