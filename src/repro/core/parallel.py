"""Parallel WienerSteiner — the Map-Reduce scheme of §6.6.

The paper observes that Algorithm 1 parallelizes trivially: each candidate
root ``r ∈ Q`` is independent, so ``|Q|`` workers can each compute the BFS
from their root, sweep λ, build and solve the Steiner instances, and score
their own candidates (Map); the driver then keeps the best candidate
(Reduce), for a linear ``|Q|``-fold speedup when the graph fits in memory.

Historically this module owned its own process pool and shipped the whole
hashable-node ``Graph`` to every worker.  It is now a thin compatibility
wrapper over :meth:`repro.core.service.ConnectorService.solve_parallel_roots`,
which ships each worker the two CSR int arrays (plus the label list)
instead — the pickled payload shrinks from the full adjacency dict to a
few flat arrays, and the workers rebuild their engines from the arrays
once per process.

Two grains of parallelism live here now:

* :func:`parallel_wiener_steiner` — *within* one query, one worker per
  candidate root (the paper's Map-Reduce);
* :func:`sharded_batch` — *across* queries, one persistent
  :class:`~repro.core.sharded.ShardedConnectorService` shard per worker,
  torn down when the batch is done.  Callers serving continuous traffic
  should hold a ``ShardedConnectorService`` open instead of paying the
  spawn cost per batch.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.options import SolveOptions
from repro.core.result import ConnectorResult
from repro.graphs.graph import Graph, Node


def parallel_wiener_steiner(
    graph: Graph,
    query: Iterable[Node],
    max_workers: int | None = None,
    beta: float = 1.0,
    adjust: bool = True,
    backend: str = "auto",
) -> ConnectorResult:
    """Run WienerSteiner with one worker process per candidate root.

    Functionally equivalent to :func:`repro.core.wiener_steiner` with
    ``selection="wiener"`` (ties between equal-quality candidates may
    resolve differently).  Worth it when ``|Q|`` and the graph are large
    enough to amortize process start-up and the (now array-sized) worker
    payload.

    Parameters
    ----------
    max_workers:
        Process count; defaults to ``min(|Q|, os.cpu_count())``.
    backend:
        Forwarded to each worker's engine — ``"auto"`` (default),
        ``"csr"``, or ``"dict"``.  CSR workers adopt the driver's shared
        arrays; dict workers still receive the graph.
    """
    from repro.core.service import ConnectorService

    service = ConnectorService(
        graph,
        SolveOptions(beta=beta, adjust=adjust, backend=backend,
                     selection="wiener"),
    )
    return service.solve_parallel_roots(query, max_workers=max_workers)


def sharded_batch(
    graph: Graph,
    queries: Iterable[Iterable[Node]],
    options: SolveOptions | None = None,
    *,
    n_shards: int | None = None,
) -> list[ConnectorResult]:
    """Serve one batch through a throwaway sharded service.

    Spawns a :class:`~repro.core.sharded.ShardedConnectorService`, routes
    the batch across its shards, and tears the shards down — the
    batch-scoped convenience for scripts and the CLI.  Results are in
    input order and bit-identical to one-shot
    :func:`~repro.core.wiener_steiner.wiener_steiner` calls; long-lived
    servers should keep the sharded service open across batches so shard
    caches stay warm.
    """
    from repro.core.sharded import ShardedConnectorService

    with ShardedConnectorService(graph, options, n_shards=n_shards) as service:
        return service.solve_many(queries)
