"""Result container shared by the connector algorithms and baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.graphs.graph import Graph, Node
from repro.graphs.metrics import density as graph_density
from repro.graphs.wiener import wiener_index


@dataclass(frozen=True)
class ConnectorResult:
    """A connector returned by any of the algorithms.

    The solution is identified by its vertex set; following the paper
    (Section 2, "we may restrict the search to vertex sets and their
    corresponding induced subgraphs"), the subgraph is always the induced
    one.

    Attributes
    ----------
    host:
        The input graph ``G``.
    nodes:
        The vertex set ``S`` of the solution (``Q ⊆ S``).
    query:
        The query set ``Q``.
    method:
        Short method tag: ``"ws-q"``, ``"st"``, ``"ppr"``, ``"cps"``,
        ``"ctp"``, ``"exact"``, ...
    metadata:
        Algorithm-specific extras (chosen root, λ, iteration counts, ...).
    """

    host: Graph
    nodes: frozenset[Node]
    query: frozenset[Node]
    method: str = ""
    metadata: dict = field(default_factory=dict, compare=False)

    #: ``cached_property`` values recomputable from ``host`` + ``nodes``;
    #: stripped from pickles so a result crossing a process boundary (the
    #: parallel and sharded serving layers ship results back to routers)
    #: never drags a materialized subgraph along.  They repopulate lazily
    #: on first access after unpickling, bit-identically.
    _DERIVED = ("subgraph", "wiener_index", "density")

    def __post_init__(self) -> None:
        if not self.query <= self.nodes:
            missing = set(self.query) - set(self.nodes)
            raise ValueError(f"solution drops query vertices: {sorted(map(repr, missing))}")

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name in self._DERIVED:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @cached_property
    def subgraph(self) -> Graph:
        """The induced subgraph ``G[S]``."""
        return self.host.subgraph(self.nodes)

    @cached_property
    def wiener_index(self) -> float:
        """``W(G[S])`` — infinite if the solution is disconnected."""
        return wiener_index(self.subgraph)

    @property
    def size(self) -> int:
        """Number of vertices ``|V(H)|``."""
        return len(self.nodes)

    @property
    def num_added(self) -> int:
        """Number of non-query vertices the method added."""
        return len(self.nodes) - len(self.query)

    @property
    def added_nodes(self) -> frozenset[Node]:
        """The non-query vertices in the solution."""
        return self.nodes - self.query

    @cached_property
    def density(self) -> float:
        """Density ``|E(H)| / C(|V(H)|, 2)`` of the solution."""
        return graph_density(self.subgraph)

    def summary(self) -> str:
        """One-line human-readable description."""
        w = self.wiener_index
        w_text = f"{w:.0f}" if w != float("inf") else "inf"
        return (
            f"{self.method or 'connector'}: |V(H)|={self.size} "
            f"(+{self.num_added} over |Q|={len(self.query)}), "
            f"density={self.density:.3f}, W={w_text}"
        )
