"""Min Wiener Connector on *weighted* graphs — a natural extension.

The paper restricts attention to unweighted graphs (Section 2) but the
whole reduction chain survives positive edge weights unchanged:

* the Wiener index becomes the sum of weighted shortest-path distances;
* Lemma 1 (root relaxation) and Lemma 5 (roots from ``Q``) are purely
  metric statements;
* the Lemma-4 reweighting ``λ + max(d(r,u), d(r,v))/λ`` already consumes
  distances, not hop counts — only the single-source computation switches
  from BFS to Dijkstra;
* Khuller–Raghavachari–Young's LAST balancing (our ``AdjustDistances``)
  was stated for weighted graphs in the original paper, so the Lemma-2
  post-processing generalizes verbatim with edge weights in the
  relaxations.

This module implements that generalization.  On unit weights it agrees
with the unweighted pipeline.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DisconnectedGraphError, GraphError, InvalidQueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.options import SolveOptions
from repro.core.steiner import mehlhorn_steiner_tree
from repro.graphs.graph import Node, WeightedGraph
from repro.graphs.traversal import dijkstra

#: Lemma-2 stretch factor, unchanged in the weighted setting.
ALPHA = 1 + math.sqrt(2)


def weighted_wiener_index(graph: WeightedGraph) -> float:
    """Sum of weighted shortest-path distances over unordered pairs.

    Infinite for disconnected graphs; one Dijkstra per vertex.
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    total = 0.0
    for node in graph.nodes():
        distances, _ = dijkstra(graph, node)
        if len(distances) != n:
            return math.inf
        total += sum(distances.values())
    return total / 2


def induced_weighted_subgraph(
    graph: WeightedGraph, nodes: Iterable[Node]
) -> WeightedGraph:
    """The induced subgraph ``G[S]`` with weights carried over."""
    node_set = set(nodes)
    sub = WeightedGraph()
    for node in node_set:
        if not graph.has_node(node):
            raise GraphError(f"node {node!r} not in graph")
        sub.add_node(node)
    for u, v, w in graph.edges():
        if u in node_set and v in node_set:
            sub.add_edge(u, v, w)
    return sub


@dataclass(frozen=True)
class WeightedConnectorResult:
    """A connector in a weighted graph."""

    host: WeightedGraph
    nodes: frozenset[Node]
    query: frozenset[Node]
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def added_nodes(self) -> frozenset[Node]:
        return self.nodes - self.query

    def subgraph(self) -> WeightedGraph:
        return induced_weighted_subgraph(self.host, self.nodes)

    def wiener_index(self) -> float:
        return weighted_wiener_index(self.subgraph())


def wiener_steiner_weighted(
    graph: WeightedGraph,
    query: Iterable[Node],
    beta: float = 1.0,
    max_lambda_values: int = 24,
    options: "SolveOptions | None" = None,
) -> WeightedConnectorResult:
    """WienerSteiner generalized to positively weighted graphs.

    Parameters mirror :func:`repro.core.wiener_steiner`; the λ grid is
    derived from the observed distance range instead of ``[1/√2, √|V|]``.
    A :class:`repro.core.options.SolveOptions` value may be passed instead
    of loose keywords — its ``beta`` and (explicit) ``lambda_values``
    override the corresponding arguments, giving the weighted variant the
    same configuration surface as the serving API.

    Raises
    ------
    InvalidQueryError / DisconnectedGraphError
        As in the unweighted algorithm.
    """
    explicit_grid: list[float] | None = None
    if options is not None:
        beta = options.beta
        if options.lambda_values is not None:
            explicit_grid = list(options.lambda_values)
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    for q in query_set:
        if not graph.has_node(q):
            raise InvalidQueryError(f"query vertex {q!r} not in graph")
    if len(query_set) == 1:
        only = next(iter(query_set))
        return WeightedConnectorResult(
            host=graph, nodes=frozenset([only]), query=query_set,
            metadata={"root": only, "lambda": None},
        )

    roots = sorted(query_set, key=repr)
    distance_cache: dict[Node, tuple[dict[Node, float], dict[Node, Node]]] = {}
    for root in roots:
        distances, parents = dijkstra(graph, root)
        missing = [q for q in query_set if q not in distances]
        if missing:
            raise DisconnectedGraphError(
                f"query vertices {sorted(map(repr, missing))} unreachable "
                f"from {root!r}"
            )
        distance_cache[root] = (distances, parents)

    grid = (
        explicit_grid
        if explicit_grid is not None
        else _weighted_lambda_grid(
            distance_cache, query_set, beta, max_lambda_values
        )
    )

    best_value = math.inf
    best_nodes: frozenset[Node] | None = None
    best_root: Node | None = None
    best_lambda: float | None = None
    scored: set[frozenset[Node]] = set()

    for lam in grid:
        for root in roots:
            distances, parents = distance_cache[root]
            candidate = _weighted_candidate(
                graph, query_set, root, lam, distances, parents
            )
            if candidate in scored:
                continue
            scored.add(candidate)
            value = weighted_wiener_index(
                induced_weighted_subgraph(graph, candidate)
            )
            if value < best_value:
                best_value = value
                best_nodes = candidate
                best_root = root
                best_lambda = lam

    assert best_nodes is not None
    return WeightedConnectorResult(
        host=graph,
        nodes=best_nodes,
        query=query_set,
        metadata={
            "root": best_root,
            "lambda": best_lambda,
            "candidates": len(scored),
        },
    )


def _weighted_lambda_grid(
    distance_cache: Mapping[Node, tuple[dict[Node, float], dict]],
    query_set: frozenset[Node],
    beta: float,
    max_values: int,
) -> list[float]:
    """Geometric λ grid spanning the plausible range of Lemma 3's optimum.

    λ* = sqrt(Σ d(r,u) / |S|) lies between sqrt(smallest positive
    query distance / |V|) and sqrt(largest distance); we clamp the grid
    size for pathological weight ranges.
    """
    if beta <= 0:
        raise GraphError(f"beta must be positive, got {beta}")
    positive: list[float] = []
    largest = 0.0
    for distances, _ in distance_cache.values():
        for node, value in distances.items():
            if value > 0:
                largest = max(largest, value)
                if node in query_set:
                    positive.append(value)
    if not positive or largest <= 0:
        return [1.0]
    low = math.sqrt(min(positive)) / 2
    high = math.sqrt(largest)
    grid = []
    value = low
    while value < high and len(grid) < max_values - 1:
        grid.append(value)
        value *= 1 + beta
    grid.append(high)
    return grid


def _weighted_candidate(
    graph: WeightedGraph,
    query_set: frozenset[Node],
    root: Node,
    lam: float,
    distances: Mapping[Node, float],
    parents: Mapping[Node, Node],
) -> frozenset[Node]:
    """One (root, λ) candidate: reweight, Steiner-solve, rebalance."""
    reweighted = WeightedGraph()
    for node in graph.nodes():
        reweighted.add_node(node)
    for u, v, _ in graph.edges():
        du = distances.get(u)
        dv = distances.get(v)
        if du is None or dv is None:
            continue  # unreachable side; never useful for this root
        reweighted.add_edge(u, v, lam + max(du, dv) / lam)

    # Reweighted instances have w = λ + max(du, dv)/λ ≥ λ > 0.
    tree = mehlhorn_steiner_tree(
        reweighted, set(query_set) | {root}, assume_positive_weights=True
    )
    nodes = _adjust_distances_weighted(graph, tree, root, distances, parents)
    return frozenset(nodes | set(query_set))


def _adjust_distances_weighted(
    graph: WeightedGraph,
    tree: WeightedGraph,
    root: Node,
    host_distances: Mapping[Node, float],
    host_parents: Mapping[Node, Node],
    alpha: float = ALPHA,
) -> set[Node]:
    """Weighted LAST balancing; returns the vertex set of the fixed tree.

    Mirrors :func:`repro.core.adjust.adjust_distances` with edge weights in
    the relaxations and the Dijkstra SPT as the shortest-path source.
    """
    d: dict[Node, float] = {root: 0.0}
    p: dict[Node, Node] = {}

    def relax(u: Node, v: Node) -> None:
        weight = graph.weight(u, v)
        if d.get(v, math.inf) > d.get(u, math.inf) + weight:
            d[v] = d[u] + weight
            p[v] = u

    def add_path(u: Node) -> None:
        path = [u]
        while path[-1] != root:
            parent = host_parents.get(path[-1])
            if parent is None:
                raise GraphError(
                    f"tree vertex {path[-1]!r} unreachable from {root!r}"
                )
            path.append(parent)
        path.reverse()
        for a, b in zip(path, path[1:]):
            relax(a, b)

    visited = {root}
    stack: list[tuple[Node, Node | None]] = [(root, None)]
    order: list[tuple[Node, Node]] = []
    while stack:
        u, parent = stack.pop()
        for v in list(tree.neighbors(u)):
            if v == parent or v in visited:
                continue
            visited.add(v)
            relax(u, v)
            host = host_distances.get(v)
            if host is None:
                raise GraphError(f"tree vertex {v!r} unreachable from {root!r}")
            if d.get(v, math.inf) > alpha * host:
                add_path(v)
            order.append((v, u))
            stack.append((v, u))
    for v, u in reversed(order):
        relax(v, u)

    return visited | set(p)


def brute_force_weighted(
    graph: WeightedGraph,
    query: Iterable[Node],
    max_candidates: int = 16,
) -> WeightedConnectorResult:
    """Exact weighted optimum by subset enumeration (test oracle)."""
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    pool = [node for node in graph.nodes() if node not in query_set]
    if len(pool) > max_candidates:
        raise InvalidQueryError(
            f"brute force over {len(pool)} candidates exceeds "
            f"max_candidates={max_candidates}"
        )
    best_value = math.inf
    best_nodes: frozenset[Node] | None = None
    for size in range(len(pool) + 1):
        for extra in itertools.combinations(pool, size):
            nodes = query_set | frozenset(extra)
            value = weighted_wiener_index(induced_weighted_subgraph(graph, nodes))
            if value < best_value:
                best_value = value
                best_nodes = frozenset(nodes)
    if best_nodes is None or best_value == math.inf:
        raise DisconnectedGraphError("query cannot be connected")
    return WeightedConnectorResult(
        host=graph, nodes=best_nodes, query=query_set,
        metadata={"optimum": best_value},
    )
