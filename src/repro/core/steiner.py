"""Steiner tree machinery: Mehlhorn's 2-approximation and tree utilities.

Mehlhorn's algorithm (Inf. Proc. Letters 1988) is the Steiner solver the
paper uses both as the ``st`` baseline and inside ``WienerSteiner``
(Corollary 3 invokes it on the reweighted instance ``G_{r,λ}``).  It works
in three steps:

1. a multi-source Dijkstra from the terminal set partitions ``G`` into
   Voronoi regions and yields, for every edge ``(u, v)`` crossing two
   regions, a candidate terminal-to-terminal path of length
   ``d(s_u, u) + w(u, v) + d(v, s_v)``;
2. a minimum spanning tree of the induced "distance network" on terminals
   is computed (Kruskal on the candidate edges);
3. every MST edge is expanded back into an actual path of ``G``, the union
   is re-spanned, and non-terminal leaves are pruned.

The result is a tree spanning the terminals with total weight at most twice
the optimum.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.traversal import multi_source_dijkstra
from repro.graphs.unionfind import UnionFind


def mehlhorn_steiner_tree(graph: WeightedGraph, terminals: Iterable[Node]) -> WeightedGraph:
    """Return a 2-approximate Steiner tree for ``terminals`` in ``graph``.

    Runs in ``O(|E| log |V|)``.  The returned :class:`WeightedGraph` is a
    tree whose nodes include all terminals and whose edge weights are copied
    from the host graph.

    Raises
    ------
    InvalidQueryError
        If the terminal set is empty or contains unknown nodes.
    DisconnectedGraphError
        If the terminals do not lie in a single component.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise InvalidQueryError("terminal set must be non-empty")
    for terminal in terminal_list:
        if not graph.has_node(terminal):
            raise InvalidQueryError(f"terminal {terminal!r} not in graph")
    if len(terminal_list) == 1:
        singleton = WeightedGraph()
        singleton.add_node(terminal_list[0])
        return singleton

    distances, parents, closest = multi_source_dijkstra(graph, terminal_list)
    for terminal in terminal_list:
        if terminal not in distances:  # pragma: no cover - sources always settle
            raise DisconnectedGraphError("terminal unreachable")

    # Step 2: candidate inter-region edges and Kruskal on the terminal network.
    candidates: dict[tuple[Node, Node], tuple[float, Node, Node]] = {}
    for u, v, weight in graph.edges():
        source_u = closest.get(u)
        source_v = closest.get(v)
        if source_u is None or source_v is None or source_u == source_v:
            continue
        key = (source_u, source_v) if repr(source_u) <= repr(source_v) else (source_v, source_u)
        length = distances[u] + weight + distances[v]
        best = candidates.get(key)
        if best is None or length < best[0]:
            candidates[key] = (length, u, v)

    ordered = sorted(
        ((length, key, u, v) for key, (length, u, v) in candidates.items()),
        key=lambda item: item[0],
    )
    forest = UnionFind(terminal_list)
    bridge_edges: list[tuple[Node, Node]] = []
    for _, (source_a, source_b), u, v in ordered:
        if forest.union(source_a, source_b):
            bridge_edges.append((u, v))
    if forest.num_sets > 1:
        raise DisconnectedGraphError("terminals lie in different components")

    # Step 3: expand every selected bridge back into a path of G.
    union_nodes: set[Node] = set(terminal_list)
    union_edges: set[tuple[Node, Node]] = set()
    for u, v in bridge_edges:
        _add_edge(union_edges, u, v)
        union_nodes.add(u)
        union_nodes.add(v)
        for endpoint in (u, v):
            node = endpoint
            while node in parents:
                parent = parents[node]
                _add_edge(union_edges, node, parent)
                union_nodes.add(parent)
                node = parent

    subgraph = WeightedGraph()
    for node in union_nodes:
        subgraph.add_node(node)
    for a, b in union_edges:
        subgraph.add_edge(a, b, graph.weight(a, b))

    tree = minimum_spanning_tree(subgraph)
    return prune_steiner_leaves(tree, terminal_list)


def minimum_spanning_tree(graph: WeightedGraph) -> WeightedGraph:
    """Return a minimum spanning tree (forest, if disconnected) via Kruskal."""
    tree = WeightedGraph()
    for node in graph.nodes():
        tree.add_node(node)
    edges = sorted(graph.edges(), key=lambda edge: edge[2])
    forest = UnionFind(graph.nodes())
    for u, v, weight in edges:
        if forest.union(u, v):
            tree.add_edge(u, v, weight)
    return tree


def prune_steiner_leaves(tree: WeightedGraph, terminals: Iterable[Node]) -> WeightedGraph:
    """Iteratively strip non-terminal leaves from ``tree`` (in place-ish).

    Mehlhorn's final cleanup: any degree-1 node that is not a terminal can
    be dropped without disconnecting the terminals, only lowering the cost.
    Returns a new tree.
    """
    terminal_set = set(terminals)
    pruned = WeightedGraph()
    for node in tree.nodes():
        pruned.add_node(node)
    for u, v, w in tree.edges():
        pruned.add_edge(u, v, w)

    adjacency = {node: dict(pruned.neighbors(node)) for node in pruned.nodes()}
    removable = [
        node for node, neighbors in adjacency.items()
        if len(neighbors) <= 1 and node not in terminal_set
    ]
    removed: set[Node] = set()
    while removable:
        node = removable.pop()
        if node in removed or node in terminal_set:
            continue
        neighbors = adjacency[node]
        if len(neighbors) > 1:
            continue
        removed.add(node)
        for neighbor in list(neighbors):
            del adjacency[neighbor][node]
            if len(adjacency[neighbor]) <= 1 and neighbor not in terminal_set:
                removable.append(neighbor)
        adjacency[node] = {}

    result = WeightedGraph()
    for node in adjacency:
        if node not in removed:
            result.add_node(node)
    for node, neighbors in adjacency.items():
        if node in removed:
            continue
        for neighbor, weight in neighbors.items():
            if neighbor not in removed:
                result.add_edge(node, neighbor, weight)
    return result


def steiner_tree_unweighted(graph: Graph, terminals: Iterable[Node]) -> Graph:
    """Mehlhorn on an unweighted graph: lift to unit weights, return a plain tree.

    This is the paper's ``st`` baseline entry point.
    """
    weighted = WeightedGraph.from_graph(graph)
    tree = mehlhorn_steiner_tree(weighted, terminals)
    return tree.unweighted()


def tree_total_weight(tree: WeightedGraph) -> float:
    """Return the Steiner objective (sum of edge weights) of a tree."""
    return tree.total_weight()


def _add_edge(edge_set: set[tuple[Node, Node]], u: Node, v: Node) -> None:
    """Insert the undirected edge into a canonicalized edge set."""
    if repr(u) <= repr(v):
        edge_set.add((u, v))
    else:
        edge_set.add((v, u))
