"""Steiner tree machinery: Mehlhorn's 2-approximation and tree utilities.

Mehlhorn's algorithm (Inf. Proc. Letters 1988) is the Steiner solver the
paper uses both as the ``st`` baseline and inside ``WienerSteiner``
(Corollary 3 invokes it on the reweighted instance ``G_{r,λ}``).  It works
in three steps:

1. a multi-source Dijkstra from the terminal set partitions ``G`` into
   Voronoi regions and yields, for every edge ``(u, v)`` crossing two
   regions, a candidate terminal-to-terminal path of length
   ``d(s_u, u) + w(u, v) + d(v, s_v)``;
2. a minimum spanning tree of the induced "distance network" on terminals
   is computed (Kruskal on the candidate edges);
3. every MST edge is expanded back into an actual path of ``G``, the union
   is re-spanned, and non-terminal leaves are pruned.

The result is a tree spanning the terminals with total weight at most twice
the optimum.

Backend architecture
--------------------

All tie-breaking (which source claims a node, which crossing edge
represents a terminal pair, Kruskal and MST orderings) is canonicalized by
the node's integer position in :func:`repro.graphs.csr.order_map` — the
same ``0..n-1`` relabeling the CSR array backend uses.  Phase 1 has two
interchangeable implementations: the dict-based
:func:`voronoi_dijkstra_canonical` below and an array-heap twin in
:mod:`repro.core.fastpath` (``mehlhorn_steiner_csr``) consuming
``(indptr, indices, weights)`` directly.  Both hand their Voronoi output
to the shared :func:`steiner_tree_from_voronoi`, so the two backends
produce *identical* trees, not merely equally good ones.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterable

from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.graphs.csr import order_map
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.unionfind import UnionFind


def mehlhorn_steiner_tree(
    graph: WeightedGraph,
    terminals: Iterable[Node],
    assume_positive_weights: bool | None = None,
) -> WeightedGraph:
    """Return a 2-approximate Steiner tree for ``terminals`` in ``graph``.

    Runs in ``O(|E| log |V|)``.  The returned :class:`WeightedGraph` is a
    tree whose nodes include all terminals and whose edge weights are copied
    from the host graph.  Nodes and edges are inserted in canonical
    (relabeled-index) order, so downstream traversals of the tree are
    deterministic and backend-independent.

    ``assume_positive_weights`` skips the ``O(|E|)`` minimum-weight scan
    when the caller already knows every weight is strictly positive (the
    reweighted ``G_{r,λ}`` instances always are: ``w ≥ λ > 0``).

    Raises
    ------
    InvalidQueryError
        If the terminal set is empty or contains unknown nodes.
    DisconnectedGraphError
        If the terminals do not lie in a single component.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise InvalidQueryError("terminal set must be non-empty")
    for terminal in terminal_list:
        if not graph.has_node(terminal):
            raise InvalidQueryError(f"terminal {terminal!r} not in graph")
    if len(terminal_list) == 1:
        singleton = WeightedGraph()
        singleton.add_node(terminal_list[0])
        return singleton

    order = order_map(graph)
    node_of = list(graph.nodes())
    terminal_indices = sorted(order[t] for t in terminal_list)
    positive = (
        assume_positive_weights
        if assume_positive_weights is not None
        else _min_edge_weight(graph) > 0.0
    )
    if positive:
        # With strictly positive weights the canonical forest is a pure
        # function of the distances, so a lean distance-only Dijkstra plus
        # the post-hoc forest keeps this path bit-identical to the CSR
        # backend, whose distances may come from scipy's C Dijkstra rather
        # than a Python heap.
        distances = dijkstra_distances_canonical(
            graph, terminal_list, order, node_of
        )
        parents, closest = canonical_forest_from_distances(
            graph, distances, order, node_of, terminal_indices
        )
    else:
        distances, parents, closest = voronoi_dijkstra_canonical(
            graph, terminal_list, order, node_of
        )

    # Step 2 input: for every terminal pair, the best crossing edge by the
    # canonical key (length, min endpoint index, max endpoint index).  The
    # length is always evaluated as dist[lo] + w + dist[hi] so both backends
    # produce bit-identical floats regardless of edge orientation.
    candidates: dict[tuple[int, int], tuple[float, int, int]] = {}
    for u, v, weight in graph.edges():
        u_idx, v_idx = order[u], order[v]
        source_u, source_v = closest[u_idx], closest[v_idx]
        if source_u < 0 or source_v < 0 or source_u == source_v:
            continue
        if u_idx > v_idx:
            u_idx, v_idx = v_idx, u_idx
        key = (
            (source_u, source_v) if source_u < source_v else (source_v, source_u)
        )
        entry = (distances[u_idx] + weight + distances[v_idx], u_idx, v_idx)
        best = candidates.get(key)
        if best is None or entry < best:
            candidates[key] = entry

    tree_nodes, tree_edges = steiner_tree_from_voronoi(
        terminal_indices,
        candidates,
        parents.__getitem__,
        lambda a, b: graph.weight(node_of[a], node_of[b]),
    )

    result = WeightedGraph()
    for index in tree_nodes:
        result.add_node(node_of[index])
    for a, b in tree_edges:
        result.add_edge(node_of[a], node_of[b], graph.weight(node_of[a], node_of[b]))
    return result


def voronoi_dijkstra_canonical(
    graph: WeightedGraph,
    sources: Iterable[Node],
    order: dict[Node, int],
    node_of: list[Node],
) -> tuple[list[float], list[int], list[int]]:
    """Multi-source Dijkstra with canonical index tie-breaking (phase 1).

    Returns index-space lists ``(dist, parent, closest)`` with ``-1``
    sentinels; unsettled nodes keep ``dist = inf``.  Heap entries are
    ``(dist, source_index, node_index, parent_index)``: equal-distance ties
    settle the lowest source index first, then the lowest node index — the
    exact rule ``mehlhorn_steiner_csr`` applies on flat arrays, which is
    what makes the two phase-1 implementations interchangeable.
    """
    n = len(node_of)
    inf = math.inf
    dist = [inf] * n
    parent = [-1] * n
    closest = [-1] * n
    best = [inf] * n
    settled = bytearray(n)
    heap: list[tuple[float, int, int, int]] = []
    for source in dict.fromkeys(sources):
        source_idx = order[source]
        best[source_idx] = 0.0
        heap.append((0.0, source_idx, source_idx, -1))
    heapq.heapify(heap)
    while heap:
        d, source_idx, u_idx, parent_idx = heapq.heappop(heap)
        if settled[u_idx]:
            continue
        settled[u_idx] = 1
        dist[u_idx] = d
        closest[u_idx] = source_idx
        parent[u_idx] = parent_idx
        for v, weight in graph.neighbors(node_of[u_idx]).items():
            v_idx = order[v]
            if settled[v_idx]:
                continue
            candidate = d + weight
            if candidate < best[v_idx]:
                best[v_idx] = candidate
                heapq.heappush(heap, (candidate, source_idx, v_idx, u_idx))
    return dist, parent, closest


def _min_edge_weight(graph: WeightedGraph) -> float:
    """The smallest edge weight (0.0 for an edgeless graph)."""
    return min((w for _, _, w in graph.edges()), default=0.0)


def dijkstra_distances_canonical(
    graph: WeightedGraph,
    sources: Iterable[Node],
    order: dict[Node, int],
    node_of: list[Node],
) -> list[float]:
    """Multi-source Dijkstra distances only, in index space.

    Distances carry no tie ambiguity — the float min-plus fixpoint is
    unique for non-negative weights — so this lean loop (2-tuple heap
    entries, no parent/source bookkeeping) returns the exact same values
    as :func:`voronoi_dijkstra_canonical`, scipy's C Dijkstra, or any
    other correct implementation.
    """
    n = len(node_of)
    inf = math.inf
    dist = [inf] * n
    best = [inf] * n
    settled = bytearray(n)
    heap: list[tuple[float, int]] = []
    for source in dict.fromkeys(sources):
        source_idx = order[source]
        best[source_idx] = 0.0
        heap.append((0.0, source_idx))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, u_idx = pop(heap)
        if settled[u_idx]:
            continue
        settled[u_idx] = 1
        dist[u_idx] = d
        for v, weight in graph.neighbors(node_of[u_idx]).items():
            v_idx = order[v]
            if settled[v_idx]:
                continue
            candidate = d + weight
            if candidate < best[v_idx]:
                best[v_idx] = candidate
                push(heap, (candidate, v_idx))
    return dist


def canonical_forest_from_distances(
    graph: WeightedGraph,
    dist: list[float],
    order: dict[Node, int],
    node_of: list[Node],
    terminal_indices: list[int],
) -> tuple[list[int], list[int]]:
    """The canonical Voronoi forest as a pure function of exact distances.

    Requires strictly positive weights.  ``parent[v]`` is the *tight*
    inbound neighbor — ``dist[u] + w(u, v) == dist[v]``, bit-exact —
    minimizing ``(dist[u], u)``; ``closest[v]`` is the root of the
    resulting forest (always a source: positive weights force
    ``dist[parent] < dist[child]``, so chains terminate at distance 0).
    This is the dict twin of the CSR backend's vectorized
    ``_voronoi_from_distances``; because it depends only on the distance
    array, both backends reconstruct the identical forest no matter which
    Dijkstra produced the distances.
    """
    n = len(node_of)
    inf = math.inf
    parent = [-1] * n
    for v_idx in range(n):
        dv = dist[v_idx]
        if dv == inf:
            continue
        best_dist = inf
        best_parent = -1
        for u, weight in graph.neighbors(node_of[v_idx]).items():
            u_idx = order[u]
            du = dist[u_idx]
            if du == inf:
                continue
            if du + weight == dv and (
                du < best_dist or (du == best_dist and u_idx < best_parent)
            ):
                best_dist = du
                best_parent = u_idx
        parent[v_idx] = best_parent
    closest = [-1] * n
    for terminal_idx in terminal_indices:
        parent[terminal_idx] = -1
        closest[terminal_idx] = terminal_idx
    for start in range(n):
        if closest[start] != -1 or dist[start] == inf:
            continue
        path = [start]
        node = parent[start]
        while node != -1 and closest[node] == -1:
            path.append(node)
            node = parent[node]
        root = closest[node] if node != -1 else -1
        for member in path:
            closest[member] = root
    return parent, closest


def steiner_tree_from_voronoi(
    terminal_indices: list[int],
    candidates: dict[tuple[int, int], tuple[float, int, int]],
    parent_of: Callable[[int], int],
    weight_of: Callable[[int, int], float],
) -> tuple[list[int], list[tuple[int, int]]]:
    """Phases 2–3 of Mehlhorn, shared by the dict and CSR backends.

    Everything happens in relabeled-index space and every ordering is
    canonical, so the output depends only on the (deterministic) Voronoi
    phase, never on hash iteration order.

    Parameters
    ----------
    terminal_indices:
        Sorted terminal indices.
    candidates:
        ``(min source idx, max source idx) -> (length, min endpoint idx,
        max endpoint idx)`` — the best crossing edge per terminal pair.
    parent_of:
        Voronoi shortest-path forest accessor (``-1`` for roots).
    weight_of:
        Edge weight accessor in index space.

    Returns
    -------
    (nodes, edges)
        Sorted node indices and canonically sorted edge index pairs of the
        pruned Steiner tree.

    Raises
    ------
    DisconnectedGraphError
        If the candidate edges cannot connect all terminals.
    """
    ordered = sorted(candidates.items(), key=lambda item: (item[1][0], item[0]))
    forest = UnionFind(terminal_indices)
    bridges: list[tuple[int, int]] = []
    for (source_a, source_b), (_, u_idx, v_idx) in ordered:
        if forest.union(source_a, source_b):
            bridges.append((u_idx, v_idx))
    if forest.num_sets > 1:
        raise DisconnectedGraphError("terminals lie in different components")

    # Expand every bridge into its two shortest paths back to the sources.
    union_nodes: set[int] = set(terminal_indices)
    union_edges: set[tuple[int, int]] = set()
    for u_idx, v_idx in bridges:
        union_edges.add((u_idx, v_idx) if u_idx < v_idx else (v_idx, u_idx))
        union_nodes.add(u_idx)
        union_nodes.add(v_idx)
        for endpoint in (u_idx, v_idx):
            node = endpoint
            while True:
                parent = parent_of(node)
                if parent < 0:
                    break
                union_edges.add(
                    (node, parent) if node < parent else (parent, node)
                )
                union_nodes.add(parent)
                node = parent

    # Re-span the union (Kruskal, canonical ordering) ...
    mst_order = sorted(union_edges, key=lambda e: (weight_of(*e), e))
    spanning = UnionFind(sorted(union_nodes))
    adjacency: dict[int, list[int]] = {idx: [] for idx in sorted(union_nodes)}
    mst_edges: list[tuple[int, int]] = []
    for a, b in mst_order:
        if spanning.union(a, b):
            mst_edges.append((a, b))
            adjacency[a].append(b)
            adjacency[b].append(a)

    # ... and strip non-terminal leaves (the fixpoint is order-independent).
    terminal_set = set(terminal_indices)
    degree = {idx: len(neighbors) for idx, neighbors in adjacency.items()}
    removable = [
        idx for idx in adjacency if degree[idx] <= 1 and idx not in terminal_set
    ]
    removed: set[int] = set()
    while removable:
        idx = removable.pop()
        if idx in removed or degree[idx] > 1:
            continue
        removed.add(idx)
        for neighbor in adjacency[idx]:
            if neighbor in removed:
                continue
            degree[neighbor] -= 1
            if degree[neighbor] <= 1 and neighbor not in terminal_set:
                removable.append(neighbor)

    nodes = sorted(union_nodes - removed)
    edges = sorted(
        (a, b)
        for a, b in mst_edges
        if a not in removed and b not in removed
    )
    return nodes, edges


def minimum_spanning_tree(graph: WeightedGraph) -> WeightedGraph:
    """Return a minimum spanning tree (forest, if disconnected) via Kruskal."""
    tree = WeightedGraph()
    for node in graph.nodes():
        tree.add_node(node)
    edges = sorted(graph.edges(), key=lambda edge: edge[2])
    forest = UnionFind(graph.nodes())
    for u, v, weight in edges:
        if forest.union(u, v):
            tree.add_edge(u, v, weight)
    return tree


def prune_steiner_leaves(tree: WeightedGraph, terminals: Iterable[Node]) -> WeightedGraph:
    """Iteratively strip non-terminal leaves from ``tree`` (in place-ish).

    Mehlhorn's final cleanup: any degree-1 node that is not a terminal can
    be dropped without disconnecting the terminals, only lowering the cost.
    Returns a new tree.
    """
    terminal_set = set(terminals)
    pruned = WeightedGraph()
    for node in tree.nodes():
        pruned.add_node(node)
    for u, v, w in tree.edges():
        pruned.add_edge(u, v, w)

    adjacency = {node: dict(pruned.neighbors(node)) for node in pruned.nodes()}
    removable = [
        node for node, neighbors in adjacency.items()
        if len(neighbors) <= 1 and node not in terminal_set
    ]
    removed: set[Node] = set()
    while removable:
        node = removable.pop()
        if node in removed or node in terminal_set:
            continue
        neighbors = adjacency[node]
        if len(neighbors) > 1:
            continue
        removed.add(node)
        for neighbor in list(neighbors):
            del adjacency[neighbor][node]
            if len(adjacency[neighbor]) <= 1 and neighbor not in terminal_set:
                removable.append(neighbor)
        adjacency[node] = {}

    result = WeightedGraph()
    for node in adjacency:
        if node not in removed:
            result.add_node(node)
    for node, neighbors in adjacency.items():
        if node in removed:
            continue
        for neighbor, weight in neighbors.items():
            if neighbor not in removed:
                result.add_edge(node, neighbor, weight)
    return result


def steiner_tree_unweighted(graph: Graph, terminals: Iterable[Node]) -> Graph:
    """Mehlhorn on an unweighted graph: lift to unit weights, return a plain tree.

    This is the paper's ``st`` baseline entry point.
    """
    weighted = WeightedGraph.from_graph(graph)
    tree = mehlhorn_steiner_tree(weighted, terminals)
    return tree.unweighted()


def tree_total_weight(tree: WeightedGraph) -> float:
    """Return the Steiner objective (sum of edge weights) of a tree."""
    return tree.total_weight()
