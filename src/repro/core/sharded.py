"""ShardedConnectorService — persistent sharded serving over pluggable transports.

The ROADMAP's scaling ladder after the serving layer: partition the
result/candidate caches and the root-BFS state of a
:class:`~repro.core.service.ConnectorService` across several *persistent*
shard replicas, with a thin router in front.  A shard is just a service
holding a subset of the key space — exactly what ``ConnectorService`` was
designed for — so the router stays small:

* **consistent-hash routing** — each ``(query, options)`` request key is
  placed on a hash ring (:class:`SolveOptions.stable_digest` plus the
  canonical query repr, never the per-process-salted ``hash()``) with many
  virtual points per shard, so equal keys always land on the same shard
  (cache affinity) and :meth:`ShardedConnectorService.resize` moves only
  ``~1/n`` of the key space;
* **persistent shard replicas behind a transport protocol** — every shard
  is a long-lived ``ConnectorService`` replica reached through a
  :class:`ShardTransport`.  The built-in :class:`_PipeShardTransport`
  owns a local worker process seeded with the router's bare CSR int
  arrays (a pickled ``Graph`` is shipped only on the no-numpy dict
  fallback); :class:`repro.serving.remote.RemoteShardTransport` instead
  speaks the JSON-lines wire format to a ``repro shard-host`` daemon that
  may live on *another machine*.  Either way each replica keeps its *own*
  root-BFS / candidate / score / sweep LRU layers, so warm traffic is
  served shard-locally across batches;
* **a thin router** — :meth:`~ShardedConnectorService.solve_many`
  validates locally, dedupes identical in-flight keys (duplicates within
  a batch are sent once and fan back out to every position), preserves
  request order, and turns the shards' picklable
  :class:`~repro.core.service.SweepOutcome` replies into
  :class:`~repro.core.result.ConnectorResult` objects on the
  graph-holding side.

Transport and failure semantics
-------------------------------

The router speaks :class:`ShardTransport` only: ``submit`` /
``submit_stats`` scatter requests (at most :data:`MAX_INFLIGHT_PER_SHARD`
outstanding per shard, so neither pipe nor socket buffers can deadlock),
``drain`` gathers whatever replies have arrived without blocking, and
``waitable`` exposes the underlying pipe/socket for a multiplexed
:func:`multiprocessing.connection.wait` — a slow shard never blocks
draining the others.  Remote transports additionally perform a
connect-time **handshake**: the router sends
:meth:`ConnectorService.index_digest` and the shard host refuses a
mismatch, so a ring is never built over two different graphs.

A dead shard — local process OOM-killed, remote daemon gone, socket reset
— poisons any half-served batch, so the router fails the batch with one
clean ``RuntimeError`` and closes the whole service; stale replies can
never leak into a later batch.  Shard-side *request* faults (a poisoned
query) ship back as exception values and fail only that request.
Stopping a shard stops what the router owns: a pipe transport terminates
its worker process, a remote transport merely disconnects (the daemon,
started and owned elsewhere, keeps serving its other routers).

Identity contract
-----------------

Sharding never changes answers.  For any shard count and any transport
mix, cold or warm, before and after LRU eviction and :meth:`resize`,
every connector returned is **bit-identical** to the one-shot
:func:`~repro.core.wiener_steiner.wiener_steiner` under equal options —
each shard runs the same canonical λ×root sweep
(:meth:`ConnectorService.sweep`) on the same arrays, and the router only
moves bytes.  ``tests/test_sharded.py`` and ``tests/test_remote.py`` fuzz
this against both the one-shot solver and a single ``ConnectorService``
on random corpora, over pipes, sockets, and mixed rings.

Rebalancing semantics
---------------------

:meth:`resize` is legal between batches (the router is synchronous, so
there are never in-flight requests at call time).  Growing spawns fresh
local shards; shrinking stops the highest-numbered shards and their
caches die with them (a remote shard is merely disconnected).  Resizing
to the current count is a true no-op.  Keys whose ring ownership moved
are simply re-solved cold on their new shard — a cache-locality event,
not a correctness event.

Quickstart
----------
>>> from repro.core.sharded import ShardedConnectorService
>>> from repro.datasets import karate_club
>>> with ShardedConnectorService(karate_club(), n_shards=2) as service:
...     results = service.solve_many([[12, 25], [12, 26, 30], [12, 25]])
>>> [sorted(r.query) for r in results]
[[12, 25], [12, 26, 30], [12, 25]]

Remote shard hosts (see :mod:`repro.serving.remote`) plug in by address::

    ShardedConnectorService(graph, shards=["10.0.0.5:8766", "local"])
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from bisect import bisect_right
from multiprocessing import connection as mp_connection
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.options import SolveOptions, stable_repr
from repro.core.result import ConnectorResult
from repro.core.service import (
    ConnectorService,
    ServiceStats,
    cache_hit_rate,
    service_from_payload,
)
from repro.graphs.graph import Graph, Node

__all__ = [
    "ShardTransport",
    "ShardTransportError",
    "ShardedConnectorService",
    "ShardedStats",
    "normalize_shard_spec",
    "request_digest",
]


class ShardTransportError(RuntimeError):
    """A shard link failed at the transport layer (not a request fault).

    Raised by :class:`ShardTransport` implementations when the link
    itself is unusable — a refused/mismatched handshake, a protocol
    violation on the wire.  The router treats it exactly like a raw
    ``OSError``/``EOFError`` from a dead pipe: the batch cannot be
    completed, so the service closes with one clear error.
    """


#: What the router catches from a transport call: the link is dead or
#: broken, as opposed to a shard-side request fault (shipped as a value).
_TRANSPORT_FAILURES = (EOFError, OSError, ShardTransportError)


@runtime_checkable
class ShardTransport(Protocol):
    """The router-side contract of one shard replica, however reached.

    Implementations: :class:`_PipeShardTransport` (a local worker process
    over a duplex pipe) and
    :class:`repro.serving.remote.RemoteShardTransport` (a TCP socket to a
    ``repro shard-host`` daemon).  The router guarantees at most
    :data:`ShardedConnectorService.MAX_INFLIGHT_PER_SHARD` submitted and
    undrained requests per transport, so ``submit`` may block on the OS
    buffer without deadlock risk.  All methods raise one of
    :data:`_TRANSPORT_FAILURES` when the link is dead.
    """

    #: Short tag surfaced in result metadata and stats ("pipe"/"socket").
    kind: str

    def submit(
        self, request_id: int, query_tuple: tuple, options: SolveOptions
    ) -> None:
        """Send one sweep request; the reply arrives via :meth:`drain`."""
        ...  # pragma: no cover - protocol definition

    def submit_stats(self, request_id: int) -> None:
        """Request a :class:`ServiceStats` snapshot from the replica."""
        ...  # pragma: no cover - protocol definition

    def drain(self) -> list[tuple[int, str, object]]:
        """Every reply currently available, without blocking.

        Each reply is ``(request_id, "ok" | "error", value)`` — the value
        is a :class:`~repro.core.service.SweepOutcome`, a
        :class:`ServiceStats`, or the shard-side exception.
        """
        ...  # pragma: no cover - protocol definition

    @property
    def waitable(self):
        """The pipe/socket for :func:`multiprocessing.connection.wait`."""
        ...  # pragma: no cover - protocol definition

    def stop(self) -> None:
        """Release what the router owns (process/pipe or socket)."""
        ...  # pragma: no cover - protocol definition


def normalize_shard_spec(spec) -> str | tuple[str, int]:
    """Validate one shard spec: ``"local"`` or ``"host:port"``.

    Returns ``"local"`` for a local worker-process shard, or a
    ``(host, port)`` pair for a remote shard-host address.  Used by both
    :class:`ShardedConnectorService` and the CLI ``--shards`` parser, so
    the accepted forms (and the error messages) cannot drift apart.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(
            f"a shard spec must be 'local' or 'host:port', got {spec!r}"
        )
    spec = spec.strip()
    if spec == "local":
        return "local"
    host, separator, port_text = spec.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"a shard spec must be 'local' or 'host:port', got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"shard spec {spec!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"shard spec {spec!r} has an out-of-range port {port}"
        )
    return host, port


def request_digest(query_set: frozenset, options: SolveOptions) -> bytes:
    """The stable routing key of one ``(query, options)`` request.

    Built from the canonical repr of the query labels plus
    :meth:`SolveOptions.stable_digest`, so every router process — today's
    and a restarted one — places the key identically.
    """
    query_part = ",".join(sorted(stable_repr(q) for q in query_set))
    return hashlib.sha1(
        query_part.encode("utf-8") + options.stable_digest()
    ).digest()


class _HashRing:
    """A consistent-hash ring with virtual points per shard.

    ``POINTS_PER_SHARD`` virtual points smooth the load split; lookups
    walk clockwise to the first point at or after the key's hash.  Adding
    or removing one shard of ``n`` reassigns ``~1/n`` of the key space —
    the property that makes :meth:`ShardedConnectorService.resize` cheap
    for warm caches.
    """

    POINTS_PER_SHARD = 64

    def __init__(self, shard_ids: Iterable[int]) -> None:
        points = []
        for shard_id in shard_ids:
            for replica in range(self.POINTS_PER_SHARD):
                token = hashlib.sha1(
                    f"shard-{shard_id}-point-{replica}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(token[:8], "big"), shard_id))
        points.sort()
        if not points:
            raise ValueError("a hash ring needs at least one shard")
        self._hashes = [point for point, _ in points]
        self._shard_ids = [shard_id for _, shard_id in points]

    def lookup(self, digest: bytes) -> int:
        position = bisect_right(
            self._hashes, int.from_bytes(digest[:8], "big")
        )
        if position == len(self._hashes):
            position = 0  # wrap past the top of the ring
        return self._shard_ids[position]


def _shard_main(connection, payload: dict) -> None:
    """The shard process body: one service replica, a small message loop.

    Messages are ``("solve", request_id, query_tuple, options)``,
    ``("stats", request_id)`` and ``("stop",)``.  Every request gets
    exactly one ``(request_id, status, value)`` reply in receipt order, so
    the router can account for replies per shard.  Worker faults are
    caught and shipped back as values — a poisoned query must fail that
    request, not the shard.
    """
    service = service_from_payload(payload)
    try:
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "solve":
                _, request_id, query_tuple, options = message
                try:
                    reply = (request_id, "ok", service.sweep(query_tuple, options))
                except Exception as exc:
                    reply = (request_id, "error", exc)
                connection.send(reply)
            elif kind == "stats":
                connection.send((message[1], "ok", service.stats()))
            elif kind == "stop":
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # router went away; nothing left to serve
    finally:
        connection.close()


class _PipeShardTransport:
    """Pipe-backed :class:`ShardTransport`: one local worker process.

    The original (PR 3) shard shape: the router spawns a persistent
    process running :func:`_shard_main` over a duplex pipe and owns its
    whole lifecycle — :meth:`stop` terminates the worker.
    """

    kind = "pipe"

    def __init__(self, shard_id: int, payload: dict, ctx) -> None:
        self.shard_id = shard_id
        self.connection, child_end = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_main,
            args=(child_end, payload),
            name=f"connector-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_end.close()  # the child owns its end now

    def submit(
        self, request_id: int, query_tuple: tuple, options: SolveOptions
    ) -> None:
        self.connection.send(("solve", request_id, query_tuple, options))

    def submit_stats(self, request_id: int) -> None:
        self.connection.send(("stats", request_id))

    def drain(self) -> list[tuple[int, str, object]]:
        replies = []
        while self.connection.poll(0):
            replies.append(self.connection.recv())
        return replies

    @property
    def waitable(self):
        return self.connection

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass  # already dead; join below still reaps it
        self.connection.close()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive reaping
            self.process.terminate()
            self.process.join()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(shard={self.shard_id}, pid={self.process.pid})"


#: Backwards-compatible private alias (pre-transport name).
_Shard = _PipeShardTransport


@dataclass(frozen=True)
class ShardedStats:
    """Router counters plus one :class:`ServiceStats` snapshot per shard.

    ``router_local`` is the router-side fallback service that answers
    what shard replicas cannot (non-``ws-q`` methods, per-call
    ``backend="dict"`` overrides on CSR-seeded shards); its cache traffic
    counts toward the aggregate hit numbers below so a baseline-method
    workload does not read as "never warm" just because it is sharded.

    With remote shards in the ring, a shard's snapshot covers the
    *daemon's* lifetime — which may predate this router connecting.
    """

    n_shards: int
    requests_routed: int
    inflight_deduped: int
    shards: tuple[ServiceStats, ...]
    router_local: ServiceStats | None = None
    transports: tuple[str, ...] = ()

    @property
    def _snapshots(self) -> tuple[ServiceStats, ...]:
        if self.router_local is None:
            return self.shards
        return self.shards + (self.router_local,)

    @property
    def queries_served(self) -> int:
        """Total requests served: shard sweeps plus router-local solves."""
        return sum(stats.queries_served for stats in self._snapshots)

    @property
    def result_hits(self) -> int:
        """Warm result-cache hits: every shard plus the router fallback."""
        return sum(stats.result_hits for stats in self._snapshots)

    def hit_rate(self, layer: str = "result") -> float:
        """Aggregate cache hit rate of one layer across the deployment.

        Same contract as :meth:`ServiceStats.hit_rate` (``"result"``,
        ``"candidate"`` or ``"score"``; ``0.0`` before any lookup), summed
        over the shard snapshots and the router-local fallback service.
        """
        return cache_hit_rate(self._snapshots, layer)


class ShardedConnectorService:
    """Route Min-Wiener-Connector queries across persistent shard replicas.

    Parameters
    ----------
    graph:
        The host graph; the router keeps it for validation and result
        construction while shards receive only the payload arrays (or,
        for remote shards, nothing — the daemon loaded its own copy,
        checked against ours by digest at connect time).
    options:
        Default :class:`SolveOptions`, overridable per call (the pair is
        the routing key, so the same query under different options may
        live on different shards — by design, results are keyed the same
        way).
    n_shards:
        Local shard-process count; defaults to ``min(4, cpu_count)``.
        Mutually exclusive with ``shards``.
    shards:
        Explicit shard specs, one per ring slot: ``"local"`` spawns a
        pipe-backed worker process, ``"host:port"`` connects to a
        ``repro shard-host`` daemon (see :mod:`repro.serving.remote`).
        Mixed rings are fine; ring placement depends only on the slot
        count, so ``shards=["local", "local"]`` and two remote hosts
        route identically.
    max_cached_roots / max_cached_candidates / max_cached_scores /
    max_cached_results:
        Forwarded to every *local* shard replica, bounding per-shard
        memory (a remote daemon's bounds were fixed by whoever started
        it).
    mp_context:
        An explicit :mod:`multiprocessing` context (tests pin ``"fork"``
        where available; the default context works everywhere).
    """

    #: Most requests a shard may have in flight before the router drains
    #: its replies.  Bounds both directions of every pipe/socket far below
    #: the OS buffer size, so arbitrarily large batches scatter without
    #: deadlock.
    MAX_INFLIGHT_PER_SHARD = 16

    def __init__(
        self,
        graph: Graph,
        options: SolveOptions | None = None,
        *,
        n_shards: int | None = None,
        shards: Sequence[str] | None = None,
        max_cached_roots: int | None = 512,
        max_cached_candidates: int | None = 4096,
        max_cached_scores: int | None = 4096,
        max_cached_results: int | None = 1024,
        mp_context=None,
    ) -> None:
        if shards is not None:
            if n_shards is not None:
                raise ValueError("pass n_shards or shards, not both")
            specs = [normalize_shard_spec(spec) for spec in shards]
            if not specs:
                raise ValueError("shards must name at least one shard")
        else:
            if n_shards is None:
                n_shards = min(4, os.cpu_count() or 1)
            if n_shards < 1:
                raise ValueError(f"n_shards must be at least 1, got {n_shards}")
            specs = ["local"] * n_shards
        # The router-side service: validation, payload construction, result
        # building, and the local fallback for non-"ws-q" methods.  Its own
        # solve caches see no sharded traffic.
        self._local = ConnectorService(
            graph,
            options,
            max_cached_roots=max_cached_roots,
            max_cached_candidates=max_cached_candidates,
            max_cached_scores=max_cached_scores,
            max_cached_results=max_cached_results,
        )
        self._payload = self._local.worker_payload(
            cache_limits={
                "max_cached_roots": max_cached_roots,
                "max_cached_candidates": max_cached_candidates,
                "max_cached_scores": max_cached_scores,
                "max_cached_results": max_cached_results,
            }
        )
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._shards: dict[int, ShardTransport] = {}
        self._ring: _HashRing | None = None
        self._next_request_id = 0
        self._requests_routed = 0
        self._inflight_deduped = 0
        self._closed = False
        try:
            for shard_id, spec in enumerate(specs):
                self._shards[shard_id] = self._make_transport(shard_id, spec)
        except BaseException:
            # A refused remote handshake (or connect failure) mid-build
            # must not leak the shards already spawned.
            self.close()
            raise
        self._ring = _HashRing(sorted(self._shards))

    def _make_transport(self, shard_id: int, spec) -> ShardTransport:
        if spec == "local":
            return _PipeShardTransport(shard_id, self._payload, self._ctx)
        host, port = spec
        # Imported lazily: the serving layer depends on core, so core only
        # reaches back when a remote shard is actually requested.
        from repro.serving.remote import RemoteShardTransport

        return RemoteShardTransport(
            shard_id, host, port, digest=self._local.index_digest()
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._local.graph

    @property
    def options(self) -> SolveOptions:
        return self._local.options

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def transports(self) -> tuple[str, ...]:
        """The transport kind of each ring slot (``"pipe"``/``"socket"``)."""
        return tuple(
            self._shards[shard_id].kind for shard_id in sorted(self._shards)
        )

    @property
    def payload_kind(self) -> str:
        """``"csr"`` (bare int arrays) or ``"graph"`` (no-numpy fallback)."""
        return self._payload["kind"]

    def resize(self, n_shards: int) -> None:
        """Grow or shrink the shard set and rebuild the ring.

        Legal between batches only (the synchronous router never holds
        in-flight requests across calls).  Growing spawns fresh, cold
        *local* shards; shrinking stops the highest-numbered shards
        (terminating local workers, merely disconnecting remote daemons).
        Resizing to the current count is a true no-op — the ring, the
        transports, and every warm cache are left untouched.  Retained
        shards keep their warm caches, and consistent hashing keeps
        ``~(n-1)/n`` of the key space pinned to them.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        if n_shards == len(self._shards):
            return
        created: list[int] = []
        try:
            for shard_id in range(len(self._shards), n_shards):
                self._shards[shard_id] = self._make_transport(shard_id, "local")
                created.append(shard_id)
        except BaseException:
            for shard_id in created:  # pragma: no cover - spawn failure
                self._shards.pop(shard_id).stop()
            raise
        for shard_id in range(n_shards, len(self._shards)):
            self._shards.pop(shard_id).stop()
        self._ring = _HashRing(sorted(self._shards))

    def shard_of(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> int:
        """Which shard serves this ``(query, options)`` key (introspection)."""
        if self._closed:
            raise RuntimeError("service is closed")
        opts = self._local._merge(options)
        return self._ring.lookup(request_digest(frozenset(query), opts))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def solve(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> ConnectorResult:
        """Solve one query on its home shard."""
        return self.solve_many([query], options)[0]

    def solve_many(
        self,
        queries: Iterable[Iterable[Node]],
        options: SolveOptions | None = None,
    ) -> list[ConnectorResult]:
        """Solve a batch across the shards; results come back in input order.

        Distinct keys are scattered to their home shards and solved
        concurrently; identical in-flight keys are sent once and every
        duplicate position receives the same result object.  Requests the
        shard replicas cannot serve — non-``ws-q`` methods and, on
        CSR-seeded shards, a per-call ``backend="dict"`` override, both of
        which need the host graph — fall back to the router's local
        service with the same answers.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        opts = self._local._merge(options)
        query_sets = [frozenset(query) for query in queries]
        if opts.method != "ws-q" or (
            opts.backend == "dict" and self._payload["kind"] == "csr"
        ):
            return [self._local.solve(query_set, opts) for query_set in query_sets]
        for query_set in query_sets:
            self._local._validate(query_set)

        # Dedupe identical in-flight keys and scatter one request each.
        # Draining is interleaved with scattering: a pipe or socket buffers
        # only a bounded number of bytes per direction, so a router that
        # sent a whole large batch before reading any reply would deadlock
        # against a shard blocked on sending its replies.  The per-shard
        # in-flight cap keeps both directions of every link comfortably
        # under the buffer size.
        routed: dict[frozenset, tuple[int, int]] = {}  # key -> (request_id, shard)
        pending: dict[int, int] = {}  # shard id -> in-flight request count
        outcomes: dict[int, object] = {}
        failures: dict[int, Exception] = {}
        for query_set in query_sets:
            if query_set in routed:
                self._inflight_deduped += 1
                continue
            shard_id = self._ring.lookup(request_digest(query_set, opts))
            if pending.get(shard_id, 0) >= self.MAX_INFLIGHT_PER_SHARD:
                self._drain(pending, outcomes, failures, below_cap=shard_id)
            request_id = self._next_request_id
            self._next_request_id += 1
            query_tuple = tuple(sorted(query_set, key=repr))
            self._submit_guarded(
                shard_id,
                lambda transport: transport.submit(request_id, query_tuple, opts),
            )
            routed[query_set] = (request_id, shard_id)
            pending[shard_id] = pending.get(shard_id, 0) + 1
            self._requests_routed += 1
        self._drain(pending, outcomes, failures)

        if failures:
            # Fail the batch with the error of the *earliest* failed request
            # (deterministic regardless of which shard replied first).
            raise failures[min(failures)]
        results: dict[frozenset, ConnectorResult] = {}
        for query_set, (request_id, shard_id) in routed.items():
            results[query_set] = self._local._to_result(
                query_set,
                outcomes[request_id],
                extra={
                    "sharded": True,
                    "shard": shard_id,
                    "shards": self.n_shards,
                    "transport": self._shards[shard_id].kind,
                },
            )
        return [results[query_set] for query_set in query_sets]

    def _submit_guarded(self, shard_id: int, send) -> None:
        """Run one transport send; a dead shard closes the service.

        ``send`` receives the shard's transport and issues exactly one
        ``submit``/``submit_stats`` call.  A half-served batch cannot be
        completed and leaves replies queued in the surviving links, so
        the only safe reaction to a dead shard (OOM-killed worker,
        vanished daemon, reset socket) is to tear the whole service down
        — the caller gets one clear error now instead of corrupt state
        later.
        """
        try:
            send(self._shards[shard_id])
        except _TRANSPORT_FAILURES:
            self.close()
            raise RuntimeError(
                f"shard {shard_id} died; the sharded service was closed "
                "and must be rebuilt"
            ) from None

    def _drain(
        self,
        pending: dict[int, int],
        outcomes: dict[int, object],
        failures: dict[int, Exception],
        *,
        below_cap: int | None = None,
    ) -> None:
        """Receive shard replies into ``outcomes`` / ``failures``.

        With ``below_cap=shard_id``, stops as soon as that shard is back
        under :data:`MAX_INFLIGHT_PER_SHARD` (the mid-scatter drain);
        otherwise runs until every link is empty, even when some replies
        carry errors — the next batch must find the transports drained.
        Uses :func:`multiprocessing.connection.wait` over the transports'
        waitables so a slow shard never blocks draining the others.
        """
        while pending:
            if (
                below_cap is not None
                and pending.get(below_cap, 0) < self.MAX_INFLIGHT_PER_SHARD
            ):
                return
            progressed = False
            for shard_id in list(pending):
                try:
                    replies = self._shards[shard_id].drain()
                except _TRANSPORT_FAILURES:
                    self.close()  # see _submit_guarded: a dead shard poisons the batch
                    raise RuntimeError(
                        f"shard {shard_id} died mid-batch; the sharded "
                        "service was closed and must be rebuilt"
                    ) from None
                for request_id, status, value in replies:
                    if status == "ok":
                        outcomes[request_id] = value
                    else:
                        failures[request_id] = value
                    pending[shard_id] -= 1
                    progressed = True
                if not pending.get(shard_id, 1):
                    del pending[shard_id]
            if progressed or not pending:
                continue
            by_waitable = {
                self._shards[shard_id].waitable: shard_id
                for shard_id in pending
            }
            mp_connection.wait(list(by_waitable))

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ShardedStats:
        """Router counters plus a live snapshot from every shard."""
        if self._closed:
            raise RuntimeError("service is closed")
        pending: dict[int, int] = {}
        snapshots: dict[int, object] = {}
        failures: dict[int, Exception] = {}
        ordered_requests: list[int] = []
        for shard_id in sorted(self._shards):
            request_id = self._next_request_id
            self._next_request_id += 1
            self._submit_guarded(
                shard_id,
                lambda transport: transport.submit_stats(request_id),
            )
            ordered_requests.append(request_id)
            pending[shard_id] = 1
        self._drain(pending, snapshots, failures)
        assert not failures  # stats requests cannot fail
        ordered = tuple(
            snapshots[request_id] for request_id in ordered_requests
        )
        return ShardedStats(
            n_shards=self.n_shards,
            requests_routed=self._requests_routed,
            inflight_deduped=self._inflight_deduped,
            shards=ordered,
            router_local=self._local.stats(),
            transports=self.transports,
        )

    def close(self) -> None:
        """Stop every shard transport; idempotent.

        Local workers are terminated; remote daemons are only
        disconnected (they are owned by whoever started them and may be
        serving other routers).
        """
        if self._closed:
            return
        self._closed = True
        while self._shards:
            _, shard = self._shards.popitem()
            shard.stop()

    def __enter__(self) -> "ShardedConnectorService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "closed" if self._closed else f"shards={self.n_shards}"
        return (
            f"{type(self).__name__}(|V|={self._local.num_nodes}, {state}, "
            f"routed={self._requests_routed})"
        )
