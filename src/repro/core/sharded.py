"""ShardedConnectorService — persistent multi-process sharded serving.

The ROADMAP's scaling ladder after the serving layer: partition the
result/candidate caches and the root-BFS state of a
:class:`~repro.core.service.ConnectorService` across several *persistent*
worker processes, with a thin router in front.  A shard is just a service
holding a subset of the key space — exactly what ``ConnectorService`` was
designed for — so the router stays small:

* **consistent-hash routing** — each ``(query, options)`` request key is
  placed on a hash ring (:class:`SolveOptions.stable_digest` plus the
  canonical query repr, never the per-process-salted ``hash()``) with many
  virtual points per shard, so equal keys always land on the same shard
  (cache affinity) and :meth:`ShardedConnectorService.resize` moves only
  ``~1/n`` of the key space;
* **persistent shard processes** — unlike ``solve_many(parallel=True)``,
  whose pool lives for one call, every shard is a long-lived process
  hosting one ``ConnectorService`` replica seeded with the router's bare
  CSR int arrays (a pickled ``Graph`` is shipped only on the no-numpy
  dict fallback).  Each shard keeps its *own* root-BFS / candidate /
  score / sweep LRU layers, so warm traffic is served from shard-local
  cache across batches, restarts of nothing;
* **a thin router** — :meth:`~ShardedConnectorService.solve_many`
  validates locally, dedupes identical in-flight keys (duplicates within
  a batch are sent once and fan back out to every position), preserves
  request order, and turns the shards' picklable
  :class:`~repro.core.service.SweepOutcome` replies into
  :class:`~repro.core.result.ConnectorResult` objects on the
  graph-holding side.

Identity contract
-----------------

Sharding never changes answers.  For any shard count, cold or warm, before
and after LRU eviction and :meth:`resize`, every connector returned is
**bit-identical** to the one-shot
:func:`~repro.core.wiener_steiner.wiener_steiner` under equal options —
each shard runs the same canonical λ×root sweep
(:meth:`ConnectorService.sweep`) on the same arrays, and the router only
moves bytes.  ``tests/test_sharded.py`` fuzzes this against both the
one-shot solver and a single ``ConnectorService`` on random corpora.

Rebalancing semantics
---------------------

:meth:`resize` is legal between batches (the router is synchronous, so
there are never in-flight requests at call time).  Growing spawns fresh
shards; shrinking stops the highest-numbered shards and their caches die
with them.  Retained shards keep their caches.  Keys whose ring ownership
moved are simply re-solved cold on their new shard — a cache-locality
event, not a correctness event.

Quickstart
----------
>>> from repro.core.sharded import ShardedConnectorService
>>> from repro.datasets import karate_club
>>> with ShardedConnectorService(karate_club(), n_shards=2) as service:
...     results = service.solve_many([[12, 25], [12, 26, 30], [12, 25]])
>>> [sorted(r.query) for r in results]
[[12, 25], [12, 26, 30], [12, 25]]
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from bisect import bisect_right
from multiprocessing import connection as mp_connection
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.options import SolveOptions, stable_repr
from repro.core.result import ConnectorResult
from repro.core.service import (
    ConnectorService,
    ServiceStats,
    cache_hit_rate,
    service_from_payload,
)
from repro.graphs.graph import Graph, Node

__all__ = ["ShardedConnectorService", "ShardedStats", "request_digest"]


def request_digest(query_set: frozenset, options: SolveOptions) -> bytes:
    """The stable routing key of one ``(query, options)`` request.

    Built from the canonical repr of the query labels plus
    :meth:`SolveOptions.stable_digest`, so every router process — today's
    and a restarted one — places the key identically.
    """
    query_part = ",".join(sorted(stable_repr(q) for q in query_set))
    return hashlib.sha1(
        query_part.encode("utf-8") + options.stable_digest()
    ).digest()


class _HashRing:
    """A consistent-hash ring with virtual points per shard.

    ``POINTS_PER_SHARD`` virtual points smooth the load split; lookups
    walk clockwise to the first point at or after the key's hash.  Adding
    or removing one shard of ``n`` reassigns ``~1/n`` of the key space —
    the property that makes :meth:`ShardedConnectorService.resize` cheap
    for warm caches.
    """

    POINTS_PER_SHARD = 64

    def __init__(self, shard_ids: Iterable[int]) -> None:
        points = []
        for shard_id in shard_ids:
            for replica in range(self.POINTS_PER_SHARD):
                token = hashlib.sha1(
                    f"shard-{shard_id}-point-{replica}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(token[:8], "big"), shard_id))
        points.sort()
        if not points:
            raise ValueError("a hash ring needs at least one shard")
        self._hashes = [point for point, _ in points]
        self._shard_ids = [shard_id for _, shard_id in points]

    def lookup(self, digest: bytes) -> int:
        position = bisect_right(
            self._hashes, int.from_bytes(digest[:8], "big")
        )
        if position == len(self._hashes):
            position = 0  # wrap past the top of the ring
        return self._shard_ids[position]


def _shard_main(connection, payload: dict) -> None:
    """The shard process body: one service replica, a small message loop.

    Messages are ``("solve", request_id, query_tuple, options)``,
    ``("stats", request_id)`` and ``("stop",)``.  Every request gets
    exactly one ``(request_id, status, value)`` reply in receipt order, so
    the router can account for replies per shard.  Worker faults are
    caught and shipped back as values — a poisoned query must fail that
    request, not the shard.
    """
    service = service_from_payload(payload)
    try:
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "solve":
                _, request_id, query_tuple, options = message
                try:
                    reply = (request_id, "ok", service.sweep(query_tuple, options))
                except Exception as exc:
                    reply = (request_id, "error", exc)
                connection.send(reply)
            elif kind == "stats":
                connection.send((message[1], "ok", service.stats()))
            elif kind == "stop":
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # router went away; nothing left to serve
    finally:
        connection.close()


class _Shard:
    """Router-side handle of one shard process (pipe + process)."""

    def __init__(self, shard_id: int, payload: dict, ctx) -> None:
        self.shard_id = shard_id
        self.connection, child_end = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_main,
            args=(child_end, payload),
            name=f"connector-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_end.close()  # the child owns its end now

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass  # already dead; join below still reaps it
        self.connection.close()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive reaping
            self.process.terminate()
            self.process.join()


@dataclass(frozen=True)
class ShardedStats:
    """Router counters plus one :class:`ServiceStats` snapshot per shard.

    ``router_local`` is the router-side fallback service that answers
    what shard replicas cannot (non-``ws-q`` methods, per-call
    ``backend="dict"`` overrides on CSR-seeded shards); its cache traffic
    counts toward the aggregate hit numbers below so a baseline-method
    workload does not read as "never warm" just because it is sharded.
    """

    n_shards: int
    requests_routed: int
    inflight_deduped: int
    shards: tuple[ServiceStats, ...]
    router_local: ServiceStats | None = None

    @property
    def _snapshots(self) -> tuple[ServiceStats, ...]:
        if self.router_local is None:
            return self.shards
        return self.shards + (self.router_local,)

    @property
    def queries_served(self) -> int:
        """Total requests served: shard sweeps plus router-local solves."""
        return sum(stats.queries_served for stats in self._snapshots)

    @property
    def result_hits(self) -> int:
        """Warm result-cache hits: every shard plus the router fallback."""
        return sum(stats.result_hits for stats in self._snapshots)

    def hit_rate(self, layer: str = "result") -> float:
        """Aggregate cache hit rate of one layer across the deployment.

        Same contract as :meth:`ServiceStats.hit_rate` (``"result"``,
        ``"candidate"`` or ``"score"``; ``0.0`` before any lookup), summed
        over the shard snapshots and the router-local fallback service.
        """
        return cache_hit_rate(self._snapshots, layer)


class ShardedConnectorService:
    """Route Min-Wiener-Connector queries across persistent shard processes.

    Parameters
    ----------
    graph:
        The host graph; the router keeps it for validation and result
        construction while shards receive only the payload arrays.
    options:
        Default :class:`SolveOptions`, overridable per call (the pair is
        the routing key, so the same query under different options may
        live on different shards — by design, results are keyed the same
        way).
    n_shards:
        Shard-process count; defaults to ``min(4, cpu_count)``.
    max_cached_roots / max_cached_candidates / max_cached_scores /
    max_cached_results:
        Forwarded to *every* shard replica, bounding per-shard memory.
    mp_context:
        An explicit :mod:`multiprocessing` context (tests pin ``"fork"``
        where available; the default context works everywhere).
    """

    #: Most requests a shard may have in flight before the router drains
    #: its replies.  Bounds both directions of every pipe far below the OS
    #: buffer size, so arbitrarily large batches scatter without deadlock.
    MAX_INFLIGHT_PER_SHARD = 16

    def __init__(
        self,
        graph: Graph,
        options: SolveOptions | None = None,
        *,
        n_shards: int | None = None,
        max_cached_roots: int | None = 512,
        max_cached_candidates: int | None = 4096,
        max_cached_scores: int | None = 4096,
        max_cached_results: int | None = 1024,
        mp_context=None,
    ) -> None:
        if n_shards is None:
            n_shards = min(4, os.cpu_count() or 1)
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        # The router-side service: validation, payload construction, result
        # building, and the local fallback for non-"ws-q" methods.  Its own
        # solve caches see no sharded traffic.
        self._local = ConnectorService(
            graph,
            options,
            max_cached_roots=max_cached_roots,
            max_cached_candidates=max_cached_candidates,
            max_cached_scores=max_cached_scores,
            max_cached_results=max_cached_results,
        )
        self._payload = self._local.worker_payload(
            cache_limits={
                "max_cached_roots": max_cached_roots,
                "max_cached_candidates": max_cached_candidates,
                "max_cached_scores": max_cached_scores,
                "max_cached_results": max_cached_results,
            }
        )
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._shards: dict[int, _Shard] = {}
        self._ring: _HashRing | None = None
        self._next_request_id = 0
        self._requests_routed = 0
        self._inflight_deduped = 0
        self._closed = False
        self.resize(n_shards)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._local.graph

    @property
    def options(self) -> SolveOptions:
        return self._local.options

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def payload_kind(self) -> str:
        """``"csr"`` (bare int arrays) or ``"graph"`` (no-numpy fallback)."""
        return self._payload["kind"]

    def resize(self, n_shards: int) -> None:
        """Grow or shrink the shard set and rebuild the ring.

        Legal between batches only (the synchronous router never holds
        in-flight requests across calls).  Growing spawns fresh, cold
        shards; shrinking stops the highest-numbered shards.  Retained
        shards keep their warm caches, and consistent hashing keeps
        ``~(n-1)/n`` of the key space pinned to them.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        for shard_id in range(len(self._shards), n_shards):
            self._shards[shard_id] = _Shard(shard_id, self._payload, self._ctx)
        for shard_id in range(n_shards, len(self._shards)):
            self._shards.pop(shard_id).stop()
        self._ring = _HashRing(sorted(self._shards))

    def shard_of(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> int:
        """Which shard serves this ``(query, options)`` key (introspection)."""
        opts = self._local._merge(options)
        return self._ring.lookup(request_digest(frozenset(query), opts))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def solve(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> ConnectorResult:
        """Solve one query on its home shard."""
        return self.solve_many([query], options)[0]

    def solve_many(
        self,
        queries: Iterable[Iterable[Node]],
        options: SolveOptions | None = None,
    ) -> list[ConnectorResult]:
        """Solve a batch across the shards; results come back in input order.

        Distinct keys are scattered to their home shards and solved
        concurrently; identical in-flight keys are sent once and every
        duplicate position receives the same result object.  Requests the
        shard replicas cannot serve — non-``ws-q`` methods and, on
        CSR-seeded shards, a per-call ``backend="dict"`` override, both of
        which need the host graph — fall back to the router's local
        service with the same answers.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        opts = self._local._merge(options)
        query_sets = [frozenset(query) for query in queries]
        if opts.method != "ws-q" or (
            opts.backend == "dict" and self._payload["kind"] == "csr"
        ):
            return [self._local.solve(query_set, opts) for query_set in query_sets]
        for query_set in query_sets:
            self._local._validate(query_set)

        # Dedupe identical in-flight keys and scatter one request each.
        # Draining is interleaved with scattering: a pipe buffers only a few
        # dozen KB per direction, so a router that sent a whole large batch
        # before reading any reply would deadlock against a shard blocked on
        # sending its replies.  The per-shard in-flight cap keeps both
        # directions of every pipe comfortably under the buffer size.
        routed: dict[frozenset, tuple[int, int]] = {}  # key -> (request_id, shard)
        pending: dict[int, int] = {}  # shard id -> in-flight request count
        outcomes: dict[int, object] = {}
        failures: dict[int, Exception] = {}
        for query_set in query_sets:
            if query_set in routed:
                self._inflight_deduped += 1
                continue
            shard_id = self._ring.lookup(request_digest(query_set, opts))
            if pending.get(shard_id, 0) >= self.MAX_INFLIGHT_PER_SHARD:
                self._drain(pending, outcomes, failures, below_cap=shard_id)
            request_id = self._next_request_id
            self._next_request_id += 1
            self._send(
                shard_id,
                ("solve", request_id, tuple(sorted(query_set, key=repr)), opts),
            )
            routed[query_set] = (request_id, shard_id)
            pending[shard_id] = pending.get(shard_id, 0) + 1
            self._requests_routed += 1
        self._drain(pending, outcomes, failures)

        if failures:
            # Fail the batch with the error of the *earliest* failed request
            # (deterministic regardless of which shard replied first).
            raise failures[min(failures)]
        results: dict[frozenset, ConnectorResult] = {}
        for query_set, (request_id, shard_id) in routed.items():
            results[query_set] = self._local._to_result(
                query_set,
                outcomes[request_id],
                extra={"sharded": True, "shard": shard_id, "shards": self.n_shards},
            )
        return [results[query_set] for query_set in query_sets]

    def _send(self, shard_id: int, message) -> None:
        """Send one message to a shard; a dead shard closes the service.

        A half-served batch cannot be completed and leaves replies queued
        in the surviving pipes, so the only safe reaction to a dead shard
        process (OOM kill, crash) is to tear the whole service down — the
        caller gets one clear error now instead of corrupt state later.
        """
        try:
            self._shards[shard_id].connection.send(message)
        except (BrokenPipeError, OSError):
            self.close()
            raise RuntimeError(
                f"shard {shard_id} died; the sharded service was closed "
                "and must be rebuilt"
            ) from None

    def _drain(
        self,
        pending: dict[int, int],
        outcomes: dict[int, object],
        failures: dict[int, Exception],
        *,
        below_cap: int | None = None,
    ) -> None:
        """Receive shard replies into ``outcomes`` / ``failures``.

        With ``below_cap=shard_id``, stops as soon as that shard is back
        under :data:`MAX_INFLIGHT_PER_SHARD` (the mid-scatter drain);
        otherwise runs until every pipe is empty, even when some replies
        carry errors — the next batch must find the connections drained.
        Uses :func:`multiprocessing.connection.wait` so a slow shard never
        blocks draining the others.
        """
        while pending:
            if (
                below_cap is not None
                and pending.get(below_cap, 0) < self.MAX_INFLIGHT_PER_SHARD
            ):
                return
            by_connection = {
                self._shards[shard_id].connection: shard_id for shard_id in pending
            }
            ready = mp_connection.wait(list(by_connection))
            for connection in ready:
                shard_id = by_connection[connection]
                try:
                    request_id, status, value = connection.recv()
                except (EOFError, OSError):
                    self.close()  # see _send: a dead shard poisons the batch
                    raise RuntimeError(
                        f"shard {shard_id} died mid-batch; the sharded "
                        "service was closed and must be rebuilt"
                    ) from None
                if status == "ok":
                    outcomes[request_id] = value
                else:
                    failures[request_id] = value
                pending[shard_id] -= 1
                if not pending[shard_id]:
                    del pending[shard_id]

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ShardedStats:
        """Router counters plus a live snapshot from every shard."""
        if self._closed:
            raise RuntimeError("service is closed")
        pending: dict[int, int] = {}
        snapshots: dict[int, object] = {}
        failures: dict[int, Exception] = {}
        for shard_id in list(self._shards):
            request_id = self._next_request_id
            self._next_request_id += 1
            self._send(shard_id, ("stats", request_id))
            pending[shard_id] = 1
        self._drain(pending, snapshots, failures)
        assert not failures  # stats requests cannot fail
        ordered = tuple(
            snapshots[request_id]
            for request_id in sorted(snapshots)
        )
        return ShardedStats(
            n_shards=self.n_shards,
            requests_routed=self._requests_routed,
            inflight_deduped=self._inflight_deduped,
            shards=ordered,
            router_local=self._local.stats(),
        )

    def close(self) -> None:
        """Stop every shard process; idempotent."""
        if self._closed:
            return
        self._closed = True
        while self._shards:
            _, shard = self._shards.popitem()
            shard.stop()

    def __enter__(self) -> "ShardedConnectorService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "closed" if self._closed else f"shards={self.n_shards}"
        return (
            f"{type(self).__name__}(|V|={self._local.num_nodes}, {state}, "
            f"routed={self._requests_routed})"
        )
