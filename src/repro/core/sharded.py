"""ShardedConnectorService — replicated, self-healing sharded serving.

The ROADMAP's scaling ladder after the serving layer: partition the
result/candidate caches and the root-BFS state of a
:class:`~repro.core.service.ConnectorService` across several *persistent*
shard replicas, with a thin router in front.  A shard is just a service
holding a subset of the key space — exactly what ``ConnectorService`` was
designed for — so the router stays small:

* **consistent-hash routing with replication** — each ``(query, options)``
  request key is placed on a hash ring (:class:`SolveOptions.stable_digest`
  plus the canonical query repr, never the per-process-salted ``hash()``)
  with many virtual points per shard.  With ``replication=R`` a key maps
  to the first **R distinct** slots clockwise from its hash — a
  deterministic *primary order* that depends only on the slot count,
  never the transport — and distinct keys rotate their preferred replica
  within that list, fanning reads across the replica group (the
  hot-spot headroom PRs 3–5 kept recording) while every *repeat* of a
  key still lands on the same replica (cache affinity);
* **persistent shard replicas behind a transport protocol** — every shard
  is a long-lived ``ConnectorService`` replica reached through a
  :class:`ShardTransport`.  The built-in :class:`_PipeShardTransport`
  owns a local worker process seeded with the router's bare CSR int
  arrays (a pickled ``Graph`` is shipped only on the no-numpy dict
  fallback); :class:`repro.serving.remote.RemoteShardTransport` instead
  speaks the JSON-lines wire format to a ``repro shard-host`` daemon that
  may live on *another machine*.  Either way each replica keeps its *own*
  root-BFS / candidate / score / sweep LRU layers, so warm traffic is
  served shard-locally across batches;
* **a thin router** — :meth:`~ShardedConnectorService.solve_many`
  validates locally, dedupes identical in-flight keys (duplicates within
  a batch are sent once and fan back out to every position), preserves
  request order, and turns the shards' picklable
  :class:`~repro.core.service.SweepOutcome` replies into
  :class:`~repro.core.result.ConnectorResult` objects on the
  graph-holding side.

Failure semantics (what fails, what degrades, what heals)
---------------------------------------------------------

The router speaks :class:`ShardTransport` only: ``submit`` /
``submit_stats`` scatter requests (at most :data:`MAX_INFLIGHT_PER_SHARD`
outstanding per shard, so neither pipe nor socket buffers can deadlock),
``drain`` gathers whatever replies have arrived without blocking,
``waitable`` exposes the underlying pipe/socket for a multiplexed
:func:`multiprocessing.connection.wait`, and ``probe``/``reconnect``
carry the health surface.  Transport failures raise
:class:`ShardTransportError` — :class:`ShardConnectError` at
connect/handshake time, :class:`ShardLinkError` on an established link —
so the router can tell a topology problem from a mid-flight death.

* **Shard-side request faults** (a poisoned query) ship back as
  exception values and fail only that request.  Always.
* **With ``replication=1``** (the default) a dead shard — local process
  OOM-killed, remote daemon gone, socket reset — poisons any half-served
  batch, so the router fails the batch with one clean ``RuntimeError``
  and closes the whole service; stale replies can never leak into a
  later batch.
* **With ``replication>=2``** a dead replica *degrades* instead: the
  router takes the slot out of service, re-dispatches that replica's
  in-flight sweeps on the next surviving replica of each key (counted in
  ``ShardedStats.failovers``), and the batch completes bit-identically —
  replicas are identical ``ConnectorService``s, so the answer cannot
  depend on who computes it.  The batch fails (and the service closes)
  only when a key range has **zero** live replicas.
* **Healing is silent**: every down slot keeps a jittered-exponential
  :class:`~repro.core.retry.RetrySchedule` (``core/retry.py``), and at
  each batch boundary the router retries due slots —
  ``RemoteShardTransport.reconnect()`` re-dials and re-runs the ``hello``
  digest handshake; a pipe transport respawns its worker.  Successful
  revivals (``ShardedStats.reconnects``) restore the slot's exact ring
  position, so warm keys return home.
* **Liveness is application-level**: remote transports heartbeat idle
  links with ``ping`` probes and are marked *suspect* on a missed
  deadline; the router confirms suspects with one probe before a batch
  touches them.  Mid-batch, a shard that has been silent past
  ``liveness_deadline`` seconds is probed and — if unreachable —
  declared dead (failover as above), bounding silent partitions and
  SIGSTOP'd daemons by the configured deadline instead of the ~60s TCP
  keepalive the transport also keeps as a backstop.

Stopping a shard stops what the router owns: a pipe transport terminates
its worker process, a remote transport merely disconnects (the daemon,
started and owned elsewhere, keeps serving its other routers).

Identity contract
-----------------

Sharding never changes answers.  For any shard count, any replication
factor, and any transport mix, cold or warm, before and after LRU
eviction, :meth:`resize`, :meth:`replace_shard`, and mid-batch failover,
every connector returned is **bit-identical** to the one-shot
:func:`~repro.core.wiener_steiner.wiener_steiner` under equal options —
each shard runs the same canonical λ×root sweep
(:meth:`ConnectorService.sweep`) on the same arrays, and the router only
moves bytes.  The replicated surface changes *when* the router gives up,
never *what* it returns.  ``tests/test_sharded.py``,
``tests/test_remote.py``, and ``tests/test_failover.py`` fuzz this
against the one-shot solver on random corpora, over pipes, sockets,
mixed rings, and chaos (kill / SIGSTOP / partition mid-stream).

Rebalancing and rolling replace
-------------------------------

:meth:`resize` is legal between batches (the router is synchronous, so
there are never in-flight requests at call time).  It accepts a count —
growing spawns fresh local shards, shrinking stops the highest-numbered
slots — or a full spec list, which *diffs against the current topology*:
unchanged slots keep their live transports and warm caches, changed
slots are replaced in place.  :meth:`replace_shard` swaps a single
slot's transport for a new spec without touching the ring, so a
deployment with ``replication>=2`` upgrades shard hosts one at a time
with zero downtime (the other replicas cover each key range during the
swap).  Resizing to the current topology is a true no-op.  Keys whose
ring ownership moved are simply re-solved cold on their new shard — a
cache-locality event, not a correctness event.

Quickstart
----------
>>> from repro.core.sharded import ShardedConnectorService
>>> from repro.datasets import karate_club
>>> with ShardedConnectorService(karate_club(), n_shards=2) as service:
...     results = service.solve_many([[12, 25], [12, 26, 30], [12, 25]])
>>> [sorted(r.query) for r in results]
[[12, 25], [12, 26, 30], [12, 25]]

Remote shard hosts (see :mod:`repro.serving.remote`) plug in by address,
and ``replication=2`` makes any single replica's death survivable::

    ShardedConnectorService(
        graph, shards=["10.0.0.5:8766", "10.0.0.6:8766"], replication=2
    )
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from bisect import bisect_right
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Protocol, runtime_checkable

from repro.core.options import SolveOptions, stable_repr
from repro.core.result import ConnectorResult
from repro.core.retry import BackoffPolicy, RetrySchedule
from repro.core.service import (
    ConnectorService,
    ServiceStats,
    cache_hit_rate,
    service_from_payload,
)
from repro.errors import ServiceClosedError
from repro.graphs.graph import Graph, Node

__all__ = [
    "ShardTransport",
    "ShardTransportError",
    "ShardConnectError",
    "ShardLinkError",
    "ShardedConnectorService",
    "ShardedStats",
    "normalize_shard_spec",
    "request_digest",
]


class ShardTransportError(RuntimeError):
    """A shard link failed at the transport layer (not a request fault).

    Raised by :class:`ShardTransport` implementations when the link
    itself is unusable.  The router treats it exactly like a raw
    ``OSError``/``EOFError`` from a dead pipe: the in-flight sweeps on
    that replica cannot be completed there, so the router fails over
    (``replication>=2``) or closes the service with one clear error
    (``replication=1``).  The two subclasses let the router and its
    callers tell *when* the link died.
    """


class ShardConnectError(ShardTransportError):
    """The link never came up: refused connect, handshake timeout, a
    graph-digest mismatch, or a peer that answers with a non-protocol
    reply (an HTTP server on the wrong port).  Raising at connect time
    is what lets a bad topology fail at build/revival time instead of
    poisoning a batch."""


class ShardLinkError(ShardTransportError):
    """An established link broke in flight: a mid-write reset, the peer
    closing mid-stream, or a reply the router cannot parse (pickle or
    protocol skew) — the link has lost sync and must be abandoned."""


#: What the router catches from a transport call: the link is dead or
#: broken, as opposed to a shard-side request fault (shipped as a value).
_TRANSPORT_FAILURES = (EOFError, OSError, ShardTransportError)


@runtime_checkable
class ShardTransport(Protocol):
    """The router-side contract of one shard replica, however reached.

    Implementations: :class:`_PipeShardTransport` (a local worker process
    over a duplex pipe) and
    :class:`repro.serving.remote.RemoteShardTransport` (a TCP socket to a
    ``repro shard-host`` daemon).  The router guarantees at most
    :data:`ShardedConnectorService.MAX_INFLIGHT_PER_SHARD` submitted and
    undrained requests per transport in steady state (failover may
    briefly overshoot while a dead replica's sweeps re-dispatch), so
    ``submit`` may block on the OS buffer without deadlock risk.  All
    methods raise one of :data:`_TRANSPORT_FAILURES` when the link is
    dead.
    """

    #: Short tag surfaced in result metadata and stats ("pipe"/"socket").
    kind: str

    def submit(
        self,
        request_id: int,
        query_tuple: tuple,
        options: SolveOptions,
        epoch: int | None = None,
    ) -> None:
        """Send one sweep request; the reply arrives via :meth:`drain`.

        ``epoch`` stamps the graph version the router dispatched at; a
        replica serving a different version refuses the sweep with a
        :class:`ShardLinkError` value rather than answering from the
        wrong graph.
        """
        ...  # pragma: no cover - protocol definition

    def submit_mutate(self, request_id: int, delta) -> None:
        """Ship one :class:`~repro.core.versioned.GraphDelta` to the replica.

        The reply value is the replica's new epoch, which must equal the
        router's after its own local apply — anything else means the
        replica diverged.
        """
        ...  # pragma: no cover - protocol definition

    def submit_stats(self, request_id: int) -> None:
        """Request a :class:`ServiceStats` snapshot from the replica."""
        ...  # pragma: no cover - protocol definition

    def drain(self) -> list[tuple[int, str, object]]:
        """Every reply currently available, without blocking.

        Each reply is ``(request_id, "ok" | "error", value)`` — the value
        is a :class:`~repro.core.service.SweepOutcome`, a
        :class:`ServiceStats`, or the shard-side exception.
        """
        ...  # pragma: no cover - protocol definition

    @property
    def waitable(self):
        """The pipe/socket for :func:`multiprocessing.connection.wait`."""
        ...  # pragma: no cover - protocol definition

    def probe(self, timeout: float) -> bool:
        """Is the replica reachable *right now*?  Never raises.

        Used to tell a slow-but-alive replica (a long sweep in flight)
        from a dead one before declaring mid-batch failover, and to
        confirm heartbeat suspicions at batch boundaries.
        """
        ...  # pragma: no cover - protocol definition

    def reconnect(self) -> None:
        """Re-establish a dropped link (respawn/re-dial + handshake).

        Raises one of :data:`_TRANSPORT_FAILURES` when the replica is
        still unreachable; on success the transport serves again with
        its caches in whatever state the replica kept (a daemon that
        merely lost the socket stays warm, a respawned worker is cold).
        """
        ...  # pragma: no cover - protocol definition

    def is_suspect(self) -> bool:
        """Has background health monitoring flagged this link?"""
        ...  # pragma: no cover - protocol definition

    def clear_suspect(self) -> None:
        """Reset the suspect flag after a successful probe."""
        ...  # pragma: no cover - protocol definition

    def stop(self) -> None:
        """Release what the router owns (process/pipe or socket)."""
        ...  # pragma: no cover - protocol definition


def normalize_shard_spec(spec) -> str | tuple[str, int]:
    """Validate one shard spec: ``"local"`` or ``"host:port"``.

    Returns ``"local"`` for a local worker-process shard, or a
    ``(host, port)`` pair for a remote shard-host address.  Used by both
    :class:`ShardedConnectorService` and the CLI ``--shards`` parser, so
    the accepted forms (and the error messages) cannot drift apart.
    """
    if isinstance(spec, tuple) and len(spec) == 2:
        # Already normalized (the service stores and re-feeds these).
        spec = f"{spec[0]}:{spec[1]}"
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(
            f"a shard spec must be 'local' or 'host:port', got {spec!r}"
        )
    spec = spec.strip()
    if spec == "local":
        return "local"
    host, separator, port_text = spec.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"a shard spec must be 'local' or 'host:port', got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"shard spec {spec!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"shard spec {spec!r} has an out-of-range port {port}"
        )
    return host, port


def request_digest(query_set: frozenset, options: SolveOptions) -> bytes:
    """The stable routing key of one ``(query, options)`` request.

    Built from the canonical repr of the query labels plus
    :meth:`SolveOptions.stable_digest`, so every router process — today's
    and a restarted one — places the key identically.
    """
    query_part = ",".join(sorted(stable_repr(q) for q in query_set))
    return hashlib.sha1(
        query_part.encode("utf-8") + options.stable_digest()
    ).digest()


class _HashRing:
    """A consistent-hash ring with virtual points per shard.

    ``POINTS_PER_SHARD`` virtual points smooth the load split; lookups
    walk clockwise to the first point at or after the key's hash.  Adding
    or removing one shard of ``n`` reassigns ``~1/n`` of the key space —
    the property that makes :meth:`ShardedConnectorService.resize` cheap
    for warm caches.  :meth:`replicas` continues the same clockwise walk
    to the next *distinct* shards, which is the standard consistent-
    hashing replica placement: deterministic, transport-agnostic, and
    stable under the same ``~1/n`` movement bound.
    """

    POINTS_PER_SHARD = 64

    def __init__(self, shard_ids: Iterable[int]) -> None:
        points = []
        for shard_id in shard_ids:
            for replica in range(self.POINTS_PER_SHARD):
                token = hashlib.sha1(
                    f"shard-{shard_id}-point-{replica}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(token[:8], "big"), shard_id))
        points.sort()
        if not points:
            raise ValueError("a hash ring needs at least one shard")
        self._hashes = [point for point, _ in points]
        self._shard_ids = [shard_id for _, shard_id in points]

    def lookup(self, digest: bytes) -> int:
        return self.replicas(digest, 1)[0]

    def replicas(self, digest: bytes, count: int) -> list[int]:
        """The first ``count`` distinct shards clockwise from the key.

        This is the key's *primary order*: position 0 is the slot a
        ``replication=1`` ring would choose, and failover walks the list
        left to right.  Depends only on the slot-id set — never on
        transports or liveness — so every router places every key
        identically, forever.
        """
        position = bisect_right(
            self._hashes, int.from_bytes(digest[:8], "big")
        )
        chosen: list[int] = []
        for step in range(len(self._hashes)):
            shard_id = self._shard_ids[(position + step) % len(self._hashes)]
            if shard_id not in chosen:
                chosen.append(shard_id)
                if len(chosen) == count:
                    break
        return chosen


def _shard_main(connection, payload: dict) -> None:
    """The shard process body: one service replica, a small message loop.

    Messages are ``("solve", request_id, query_tuple, options, epoch)``,
    ``("mutate", request_id, delta)``, ``("stats", request_id)`` and
    ``("stop",)``.  Every request gets exactly one
    ``(request_id, status, value)`` reply in receipt order, so the router
    can account for replies per shard.  Worker faults are caught and
    shipped back as values — a poisoned query must fail that request, not
    the shard.

    Epoch discipline: a sweep dispatched at one graph version must never
    be answered from another.  The request carries the router's epoch and
    is refused (a :class:`ShardLinkError` value — the link is stale, not
    the query poisoned) when it does not match this replica's; the reply
    re-stamps the serving epoch so the router can verify on receipt too.
    """
    service = service_from_payload(payload)
    try:
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "solve":
                _, request_id, query_tuple, options, epoch = message
                try:
                    if epoch is not None and epoch != service.epoch:
                        raise ShardLinkError(
                            f"sweep dispatched at epoch {epoch} but this "
                            f"replica serves epoch {service.epoch}"
                        )
                    reply = (
                        request_id,
                        "ok",
                        (service.epoch, service.sweep(query_tuple, options)),
                    )
                except Exception as exc:
                    reply = (request_id, "error", exc)
                connection.send(reply)
            elif kind == "mutate":
                _, request_id, delta = message
                try:
                    reply = (request_id, "ok", service.apply_delta(delta))
                except Exception as exc:
                    reply = (request_id, "error", exc)
                connection.send(reply)
            elif kind == "stats":
                connection.send((message[1], "ok", service.stats()))
            elif kind == "stop":
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # router went away; nothing left to serve
    finally:
        connection.close()


class _PipeShardTransport:
    """Pipe-backed :class:`ShardTransport`: one local worker process.

    The original (PR 3) shard shape: the router spawns a persistent
    process running :func:`_shard_main` over a duplex pipe and owns its
    whole lifecycle — :meth:`stop` terminates the worker, and
    :meth:`reconnect` (the self-healing path) respawns a fresh, cold
    one from the same payload.
    """

    kind = "pipe"

    def __init__(self, shard_id: int, payload: dict, ctx) -> None:
        self.shard_id = shard_id
        self._payload = payload
        self._ctx = ctx
        self._spawn()

    def _spawn(self) -> None:
        self.connection, child_end = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_shard_main,
            args=(child_end, self._payload),
            name=f"connector-shard-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_end.close()  # the child owns its end now

    def update_payload(self, payload: dict) -> None:
        """Rebase future respawns onto a new graph version.

        The self-healing path (:meth:`reconnect`) spawns cold workers
        from the stored payload; after a delta the router swaps in the
        current-epoch payload so a revived slot rejoins at the graph
        version the ring is serving, never a stale one.
        """
        self._payload = payload

    def submit(
        self,
        request_id: int,
        query_tuple: tuple,
        options: SolveOptions,
        epoch: int | None = None,
    ) -> None:
        self.connection.send(("solve", request_id, query_tuple, options, epoch))

    def submit_mutate(self, request_id: int, delta) -> None:
        self.connection.send(("mutate", request_id, delta))

    def submit_stats(self, request_id: int) -> None:
        self.connection.send(("stats", request_id))

    def drain(self) -> list[tuple[int, str, object]]:
        replies = []
        while self.connection.poll(0):
            replies.append(self.connection.recv())
        return replies

    @property
    def waitable(self):
        return self.connection

    def probe(self, timeout: float) -> bool:
        """A live worker process is a live pipe shard.

        The pipe has no out-of-band channel, so liveness is the OS's
        word on the process.  A worker stuck in a long sweep is alive
        (and genuinely working); a crashed or OOM-killed one is not.
        """
        return self.process.is_alive()

    def reconnect(self) -> None:
        """Respawn the worker process (cold caches, same payload)."""
        self.stop()
        self._spawn()

    def is_suspect(self) -> bool:
        """A worker that died between batches is flagged before scatter."""
        return not self.process.is_alive()

    def clear_suspect(self) -> None:
        """No sticky flag to clear — suspicion *is* process death."""

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass  # already dead; join below still reaps it
        self.connection.close()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive reaping
            self.process.terminate()
            self.process.join()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(shard={self.shard_id}, pid={self.process.pid})"


#: Backwards-compatible private alias (pre-transport name).
_Shard = _PipeShardTransport


class _InflightRequest:
    """One scattered request: its key, payload, and current placement."""

    __slots__ = ("request_id", "key", "query_tuple", "options", "replicas",
                 "shard", "transport_kind", "kind")

    def __init__(self, request_id, key, query_tuple, options, replicas,
                 kind="sweep") -> None:
        self.request_id = request_id
        self.key = key
        self.query_tuple = query_tuple
        self.options = options
        self.replicas = replicas  # primary order; failover walks this
        self.shard = None  # the slot currently serving it
        self.transport_kind = None
        self.kind = kind  # "sweep" | "stats"


class _BatchState:
    """The mutable bookkeeping of one scatter/gather cycle."""

    __slots__ = ("pending", "inflight", "outcomes", "failures", "activity")

    def __init__(self) -> None:
        self.pending: dict[int, int] = {}  # shard id -> in-flight count
        self.inflight: dict[int, _InflightRequest] = {}  # request id -> record
        self.outcomes: dict[int, object] = {}
        self.failures: dict[int, Exception] = {}
        self.activity: dict[int, float] = {}  # shard id -> last traffic


class _DownShard:
    """A slot out of service: its stopped transport and revival timer."""

    __slots__ = ("transport", "schedule")

    def __init__(self, transport, schedule: RetrySchedule) -> None:
        self.transport = transport
        self.schedule = schedule


@dataclass(frozen=True)
class ShardedStats:
    """Router counters plus one :class:`ServiceStats` snapshot per live shard.

    ``router_local`` is the router-side fallback service that answers
    what shard replicas cannot (non-``ws-q`` methods, per-call
    ``backend="dict"`` overrides on CSR-seeded shards); its cache traffic
    counts toward the aggregate hit numbers below so a baseline-method
    workload does not read as "never warm" just because it is sharded.

    The health surface: ``dead_shards`` lists the slots currently out of
    service (their snapshots are necessarily absent from ``shards``),
    ``shards_failed`` counts every time a slot was declared dead over
    the router's lifetime, ``failovers`` counts in-flight sweeps that
    were re-dispatched onto a surviving replica, and ``reconnects``
    counts successful revivals.  A deployment is *degraded* — serving,
    but with less redundancy than configured — whenever ``dead_shards``
    is non-empty.

    With remote shards in the ring, a shard's snapshot covers the
    *daemon's* lifetime — which may predate this router connecting.
    """

    n_shards: int
    requests_routed: int
    inflight_deduped: int
    shards: tuple[ServiceStats, ...]
    router_local: ServiceStats | None = None
    transports: tuple[str, ...] = ()
    replication: int = 1
    failovers: int = 0
    shards_failed: int = 0
    reconnects: int = 0
    dead_shards: tuple[int, ...] = ()
    #: The graph version the whole ring serves (every live replica is
    #: held at this epoch; a disagreeing reply is a ShardLinkError).
    epoch: int = 0

    @property
    def degraded(self) -> bool:
        """Serving with at least one replica slot out of service."""
        return bool(self.dead_shards)

    @property
    def _snapshots(self) -> tuple[ServiceStats, ...]:
        if self.router_local is None:
            return self.shards
        return self.shards + (self.router_local,)

    @property
    def queries_served(self) -> int:
        """Total requests served: shard sweeps plus router-local solves."""
        return sum(stats.queries_served for stats in self._snapshots)

    @property
    def result_hits(self) -> int:
        """Warm result-cache hits: every shard plus the router fallback."""
        return sum(stats.result_hits for stats in self._snapshots)

    @property
    def pairs_pruned(self) -> int:
        """Certified-pruned ``(root, λ)`` sweep pairs across the deployment."""
        return sum(stats.pairs_pruned for stats in self._snapshots)

    @property
    def pairs_scored(self) -> int:
        """Fully scored ``(root, λ)`` sweep pairs across the deployment."""
        return sum(stats.pairs_scored for stats in self._snapshots)

    @property
    def prune_rate(self) -> float:
        """Aggregate fraction of sweep pairs pruned (``0.0`` before any sweep)."""
        total = self.pairs_pruned + self.pairs_scored
        return self.pairs_pruned / total if total else 0.0

    @property
    def landmark_rebuilds(self) -> int:
        """Eager landmark-index rebuilds across every replica."""
        return sum(stats.landmark_rebuilds for stats in self._snapshots)

    def hit_rate(self, layer: str = "result") -> float:
        """Aggregate cache hit rate of one layer across the deployment.

        Same contract as :meth:`ServiceStats.hit_rate` (``"result"``,
        ``"candidate"`` or ``"score"``; ``0.0`` before any lookup), summed
        over the shard snapshots and the router-local fallback service.
        """
        return cache_hit_rate(self._snapshots, layer)


class ShardedConnectorService:
    """Route Min-Wiener-Connector queries across persistent shard replicas.

    Parameters
    ----------
    graph:
        The host graph; the router keeps it for validation and result
        construction while shards receive only the payload arrays (or,
        for remote shards, nothing — the daemon loaded its own copy,
        checked against ours by digest at connect time).  May be ``None``
        when ``csr`` is given: the router then runs graph-less on the
        bare arrays (the stream-constructed million-node path), serving
        ``ws-q`` with results whose hosts are induced from the CSR.
    csr:
        A :class:`~repro.graphs.csr.CSRGraph` backing a graph-less
        router; ignored when ``graph`` is given.
    options:
        Default :class:`SolveOptions`, overridable per call (the pair is
        the routing key, so the same query under different options may
        live on different shards — by design, results are keyed the same
        way).
    n_shards:
        Local shard-process count; defaults to ``min(4, cpu_count)``.
        Mutually exclusive with ``shards``.
    shards:
        Explicit shard specs, one per ring slot: ``"local"`` spawns a
        pipe-backed worker process, ``"host:port"`` connects to a
        ``repro shard-host`` daemon (see :mod:`repro.serving.remote`).
        Mixed rings are fine; ring placement depends only on the slot
        count, so ``shards=["local", "local"]`` and two remote hosts
        route identically.
    replication:
        How many distinct replicas serve each key range (default 1 —
        exactly the pre-replication behavior, including
        close-on-death).  With ``replication=R >= 2`` each key's sweeps
        can be served by any of its R ring replicas, a dead replica
        fails over instead of failing the batch, and the batch fails
        only when a key range has zero live replicas.  Must not exceed
        the slot count at construction (a later shrink caps it
        implicitly).
    liveness_deadline:
        Seconds of mid-batch silence from a shard with in-flight sweeps
        before the router *probes* it (``None`` disables probing and
        waits forever, the pre-heartbeat behavior).  A probe that
        answers resets the clock — a long sweep is not a dead shard; a
        probe that does not marks the replica dead.  This replaces the
        ~60s TCP-keepalive bound on silent partitions with a
        configurable one.
    probe_timeout:
        Seconds a liveness/suspect-confirmation probe waits.
    heartbeat_interval:
        Forwarded to remote transports: idle links are pinged this often
        by a background monitor and marked suspect on a miss, so the
        router learns of a dead daemon *before* a batch touches it.
        ``None`` disables idle heartbeats.
    backoff:
        The :class:`~repro.core.retry.BackoffPolicy` pacing revival
        attempts of down slots (default: 0.5s doubling to 30s, 20%
        jitter).
    max_cached_roots / max_cached_candidates / max_cached_scores /
    max_cached_results:
        Forwarded to every *local* shard replica, bounding per-shard
        memory (a remote daemon's bounds were fixed by whoever started
        it).
    landmarks:
        When set, the router-local service *and* every local shard
        replica build a shared :class:`~repro.graphs.landmarks.LandmarkIndex`
        with this many landmarks, and rebuild it eagerly at
        delta-apply time so post-mutate sweeps never pay the rebuild.
    mp_context:
        An explicit :mod:`multiprocessing` context (tests pin ``"fork"``
        where available; the default context works everywhere).
    """

    #: Most requests a shard may have in flight before the router drains
    #: its replies.  Bounds both directions of every pipe/socket far below
    #: the OS buffer size, so arbitrarily large batches scatter without
    #: deadlock.  Failover may briefly overshoot this by the dead
    #: replica's re-dispatched sweeps (at most one extra cap's worth) —
    #: still far inside the buffer headroom the cap was sized for.
    MAX_INFLIGHT_PER_SHARD = 16

    def __init__(
        self,
        graph: Graph | None = None,
        options: SolveOptions | None = None,
        *,
        csr=None,
        n_shards: int | None = None,
        shards: Sequence[str] | None = None,
        replication: int = 1,
        liveness_deadline: float | None = 30.0,
        probe_timeout: float = 5.0,
        heartbeat_interval: float | None = 15.0,
        backoff: BackoffPolicy | None = None,
        max_cached_roots: int | None = 512,
        max_cached_candidates: int | None = 4096,
        max_cached_scores: int | None = 4096,
        max_cached_results: int | None = 1024,
        landmarks: int | None = None,
        mp_context=None,
    ) -> None:
        if shards is not None:
            if n_shards is not None:
                raise ValueError("pass n_shards or shards, not both")
            specs = [normalize_shard_spec(spec) for spec in shards]
            if not specs:
                raise ValueError("shards must name at least one shard")
        else:
            if n_shards is None:
                n_shards = min(4, os.cpu_count() or 1)
            if n_shards < 1:
                raise ValueError(f"n_shards must be at least 1, got {n_shards}")
            specs = ["local"] * n_shards
        if replication < 1:
            raise ValueError(
                f"replication must be at least 1, got {replication}"
            )
        if replication > len(specs):
            raise ValueError(
                f"replication={replication} needs at least that many shard "
                f"slots, got {len(specs)}"
            )
        if liveness_deadline is not None and liveness_deadline <= 0:
            raise ValueError(
                f"liveness_deadline must be positive or None, "
                f"got {liveness_deadline}"
            )
        self._replication = replication
        self._liveness_deadline = liveness_deadline
        self._probe_timeout = probe_timeout
        self._heartbeat_interval = heartbeat_interval
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        # The router-side service: validation, payload construction, result
        # building, and the local fallback for non-"ws-q" methods.  Its own
        # solve caches see no sharded traffic.
        self._local = ConnectorService(
            graph,
            options,
            csr=csr,
            max_cached_roots=max_cached_roots,
            max_cached_candidates=max_cached_candidates,
            max_cached_scores=max_cached_scores,
            max_cached_results=max_cached_results,
            landmarks=landmarks,
        )
        # Kept so apply_delta can rebuild the payload at the new epoch
        # (revived pipe slots respawn from it and must not be stale).
        # ``landmarks`` rides along the same channel: replicas built from
        # the payload own their own landmark index and rebuild it eagerly
        # at delta-apply time, off the query path.
        self._cache_limits = {
            "max_cached_roots": max_cached_roots,
            "max_cached_candidates": max_cached_candidates,
            "max_cached_scores": max_cached_scores,
            "max_cached_results": max_cached_results,
        }
        if landmarks is not None:
            self._cache_limits["landmarks"] = landmarks
        self._payload = self._local.worker_payload(
            cache_limits=self._cache_limits
        )
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._specs: dict[int, object] = {}
        self._shards: dict[int, ShardTransport] = {}
        self._down: dict[int, _DownShard] = {}
        self._ring: _HashRing | None = None
        self._next_request_id = 0
        self._requests_routed = 0
        self._inflight_deduped = 0
        self._failovers = 0
        self._shards_failed = 0
        self._reconnects = 0
        self._closed = False
        try:
            for shard_id, spec in enumerate(specs):
                self._shards[shard_id] = self._make_transport(shard_id, spec)
                self._specs[shard_id] = spec
        except BaseException:
            # A refused remote handshake (or connect failure) mid-build
            # must not leak the shards already spawned.
            self.close()
            raise
        self._ring = _HashRing(sorted(self._specs))

    def _make_transport(self, shard_id: int, spec) -> ShardTransport:
        if spec == "local":
            return _PipeShardTransport(shard_id, self._payload, self._ctx)
        host, port = spec
        # Imported lazily: the serving layer depends on core, so core only
        # reaches back when a remote shard is actually requested.
        from repro.serving.remote import RemoteShardTransport

        # Version state goes in as *providers*, not snapshots: a revival
        # after a delta must handshake at the epoch the ring serves now,
        # and offer the daemon the catch-up deltas it missed while down.
        return RemoteShardTransport(
            shard_id,
            host,
            port,
            digest=self._local.index_digest,
            epoch=lambda: self._local.epoch,
            catchup=self._local.deltas_since,
            heartbeat_interval=self._heartbeat_interval,
            probe_timeout=self._probe_timeout,
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._local.graph

    @property
    def options(self) -> SolveOptions:
        return self._local.options

    @property
    def n_shards(self) -> int:
        """Total ring slots, live or down (the ring never shrinks on death)."""
        return len(self._specs)

    @property
    def replication(self) -> int:
        return self._replication

    @property
    def dead_shards(self) -> tuple[int, ...]:
        """The slots currently out of service, awaiting revival."""
        return tuple(sorted(self._down))

    @property
    def transports(self) -> tuple[str, ...]:
        """The transport kind of each ring slot (``"pipe"``/``"socket"``)."""
        return tuple(
            (self._shards[shard_id] if shard_id in self._shards
             else self._down[shard_id].transport).kind
            for shard_id in sorted(self._specs)
        )

    @property
    def payload_kind(self) -> str:
        """``"csr"`` (bare int arrays) or ``"graph"`` (no-numpy fallback)."""
        return self._payload["kind"]

    def resize(self, shards: int | Sequence[str]) -> None:
        """Grow, shrink, or roll the shard topology and rebuild the ring.

        Legal between batches only (the synchronous router never holds
        in-flight requests across calls).  With a *count*: growing
        spawns fresh, cold *local* shards; shrinking stops the
        highest-numbered slots (terminating local workers, merely
        disconnecting remote daemons).  With a *spec list*: the list is
        diffed against the current topology slot by slot — unchanged
        slots keep their live transports and warm caches, changed slots
        are replaced in place (the rolling-upgrade path), extra specs
        grow the ring, missing ones shrink it.  Resizing to the current
        topology is a true no-op — the ring, the transports, and every
        warm cache are left untouched.  Retained shards keep their warm
        caches, and consistent hashing keeps ``~(n-1)/n`` of the key
        space pinned to them.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError(f"n_shards must be at least 1, got {shards}")
            current = [self._specs[i] for i in sorted(self._specs)]
            if shards <= len(current):
                specs = current[:shards]
            else:
                specs = current + ["local"] * (shards - len(current))
        else:
            specs = [normalize_shard_spec(spec) for spec in shards]
            if not specs:
                raise ValueError("shards must name at least one shard")
        old_count = len(self._specs)
        # Replace slots whose spec changed (keep matching ones untouched).
        for shard_id in range(min(old_count, len(specs))):
            if specs[shard_id] != self._specs[shard_id]:
                self.replace_shard(shard_id, specs[shard_id])
        created: list[int] = []
        try:
            for shard_id in range(old_count, len(specs)):
                self._shards[shard_id] = self._make_transport(
                    shard_id, specs[shard_id]
                )
                self._specs[shard_id] = specs[shard_id]
                created.append(shard_id)
        except BaseException:
            for shard_id in created:  # pragma: no cover - spawn failure
                self._shards.pop(shard_id).stop()
                self._specs.pop(shard_id)
            raise
        for shard_id in range(len(specs), old_count):
            self._specs.pop(shard_id)
            down = self._down.pop(shard_id, None)
            transport = self._shards.pop(shard_id, None)
            if transport is None and down is not None:
                transport = down.transport
            if transport is not None:
                transport.stop()
        if len(specs) != old_count:
            self._ring = _HashRing(sorted(self._specs))

    def replace_shard(self, shard_id: int, spec) -> None:
        """Swap one slot's transport for a new spec, ring untouched.

        The rolling-upgrade primitive: the replacement is built (and,
        for a remote spec, connected and digest-handshaken) *before* the
        old transport is stopped, so a failed replacement leaves the old
        shard serving.  The slot keeps its exact ring position — with
        ``replication>=2`` the other replicas of each key range cover
        the swap window, so a deployment upgrades hosts one slot at a
        time with zero downtime.  A currently-down slot may be replaced
        too (pointing it at a fresh host is the operator's fast path
        around the backoff timer).
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if shard_id not in self._specs:
            raise ValueError(
                f"no shard slot {shard_id}; slots are {sorted(self._specs)}"
            )
        normalized = normalize_shard_spec(spec)
        replacement = self._make_transport(shard_id, normalized)
        down = self._down.pop(shard_id, None)
        old = self._shards.pop(shard_id, None)
        if old is None and down is not None:
            old = down.transport
        if old is not None:
            try:
                old.stop()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self._shards[shard_id] = replacement
        self._specs[shard_id] = normalized

    def shard_of(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> int:
        """The preferred shard of this ``(query, options)`` key (introspection).

        Pure placement — liveness is ignored, so the answer is stable
        across failures and heals.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        opts = self._local._merge(options)
        return self._route(request_digest(frozenset(query), opts))[0]

    def _route(self, digest: bytes) -> list[int]:
        """The key's replica list, preferred-first.

        The ring's clockwise walk gives the deterministic primary order;
        with ``replication>=2`` the list is then *rotated* by a digest
        byte so distinct keys sharing a replica group spread their
        preferred reads across it (hot-range fan-out) while every repeat
        of one key keeps hitting the same replica (cache affinity).
        Failover walks the rotated list left to right.
        """
        count = min(self._replication, len(self._specs))
        replicas = self._ring.replicas(digest, count)
        if len(replicas) > 1:
            offset = digest[8] % len(replicas)
            replicas = replicas[offset:] + replicas[:offset]
        return replicas

    # ------------------------------------------------------------------
    # Health: failure, failover, healing
    # ------------------------------------------------------------------
    def _shard_down(
        self, shard_id: int, state: _BatchState, *, mid_batch: bool
    ) -> None:
        """Take a failed slot out of service; fail over or fail the batch.

        With ``replication=1`` this is the historical close-on-death:
        a half-served batch cannot be completed and leaves replies
        queued in the surviving links, so the service closes with one
        clear error.  With ``replication>=2`` the slot moves to the
        down set (revival scheduled under the backoff policy) and its
        in-flight sweeps re-dispatch onto each key's next surviving
        replica; only a key range with zero live replicas still fails
        the batch.
        """
        if shard_id not in self._shards:
            return  # already handled by an earlier failure this batch
        if self._replication == 1:
            self.close()
            raise ServiceClosedError(
                f"shard {shard_id} died{' mid-batch' if mid_batch else ''}; "
                "the sharded service was closed and must be rebuilt"
            ) from None
        transport = self._shards.pop(shard_id)
        try:
            transport.stop()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._down[shard_id] = _DownShard(
            transport,
            RetrySchedule(self._backoff, seed=shard_id, initial_delay=True),
        )
        self._shards_failed += 1
        state.pending.pop(shard_id, None)
        state.activity.pop(shard_id, None)
        orphans = [
            record for record in state.inflight.values()
            if record.shard == shard_id
        ]
        for record in orphans:
            del state.inflight[record.request_id]
            if record.kind != "sweep":
                # A snapshot of a dead replica is meaningless; a mutate
                # needs no failover either — the slot picks the delta up
                # on revival (refreshed pipe payload / catch-up handshake).
                continue
            self._failovers += 1
            self._dispatch(record, state)

    def _preferred_live(self, record: _InflightRequest) -> int:
        """The first live replica of the record's primary order.

        When every replica of the key range is down, each gets one
        last-resort revival attempt (ignoring its backoff timer — the
        alternative is failing the batch, so a wasted probe is cheap).
        Only when that too comes up empty does the batch fail: the
        ``replication>=2`` contract is *zero live replicas*, not *one
        dead one*.
        """
        for shard_id in record.replicas:
            if shard_id in self._shards:
                return shard_id
        for shard_id in record.replicas:
            if self._revive(shard_id):
                return shard_id
        self.close()
        raise ServiceClosedError(
            f"no live replicas for a key range (slots {record.replicas} are "
            "all down); the sharded service was closed and must be rebuilt"
        )

    def _dispatch(self, record: _InflightRequest, state: _BatchState) -> None:
        """Submit one sweep to its first live replica, failing over on death."""
        while True:
            shard_id = self._preferred_live(record)
            transport = self._shards[shard_id]
            try:
                transport.submit(
                    record.request_id,
                    record.query_tuple,
                    record.options,
                    self._local.epoch,
                )
            except _TRANSPORT_FAILURES:
                self._shard_down(shard_id, state, mid_batch=False)
                continue  # walk to the key's next replica
            record.shard = shard_id
            record.transport_kind = transport.kind
            state.inflight[record.request_id] = record
            state.pending[shard_id] = state.pending.get(shard_id, 0) + 1
            state.activity[shard_id] = time.monotonic()
            return

    def _revive(self, shard_id: int) -> bool:
        """One revival attempt of a down slot; True when it rejoined."""
        down = self._down.get(shard_id)
        if down is None:
            return shard_id in self._shards
        try:
            down.transport.reconnect()
        except Exception:
            down.schedule.record_failure()
            return False
        self._shards[shard_id] = down.transport
        del self._down[shard_id]
        self._reconnects += 1
        return True

    def _probe_shard(self, transport: ShardTransport) -> bool:
        try:
            return transport.probe(self._probe_timeout)
        except Exception:  # pragma: no cover - probe must never raise
            return False

    def _heal(self) -> None:
        """The batch-boundary health pass: revive the due, confirm suspects.

        Runs before every scatter so a batch starts from the healthiest
        ring the backoff timers allow, and so replicas flagged by the
        idle heartbeat monitors are confirmed (one probe) and taken out
        of service *before* sweeps are routed at them.
        """
        now = time.monotonic()
        for shard_id in sorted(self._down):
            if self._down[shard_id].schedule.due(now):
                self._revive(shard_id)
        for shard_id in sorted(self._shards):
            transport = self._shards[shard_id]
            if not transport.is_suspect():
                continue
            if self._probe_shard(transport):
                transport.clear_suspect()
            else:
                self._shard_down(shard_id, _BatchState(), mid_batch=False)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def solve(
        self, query: Iterable[Node], options: SolveOptions | None = None
    ) -> ConnectorResult:
        """Solve one query on its home shard."""
        return self.solve_many([query], options)[0]

    def solve_many(
        self,
        queries: Iterable[Iterable[Node]],
        options: SolveOptions | None = None,
    ) -> list[ConnectorResult]:
        """Solve a batch across the shards; results come back in input order.

        Distinct keys are scattered to their home shards and solved
        concurrently; identical in-flight keys are sent once and every
        duplicate position receives the same result object.  Requests the
        shard replicas cannot serve — non-``ws-q`` methods and, on
        CSR-seeded shards, a per-call ``backend="dict"`` override, both of
        which need the host graph — fall back to the router's local
        service with the same answers.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        opts = self._local._merge(options)
        query_sets = [frozenset(query) for query in queries]
        if opts.method != "ws-q" or (
            opts.backend == "dict" and self._payload["kind"] == "csr"
        ):
            return [self._local.solve(query_set, opts) for query_set in query_sets]
        for query_set in query_sets:
            self._local._validate(query_set)
        self._heal()

        # Dedupe identical in-flight keys and scatter one request each.
        # Draining is interleaved with scattering: a pipe or socket buffers
        # only a bounded number of bytes per direction, so a router that
        # sent a whole large batch before reading any reply would deadlock
        # against a shard blocked on sending its replies.  The per-shard
        # in-flight cap keeps both directions of every link comfortably
        # under the buffer size.
        state = _BatchState()
        routed: dict[frozenset, _InflightRequest] = {}
        for query_set in query_sets:
            if query_set in routed:
                self._inflight_deduped += 1
                continue
            record = _InflightRequest(
                request_id=self._take_request_id(),
                key=query_set,
                query_tuple=tuple(sorted(query_set, key=repr)),
                options=opts,
                replicas=self._route(request_digest(query_set, opts)),
            )
            target = self._preferred_live(record)
            if state.pending.get(target, 0) >= self.MAX_INFLIGHT_PER_SHARD:
                self._gather(state, below_cap=target)
            self._dispatch(record, state)
            routed[query_set] = record
            self._requests_routed += 1
        self._gather(state)

        if state.failures:
            # Fail the batch with the error of the *earliest* failed request
            # (deterministic regardless of which shard replied first).
            raise state.failures[min(state.failures)]
        results: dict[frozenset, ConnectorResult] = {}
        for query_set, record in routed.items():
            results[query_set] = self._local._to_result(
                query_set,
                state.outcomes[record.request_id],
                extra={
                    "sharded": True,
                    "shard": record.shard,
                    "shards": self.n_shards,
                    "transport": record.transport_kind,
                },
            )
        return [results[query_set] for query_set in query_sets]

    def _take_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _gather(self, state: _BatchState, *, below_cap: int | None = None) -> None:
        """Receive shard replies into ``state.outcomes`` / ``state.failures``.

        With ``below_cap=shard_id``, stops as soon as that shard is back
        under :data:`MAX_INFLIGHT_PER_SHARD` (the mid-scatter drain);
        otherwise runs until every link is empty, even when some replies
        carry errors — the next batch must find the transports drained.
        Uses :func:`multiprocessing.connection.wait` over the transports'
        waitables so a slow shard never blocks draining the others.

        Liveness: with a configured ``liveness_deadline``, the wait ticks
        instead of blocking forever; a shard silent past the deadline is
        probed, and only an *unreachable* one is declared dead (a probe
        that answers resets the shard's clock — long sweeps are work,
        not death).  Death here routes through the same
        :meth:`_shard_down` failover path as an explicit transport error.
        """
        while state.pending:
            if (
                below_cap is not None
                and state.pending.get(below_cap, 0) < self.MAX_INFLIGHT_PER_SHARD
            ):
                return
            progressed = False
            for shard_id in list(state.pending):
                transport = self._shards.get(shard_id)
                if transport is None:
                    # Went down (and failed over) earlier in this pass.
                    state.pending.pop(shard_id, None)
                    continue
                try:
                    replies = transport.drain()
                except _TRANSPORT_FAILURES:
                    self._shard_down(shard_id, state, mid_batch=True)
                    progressed = True
                    continue
                for request_id, status, value in replies:
                    record = state.inflight.pop(request_id, None)
                    if record is None:
                        continue  # defensive: a reply for a failed-over id
                    if status == "ok" and record.kind == "sweep":
                        # Sweep replies arrive epoch-stamped.  The router
                        # is synchronous, so its epoch cannot have moved
                        # since dispatch — a mismatch means the replica
                        # answered from another graph version, and that
                        # must surface as a typed error, never a silently
                        # stale connector.
                        reply_epoch, payload = value
                        if reply_epoch != self._local.epoch:
                            state.failures[request_id] = ShardLinkError(
                                f"shard {shard_id} answered a sweep at "
                                f"epoch {reply_epoch}; the router is at "
                                f"epoch {self._local.epoch}"
                            )
                        else:
                            state.outcomes[request_id] = payload
                    elif status == "ok":
                        state.outcomes[request_id] = value
                    else:
                        state.failures[request_id] = value
                    state.pending[shard_id] -= 1
                    state.activity[shard_id] = time.monotonic()
                    progressed = True
                if not state.pending.get(shard_id, 1):
                    del state.pending[shard_id]
            if progressed or not state.pending:
                continue
            by_waitable = {
                self._shards[shard_id].waitable: shard_id
                for shard_id in state.pending
            }
            if self._liveness_deadline is None:
                mp_connection.wait(list(by_waitable))
                continue
            tick = min(1.0, self._liveness_deadline / 4)
            ready = mp_connection.wait(list(by_waitable), tick)
            if ready:
                continue
            now = time.monotonic()
            for shard_id in list(state.pending):
                silent = now - state.activity.get(shard_id, now)
                if silent < self._liveness_deadline:
                    continue
                if self._probe_shard(self._shards[shard_id]):
                    state.activity[shard_id] = now  # alive, just slow
                else:
                    self._shard_down(shard_id, state, mid_batch=True)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The graph version the ring serves (the router's local epoch)."""
        return self._local.epoch

    def index_digest(self) -> str:
        """The current graph version's digest (changes with every delta)."""
        return self._local.index_digest()

    def apply_delta(self, delta) -> int:
        """Advance the whole ring to the next graph version; returns it.

        The two-phase epoch flip.  *Quiesce* is structural: the router is
        synchronous, so at call time no batch is in flight anywhere —
        every previously scattered sweep has been gathered, and every
        future sweep will be dispatched (and epoch-stamped) after the
        flip.  Phase one applies the delta to the router's local service
        (which validates it — an inapplicable delta raises
        :class:`~repro.errors.DeltaError` before any replica is touched)
        and rebuilds the worker payload so revived pipe slots respawn at
        the new version.  Phase two scatters the delta to every *live*
        replica and gathers their new epochs; a replica that answers with
        a different epoch, or fails to apply a delta the router already
        applied, has diverged — a :class:`ShardLinkError`, because a
        version-skewed link is a broken link.

        Down slots are not forgotten: a pipe slot respawns cold from the
        refreshed payload, and a remote slot's reconnect handshake
        negotiates catch-up — the daemon reports the epoch it is stuck
        at, the transport replays ``deltas_since`` that epoch, and only a
        daemon too far behind (or on a diverged graph) stays refused.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        # Heal first so every replica that *can* take the delta live does,
        # instead of burning a cold respawn/catch-up on the next batch.
        self._heal()
        epoch = self._local.apply_delta(delta)
        self._payload = self._local.worker_payload(
            cache_limits=self._cache_limits
        )
        for shard_id in sorted(self._specs):
            transport = (
                self._shards.get(shard_id)
                or self._down[shard_id].transport
            )
            if transport.kind == "pipe":
                transport.update_payload(self._payload)
        state = _BatchState()
        ordered: list[tuple[int, int]] = []  # (shard id, request id)
        for shard_id in sorted(self._shards):
            record = _InflightRequest(
                request_id=self._take_request_id(),
                key=None,
                query_tuple=None,
                options=None,
                replicas=(shard_id,),
                kind="mutate",
            )
            transport = self._shards[shard_id]
            try:
                transport.submit_mutate(record.request_id, delta)
            except _TRANSPORT_FAILURES:
                self._shard_down(shard_id, state, mid_batch=False)
                continue
            record.shard = shard_id
            record.transport_kind = transport.kind
            state.inflight[record.request_id] = record
            state.pending[shard_id] = state.pending.get(shard_id, 0) + 1
            state.activity[shard_id] = time.monotonic()
            ordered.append((shard_id, record.request_id))
        self._gather(state)
        if state.failures:
            first = state.failures[min(state.failures)]
            raise ShardLinkError(
                f"a replica failed to apply the delta for epoch {epoch} "
                f"(it has diverged from the router): {first}"
            ) from first
        for shard_id, request_id in ordered:
            replied = state.outcomes.get(request_id)
            if replied is None:
                # The slot died mid-mutate (moved to the down set by
                # _gather); revival brings it back at the current epoch.
                continue
            if replied != epoch:
                raise ShardLinkError(
                    f"shard {shard_id} applied the delta but reports epoch "
                    f"{replied}; the router is at epoch {epoch}"
                )
        return epoch

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ShardedStats:
        """Router counters plus a live snapshot from every *live* shard.

        Down slots contribute no snapshot (there is nobody to ask) and
        are listed in :attr:`ShardedStats.dead_shards` instead; a shard
        that dies during this very scatter is likewise reported as dead
        rather than failing the call (``replication>=2`` only — with a
        single replica the historical close-on-death applies here too).
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        self._heal()
        state = _BatchState()
        ordered: list[tuple[int, int]] = []  # (shard id, request id)
        for shard_id in sorted(self._shards):
            record = _InflightRequest(
                request_id=self._take_request_id(),
                key=None,
                query_tuple=None,
                options=None,
                replicas=(shard_id,),
                kind="stats",
            )
            transport = self._shards[shard_id]
            try:
                transport.submit_stats(record.request_id)
            except _TRANSPORT_FAILURES:
                self._shard_down(shard_id, state, mid_batch=False)
                continue
            record.shard = shard_id
            record.transport_kind = transport.kind
            state.inflight[record.request_id] = record
            state.pending[shard_id] = state.pending.get(shard_id, 0) + 1
            state.activity[shard_id] = time.monotonic()
            ordered.append((shard_id, record.request_id))
        self._gather(state)
        assert not state.failures  # stats requests cannot fail
        snapshots = tuple(
            state.outcomes[request_id]
            for _, request_id in ordered
            if request_id in state.outcomes
        )
        return ShardedStats(
            n_shards=self.n_shards,
            requests_routed=self._requests_routed,
            inflight_deduped=self._inflight_deduped,
            shards=snapshots,
            router_local=self._local.stats(),
            transports=self.transports,
            replication=self._replication,
            failovers=self._failovers,
            shards_failed=self._shards_failed,
            reconnects=self._reconnects,
            dead_shards=self.dead_shards,
            epoch=self._local.epoch,
        )

    def close(self) -> None:
        """Stop every shard transport, live or down; idempotent.

        Local workers are terminated; remote daemons are only
        disconnected (they are owned by whoever started them and may be
        serving other routers).
        """
        if self._closed:
            return
        self._closed = True
        while self._shards:
            _, shard = self._shards.popitem()
            shard.stop()
        while self._down:
            _, down = self._down.popitem()
            try:
                down.transport.stop()
            except Exception:  # pragma: no cover - already stopped
                pass

    def __enter__(self) -> "ShardedConnectorService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "closed" if self._closed else (
            f"shards={self.n_shards}"
            + (f" (down: {list(self.dead_shards)})" if self._down else "")
        )
        return (
            f"{type(self).__name__}(|V|={self._local.num_nodes}, {state}, "
            f"routed={self._requests_routed})"
        )
