"""The paper's core contribution: the WienerSteiner approximation algorithm,
its objective-function chain, exact algorithms, and Steiner-tree machinery —
plus the serving layers: :class:`ConnectorService` / :class:`SolveOptions`
amortize one graph index across many queries,
:class:`ShardedConnectorService` partitions that cache state across
persistent shard processes behind a consistent-hash router, and
:class:`AsyncGateway` micro-batches concurrently-arriving asyncio
requests into ``solve_many`` windows over either of them.
"""

from repro.core.adjust import ALPHA, adjust_distances, verify_lemma2
from repro.core.exact import (
    brute_force,
    exact_pair,
    exact_pivot,
    optimal_wiener_index,
)
from repro.core.fastpath import CSRWienerSteinerEngine, mehlhorn_steiner_csr
from repro.core.gateway import (
    AsyncGateway,
    GatewayClosedError,
    GatewayOverloadedError,
    GatewayStats,
)
from repro.core.objectives import (
    a_objective,
    b_objective,
    best_rooted_a,
    optimal_lambda,
    verify_lemma1,
    weak_a_objective,
    wiener_of_nodes,
)
from repro.core.options import FunctionMethod, Method, SolveOptions
from repro.core.parallel import parallel_wiener_steiner, sharded_batch
from repro.core.result import ConnectorResult
from repro.core.service import ConnectorService, ServiceStats, SweepOutcome
from repro.core.sharded import ShardedConnectorService, ShardedStats
from repro.core.steiner import (
    mehlhorn_steiner_tree,
    minimum_spanning_tree,
    prune_steiner_leaves,
    steiner_tree_from_voronoi,
    steiner_tree_unweighted,
    tree_total_weight,
    voronoi_dijkstra_canonical,
)
from repro.core.weighted import (
    WeightedConnectorResult,
    weighted_wiener_index,
    wiener_steiner_weighted,
)
from repro.core.wiener_steiner import (
    CSR_AUTO_THRESHOLD,
    EXACT_SCORING_THRESHOLD,
    minimum_wiener_connector,
    wiener_steiner,
)

__all__ = [
    "ALPHA",
    "AsyncGateway",
    "GatewayClosedError",
    "GatewayOverloadedError",
    "GatewayStats",
    "ConnectorService",
    "ShardedConnectorService",
    "ShardedStats",
    "SweepOutcome",
    "FunctionMethod",
    "Method",
    "ServiceStats",
    "SolveOptions",
    "adjust_distances",
    "verify_lemma2",
    "brute_force",
    "exact_pair",
    "exact_pivot",
    "optimal_wiener_index",
    "a_objective",
    "b_objective",
    "best_rooted_a",
    "optimal_lambda",
    "verify_lemma1",
    "weak_a_objective",
    "wiener_of_nodes",
    "ConnectorResult",
    "CSRWienerSteinerEngine",
    "mehlhorn_steiner_csr",
    "mehlhorn_steiner_tree",
    "minimum_spanning_tree",
    "prune_steiner_leaves",
    "steiner_tree_from_voronoi",
    "steiner_tree_unweighted",
    "tree_total_weight",
    "voronoi_dijkstra_canonical",
    "CSR_AUTO_THRESHOLD",
    "EXACT_SCORING_THRESHOLD",
    "minimum_wiener_connector",
    "parallel_wiener_steiner",
    "sharded_batch",
    "wiener_steiner",
    "WeightedConnectorResult",
    "weighted_wiener_index",
    "wiener_steiner_weighted",
]
