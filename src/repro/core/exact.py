"""Exact algorithms for Min Wiener Connector (Section 3).

Three exact strategies, in increasing sophistication:

* ``exact_pair`` — for ``|Q| = 2`` any shortest path between the two
  terminals is optimal on unweighted graphs (Section 3);
* ``brute_force`` — enumerate all vertex subsets containing ``Q`` (with an
  optional candidate restriction), feasible for graphs of a few dozen
  candidate vertices;
* ``exact_pivot`` — the Theorem-3 construction: guess the set of *pivotal*
  vertices (query vertices plus vertices of degree > 2 in the optimum,
  at most ``|Q|⁴`` many) and connect neighbouring pivot pairs with host
  shortest paths.  Exponential in the pivot budget, so we expose the budget
  as a parameter; with budget ``b`` it enumerates all pivot sets of size
  ``≤ b``, which is exact whenever the optimal solution has at most ``b``
  high-degree vertices (always true for ``b ≥ |Q|⁴``, per Lemma 9).

For instances beyond these, use :mod:`repro.solvers.branch_and_bound`,
which is this repo's substitute for the paper's Gurobi runs.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable

from repro.core.result import ConnectorResult
from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.graphs.components import nodes_connect
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances, shortest_path
from repro.graphs.wiener import wiener_index


def exact_pair(graph: Graph, query: Iterable[Node]) -> ConnectorResult:
    """Optimal connector for ``|Q| = 2``: a shortest path between the pair."""
    query_set = frozenset(query)
    if len(query_set) != 2:
        raise InvalidQueryError(f"exact_pair needs |Q| = 2, got {len(query_set)}")
    u, v = sorted(query_set, key=repr)
    path = shortest_path(graph, u, v)
    if path is None:
        raise DisconnectedGraphError(f"{u!r} and {v!r} are not connected")
    return ConnectorResult(
        host=graph, nodes=frozenset(path), query=query_set, method="exact",
        metadata={"strategy": "shortest-path"},
    )


def brute_force(
    graph: Graph,
    query: Iterable[Node],
    candidates: Iterable[Node] | None = None,
    max_candidates: int = 22,
) -> ConnectorResult:
    """Optimal connector by exhaustive enumeration of vertex subsets.

    Parameters
    ----------
    candidates:
        The pool of optional (non-query) vertices to consider; defaults to
        every non-query vertex.  The optimum over ``Q ∪ 2^candidates`` is
        returned, which equals the global optimum whenever ``candidates``
        covers all vertices.
    max_candidates:
        Safety bound — enumeration is ``O(2^k)`` in the pool size.

    Raises
    ------
    InvalidQueryError
        If the candidate pool exceeds ``max_candidates``.
    """
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    if candidates is None:
        pool = [node for node in graph.nodes() if node not in query_set]
    else:
        pool = [node for node in dict.fromkeys(candidates) if node not in query_set]
    if len(pool) > max_candidates:
        raise InvalidQueryError(
            f"brute force over {len(pool)} candidates exceeds the "
            f"max_candidates={max_candidates} safety bound"
        )
    best_nodes: frozenset[Node] | None = None
    best_value = math.inf
    examined = 0
    for size in range(len(pool) + 1):
        for extra in itertools.combinations(pool, size):
            nodes = query_set | frozenset(extra)
            examined += 1
            if not nodes_connect(graph, nodes):
                continue
            value = wiener_index(graph.subgraph(nodes))
            if value < best_value:
                best_value = value
                best_nodes = frozenset(nodes)
    if best_nodes is None:
        raise DisconnectedGraphError(
            "no connected superset of the query exists within the candidate pool"
        )
    return ConnectorResult(
        host=graph, nodes=best_nodes, query=query_set, method="exact",
        metadata={"strategy": "brute-force", "subsets_examined": examined,
                  "optimum": best_value},
    )


def exact_pivot(
    graph: Graph,
    query: Iterable[Node],
    pivot_budget: int = 2,
) -> ConnectorResult:
    """Theorem-3-style exact search over pivot sets of bounded size.

    Enumerates every set ``X`` of at most ``pivot_budget`` non-query
    vertices and forms the pivotal set ``A = Q ∪ X``.  Two candidates are
    scored per pivot set: the induced subgraph ``G[A]`` itself (when
    connected), and the Lemma-7 construction that joins every pivot pair
    with one host-graph shortest path.

    Because ``G[A]`` is scored directly, the search is guaranteed optimal
    whenever the optimal solution contains at most ``pivot_budget``
    non-query vertices; the shortest-path completion additionally covers
    solutions whose extra vertices are mere "pass-through" path vertices
    (Theorem 3's insight).
    """
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    pool = [node for node in graph.nodes() if node not in query_set]
    best_nodes: frozenset[Node] | None = None
    best_value = math.inf

    for size in range(pivot_budget + 1):
        for extra in itertools.combinations(pool, size):
            pivots = list(query_set) + list(extra)
            candidates = [frozenset(pivots), _connect_pivots(graph, pivots)]
            for nodes in candidates:
                if nodes is None or not nodes_connect(graph, nodes):
                    continue
                value = wiener_index(graph.subgraph(nodes))
                if value < best_value:
                    best_value = value
                    best_nodes = nodes

    if best_nodes is None:
        raise DisconnectedGraphError("query vertices cannot be connected")
    return ConnectorResult(
        host=graph, nodes=best_nodes, query=query_set, method="exact",
        metadata={"strategy": "pivot", "pivot_budget": pivot_budget,
                  "optimum": best_value},
    )


def _connect_pivots(graph: Graph, pivots: list[Node]) -> frozenset[Node] | None:
    """Union of one shortest path per pivot pair; None if any pair is separated."""
    nodes: set[Node] = set(pivots)
    for i, u in enumerate(pivots):
        distances = bfs_distances(graph, u)
        for v in pivots[i + 1 :]:
            if v not in distances:
                return None
            path = shortest_path(graph, u, v)
            if path is None:  # pragma: no cover - guarded by distances check
                return None
            nodes.update(path)
    return frozenset(nodes)


def optimal_wiener_index(
    graph: Graph, query: Iterable[Node], max_candidates: int = 22
) -> float:
    """Convenience: the optimal Wiener connector value via brute force."""
    return brute_force(graph, query, max_candidates=max_candidates).wiener_index
