"""Greedy modularity clustering (Clauset–Newman–Moore).

The paper's Twitter case study (§7) clusters the #kdd2014 graph into 10
communities with "the Clauset-Newman-Moore algorithm"; we implement the
same agglomerative scheme: start from singleton communities and repeatedly
merge the pair with the largest modularity gain until no merge improves
modularity (or a target community count is reached).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import GraphError
from repro.graphs.graph import Graph, Node


def modularity(graph: Graph, communities: Iterable[set[Node]]) -> float:
    """Return Newman's modularity ``Q`` of a node partition.

    ``Q = Σ_c [ e_c / m  -  (a_c / 2m)² ]`` where ``e_c`` is the number of
    intra-community edges and ``a_c`` the total degree of community ``c``.
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    membership: dict[Node, int] = {}
    community_list = [set(c) for c in communities]
    for index, community in enumerate(community_list):
        for node in community:
            if node in membership:
                raise GraphError(f"node {node!r} appears in two communities")
            membership[node] = index
    total = 0.0
    for index, community in enumerate(community_list):
        intra = 0
        degree_sum = 0
        for node in community:
            degree_sum += graph.degree(node)
            for neighbor in graph.neighbors(node):
                if membership.get(neighbor) == index:
                    intra += 1
        intra //= 2
        total += intra / m - (degree_sum / (2 * m)) ** 2
    return total


def greedy_modularity_communities(
    graph: Graph, target_count: int | None = None
) -> list[set[Node]]:
    """Cluster ``graph`` by CNM greedy modularity maximization.

    Parameters
    ----------
    target_count:
        If given, keep merging (even through slightly negative gains) until
        at most this many communities remain — the paper's case study fixes
        10 communities.  Otherwise stop at the modularity peak.

    Returns
    -------
    list of node sets, largest first.
    """
    m = graph.num_edges
    nodes = list(graph.nodes())
    if m == 0:
        return [{node} for node in nodes]

    # e[i][j]: fraction of edge endpoints between communities i and j;
    # a[i]: fraction of endpoints landing in community i.
    community_of = {node: index for index, node in enumerate(nodes)}
    members: dict[int, set[Node]] = {index: {node} for index, node in enumerate(nodes)}
    e: dict[int, dict[int, float]] = {index: {} for index in members}
    a: dict[int, float] = {index: 0.0 for index in members}
    half = 1.0 / (2 * m)
    for u, v in graph.edges():
        cu, cv = community_of[u], community_of[v]
        e[cu][cv] = e[cu].get(cv, 0.0) + half
        e[cv][cu] = e[cv].get(cu, 0.0) + half
        a[cu] += half
        a[cv] += half

    def merge_gain(i: int, j: int) -> float:
        return 2 * (e[i].get(j, 0.0) - a[i] * a[j])

    active = set(members)
    while len(active) > 1:
        best_pair: tuple[int, int] | None = None
        best_gain = -float("inf")
        for i in active:
            for j in e[i]:
                if j <= i or j not in active:
                    continue
                gain = merge_gain(i, j)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break
        stop_at_peak = target_count is None and best_gain <= 0
        reached_target = target_count is not None and len(active) <= target_count
        if stop_at_peak or reached_target:
            break
        i, j = best_pair
        # Merge j into i.
        members[i] |= members.pop(j)
        for node in members[i]:
            community_of[node] = i
        for k, weight in e[j].items():
            if k == j:
                continue
            if k == i:
                e[i][i] = e[i].get(i, 0.0) + weight
            else:
                e[i][k] = e[i].get(k, 0.0) + weight
                e[k][i] = e[k].get(i, 0.0) + weight
            e[k].pop(j, None)
        e[i].pop(j, None)
        e.pop(j)
        a[i] += a.pop(j)
        active.discard(j)

    result = [members[index] for index in active]
    result.sort(key=len, reverse=True)
    return result


def membership_map(communities: Iterable[set[Node]]) -> dict[Node, int]:
    """Return ``{node: community index}`` from a community list."""
    mapping: dict[Node, int] = {}
    for index, community in enumerate(communities):
        for node in community:
            mapping[node] = index
    return mapping


def community_of_query(
    membership: Mapping[Node, int], query: Iterable[Node]
) -> set[int]:
    """Return the set of community indices touched by the query vertices."""
    return {membership[q] for q in query}
