"""Asynchronous label propagation — a fast complementary community detector.

Not used by any headline experiment, but handy for sanity-checking the
planted-partition generators (the planted communities should be easy to
recover) and as an alternative to CNM on larger stand-ins.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.graphs.graph import Graph, Node


def label_propagation_communities(
    graph: Graph,
    max_rounds: int = 50,
    rng: random.Random | None = None,
) -> list[set[Node]]:
    """Cluster ``graph`` by asynchronous label propagation.

    Every node starts with its own label; nodes (in random order) adopt the
    majority label among their neighbors, with ties broken randomly.  Stops
    when a full round changes nothing or after ``max_rounds``.

    Returns the communities, largest first.
    """
    rng = rng or random.Random(0)
    labels: dict[Node, int] = {node: index for index, node in enumerate(graph.nodes())}
    nodes = list(graph.nodes())
    for _ in range(max_rounds):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            neighbors = graph.neighbors(node)
            if not neighbors:
                continue
            counts = Counter(labels[neighbor] for neighbor in neighbors)
            top = max(counts.values())
            winners = [label for label, count in counts.items() if count == top]
            new_label = rng.choice(winners)
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    groups: dict[int, set[Node]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    result = list(groups.values())
    result.sort(key=len, reverse=True)
    return result
