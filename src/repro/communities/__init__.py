"""Community detection and ground-truth community substrates."""

from repro.communities.ground_truth import (
    CommunityGraph,
    community_recovery_score,
    make_community_graph,
)
from repro.communities.label_prop import label_propagation_communities
from repro.communities.modularity import (
    community_of_query,
    greedy_modularity_communities,
    membership_map,
    modularity,
)

__all__ = [
    "CommunityGraph",
    "community_recovery_score",
    "make_community_graph",
    "label_propagation_communities",
    "community_of_query",
    "greedy_modularity_communities",
    "membership_map",
    "modularity",
]
