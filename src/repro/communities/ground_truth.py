"""Graphs with planted ground-truth communities.

The paper's §6.4 workloads need graphs where community membership is known
*a priori* (it uses dblp and youtube with published ground truth).  Our
stand-ins are planted-partition graphs wrapped in a small dataclass that
carries the truth alongside the topology.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.graphs.generators import connectify, planted_partition
from repro.graphs.graph import Graph, Node


@dataclass
class CommunityGraph:
    """A graph bundled with its ground-truth communities."""

    name: str
    graph: Graph
    communities: list[set[Node]]
    membership: dict[Node, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.membership:
            for index, community in enumerate(self.communities):
                for node in community:
                    self.membership[node] = index

    def communities_of(self, nodes) -> set[int]:
        """Community indices touched by the given nodes."""
        return {self.membership[node] for node in nodes}

    def large_communities(self, min_size: int = 1) -> list[set[Node]]:
        """Communities with at least ``min_size`` members (paper §6.4 skips
        communities smaller than 100 on the real datasets)."""
        return [c for c in self.communities if len(c) >= min_size]


def make_community_graph(
    name: str,
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> CommunityGraph:
    """Build a connected planted-partition :class:`CommunityGraph`."""
    rng = random.Random(seed)
    graph, communities = planted_partition(community_sizes, p_in, p_out, rng=rng)
    connectify(graph, rng=rng)
    return CommunityGraph(name=name, graph=graph, communities=communities)


def community_recovery_score(
    truth: Sequence[set[Node]], found: Sequence[set[Node]]
) -> float:
    """Fraction of truth communities whose best Jaccard match exceeds 0.5.

    A light-weight recovery metric used in tests to confirm that planted
    structure is actually detectable (i.e. the stand-ins are meaningfully
    modular, as the real dblp/youtube graphs are).
    """
    if not truth:
        return 1.0
    hits = 0
    for t in truth:
        best = 0.0
        for f in found:
            inter = len(t & f)
            union = len(t | f)
            if union:
                best = max(best, inter / union)
        if best > 0.5:
            hits += 1
    return hits / len(truth)
