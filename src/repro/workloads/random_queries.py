"""Random query workloads with controlled size and average distance.

Section 6.1: "the query workloads are made of random query-sets Q, with
controlled size and average distance of the query vertices".  Table 3 fixes
``|Q| = 10`` with average pairwise distance 4; Figure 3 sweeps both knobs.

:func:`query_with_distance` grows a query set greedily: starting from a
random seed vertex, each step adds the vertex whose inclusion brings the
running average pairwise distance closest to the target (ties broken
randomly among near-optimal candidates), retrying from fresh seeds until
the achieved average lands within tolerance.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.errors import InvalidQueryError
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances


def random_query(graph: Graph, size: int, rng: random.Random | None = None) -> list[Node]:
    """Return ``size`` distinct vertices sampled uniformly."""
    if size < 1 or size > graph.num_nodes:
        raise InvalidQueryError(
            f"query size {size} outside [1, {graph.num_nodes}]"
        )
    rng = rng or random.Random()
    return rng.sample(list(graph.nodes()), size)


def component_query(
    graph: Graph, size: int, rng: random.Random | None = None
) -> list[Node]:
    """Return ``size`` distinct vertices from one connected component.

    Sampling uniformly over a disconnected host (power-law generators
    routinely leave stragglers) yields queries no connector can join; the
    scenario harness instead samples inside the largest component that
    can hold the query.  The pool is sorted by ``repr`` so the draw is a
    pure function of the graph and the rng state, independent of
    ``PYTHONHASHSEED``.
    """
    if size < 1 or size > graph.num_nodes:
        raise InvalidQueryError(
            f"query size {size} outside [1, {graph.num_nodes}]"
        )
    eligible = [c for c in connected_components(graph) if len(c) >= size]
    if not eligible:
        raise InvalidQueryError(
            f"no connected component holds {size} vertices"
        )
    component = max(eligible, key=len)  # ties: first-seen order (max is stable)
    rng = rng or random.Random()
    return rng.sample(sorted(component, key=repr), size)


def average_pairwise_distance(graph: Graph, nodes: Iterable[Node]) -> float:
    """Return the mean host-graph distance over pairs of ``nodes``.

    Infinite if some pair is disconnected.
    """
    node_list = list(dict.fromkeys(nodes))
    if len(node_list) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i, u in enumerate(node_list):
        distances = bfs_distances(graph, u)
        for v in node_list[i + 1 :]:
            if v not in distances:
                return float("inf")
            total += distances[v]
            pairs += 1
    return total / pairs


def query_with_distance(
    graph: Graph,
    size: int,
    target_distance: float,
    rng: random.Random | None = None,
    tolerance: float = 0.5,
    attempts: int = 8,
    candidate_sample: int = 400,
) -> list[Node]:
    """Return a query set of the given size whose average pairwise distance
    is as close as possible to ``target_distance``.

    Makes up to ``attempts`` greedy constructions from random seeds and
    returns the first within ``tolerance`` (otherwise the best found).  For
    efficiency each greedy step scores a uniform sample of
    ``candidate_sample`` candidate vertices.
    """
    if size < 1 or size > graph.num_nodes:
        raise InvalidQueryError(f"query size {size} outside [1, {graph.num_nodes}]")
    rng = rng or random.Random()
    if size == 1:
        return random_query(graph, 1, rng)

    nodes = list(graph.nodes())
    best_query: list[Node] | None = None
    best_error = float("inf")
    for _ in range(attempts):
        query = _grow_query(graph, nodes, size, target_distance, rng, candidate_sample)
        if query is None:
            continue
        error = abs(average_pairwise_distance(graph, query) - target_distance)
        if error < best_error:
            best_error = error
            best_query = query
        if error <= tolerance:
            break
    if best_query is None:
        raise InvalidQueryError(
            "could not assemble a connected query set; is the graph connected?"
        )
    return best_query


def _grow_query(
    graph: Graph,
    nodes: list[Node],
    size: int,
    target: float,
    rng: random.Random,
    candidate_sample: int,
) -> list[Node] | None:
    seed = rng.choice(nodes)
    chosen = [seed]
    # Distance maps from every chosen vertex (one BFS per member).
    maps = {seed: bfs_distances(graph, seed)}
    pair_sum = 0.0
    for step in range(1, size):
        pool = rng.sample(nodes, min(candidate_sample, len(nodes)))
        best_node = None
        best_error = float("inf")
        best_extra = 0.0
        num_pairs_after = step * (step + 1) / 2
        for candidate in pool:
            if candidate in maps or candidate in chosen:
                continue
            extra = 0.0
            reachable = True
            for member in chosen:
                d = maps[member].get(candidate)
                if d is None:
                    reachable = False
                    break
                extra += d
            if not reachable:
                continue
            average = (pair_sum + extra) / num_pairs_after
            error = abs(average - target)
            if error < best_error:
                best_error = error
                best_node = candidate
                best_extra = extra
        if best_node is None:
            return None
        chosen.append(best_node)
        maps[best_node] = bfs_distances(graph, best_node)
        pair_sum += best_extra
    return chosen


def workload(
    graph: Graph,
    sizes: Iterable[int],
    queries_per_size: int,
    target_distance: float | None = None,
    seed: int = 0,
) -> list[list[Node]]:
    """Return a full workload: ``queries_per_size`` queries per size.

    With ``target_distance`` set, every query is distance-controlled;
    otherwise queries are uniform samples.
    """
    rng = random.Random(seed)
    queries: list[list[Node]] = []
    for size in sizes:
        for _ in range(queries_per_size):
            if target_distance is None:
                queries.append(random_query(graph, size, rng))
            else:
                queries.append(
                    query_with_distance(graph, size, target_distance, rng)
                )
    return queries
