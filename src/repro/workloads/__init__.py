"""Query workload generators for the experiment harness."""

from repro.workloads.community_queries import (
    PAPER_QUERIES_PER_SIZE,
    PAPER_SIZES,
    community_workload,
    different_communities_query,
    same_community_query,
)
from repro.workloads.random_queries import (
    average_pairwise_distance,
    component_query,
    query_with_distance,
    random_query,
    workload,
)

__all__ = [
    "PAPER_QUERIES_PER_SIZE",
    "PAPER_SIZES",
    "community_workload",
    "different_communities_query",
    "same_community_query",
    "average_pairwise_distance",
    "component_query",
    "query_with_distance",
    "random_query",
    "workload",
]
