"""Deterministic seeding helpers.

Python's built-in ``hash`` is salted per process (PYTHONHASHSEED), so
deriving experiment seeds from ``hash((seed, name, size))`` silently makes
runs irreproducible across processes.  ``stable_seed`` derives a 32-bit
seed from its arguments via SHA-256 instead, so every experiment module
gets the same workload on every run.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: object) -> int:
    """Return a deterministic 32-bit seed derived from ``parts``.

    Parts are rendered with ``repr`` and joined, so any mix of strings,
    numbers and tuples works; equal inputs give equal seeds on every
    platform and process.
    """
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")
