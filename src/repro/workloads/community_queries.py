"""Ground-truth-community workloads (§6.4).

Two workload flavors per community-annotated graph:

* **sc** ("same community") — all query vertices drawn from one randomly
  chosen community, avoiding small communities (the paper skips communities
  below 100 members on dblp/youtube; the threshold scales with our
  stand-ins);
* **dc** ("different communities") — query vertices drawn from pairwise
  distinct communities.

The paper's workloads contain 40 queries each: 10 per size in
{3, 5, 10, 20}.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.communities.ground_truth import CommunityGraph
from repro.errors import InvalidQueryError
from repro.graphs.graph import Node

#: The paper's workload shape.
PAPER_SIZES: tuple[int, ...] = (3, 5, 10, 20)
PAPER_QUERIES_PER_SIZE = 10


def same_community_query(
    data: CommunityGraph,
    size: int,
    rng: random.Random | None = None,
    min_community_size: int | None = None,
) -> list[Node]:
    """Sample a query inside one (sufficiently large) random community."""
    rng = rng or random.Random()
    if min_community_size is None:
        min_community_size = max(size * 3, 20)
    eligible = [c for c in data.communities if len(c) >= min_community_size]
    if not eligible:
        eligible = [c for c in data.communities if len(c) >= size]
    if not eligible:
        raise InvalidQueryError(
            f"no community large enough for a size-{size} query"
        )
    community = rng.choice(eligible)
    return rng.sample(sorted(community, key=repr), size)


def different_communities_query(
    data: CommunityGraph,
    size: int,
    rng: random.Random | None = None,
) -> list[Node]:
    """Sample a query with every vertex in a distinct community."""
    rng = rng or random.Random()
    eligible = [c for c in data.communities if c]
    if len(eligible) < size:
        raise InvalidQueryError(
            f"graph has {len(eligible)} communities; cannot spread a "
            f"size-{size} query across distinct ones"
        )
    chosen = rng.sample(eligible, size)
    return [rng.choice(sorted(community, key=repr)) for community in chosen]


def community_workload(
    data: CommunityGraph,
    flavor: str,
    sizes: Iterable[int] = PAPER_SIZES,
    queries_per_size: int = PAPER_QUERIES_PER_SIZE,
    seed: int = 0,
) -> list[list[Node]]:
    """Build a full sc/dc workload (default: the paper's 40-query shape)."""
    if flavor not in ("sc", "dc"):
        raise InvalidQueryError(f"flavor must be 'sc' or 'dc', got {flavor!r}")
    rng = random.Random(seed)
    sampler = same_community_query if flavor == "sc" else different_communities_query
    queries: list[list[Node]] = []
    for size in sizes:
        for _ in range(queries_per_size):
            queries.append(sampler(data, size, rng))
    return queries
