"""Synthetic stand-ins for the paper's Table-1 datasets.

The original evaluation uses public SNAP/Arenas graphs; with no network
access we generate graphs matching each dataset's published *shape*
(|V|, average degree, and modular vs. heavy-tailed structure), scaled down
where the original exceeds laptop-friendly pure-Python sizes.  Every
experiment compares methods against each other *on the same graph*, so the
findings' shape survives the substitution (see DESIGN.md §3).

Models used per dataset:

* ``pp``  — planted partition (modular structure, carries ground-truth
  communities: football, dblp, youtube);
* ``ba``  — Barabási–Albert preferential attachment (heavy-tailed degree:
  jazz, celegans, email, yeast, oregon, astro, wiki, livejournal, twitter,
  dbpedia).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.communities.ground_truth import CommunityGraph, make_community_graph
from repro.graphs.generators import barabasi_albert, connectify
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one Table-1 stand-in."""

    name: str
    paper_nodes: int
    paper_edges: int
    kind: str  # "pp" or "ba"
    nodes: int  # generated size (scaled when the original is huge)
    parameter: float  # ba: attachment count; pp: p_in
    num_communities: int = 0
    p_out: float = 0.0
    seed: int = 0

    @property
    def scaled(self) -> bool:
        return self.nodes != self.paper_nodes


#: All Table-1 datasets.  Sizes above ~5000 nodes are scaled down; the
#: density regime (average degree) is preserved.
SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("football", 115, 613, "pp", 115, 0.66,
                    num_communities=12, p_out=0.04, seed=11),
        DatasetSpec("jazz", 198, 2742, "ba", 198, 14, seed=12),
        DatasetSpec("celegans", 453, 2025, "ba", 453, 4, seed=13),
        DatasetSpec("email", 1133, 5452, "ba", 1133, 5, seed=14),
        DatasetSpec("yeast", 2224, 6609, "ba", 2224, 3, seed=15),
        DatasetSpec("oregon", 10670, 22002, "ba", 2600, 2, seed=16),
        DatasetSpec("astro", 18772, 198110, "ba", 2400, 11, seed=17),
        DatasetSpec("dblp", 317080, 1049866, "pp", 3600, 0.09,
                    num_communities=60, p_out=0.0003, seed=18),
        DatasetSpec("youtube", 1134890, 2987624, "pp", 4000, 0.055,
                    num_communities=50, p_out=0.0003, seed=19),
        DatasetSpec("wiki", 2394385, 5021410, "ba", 4000, 2, seed=20),
        DatasetSpec("livejournal", 3997962, 34681189, "ba", 4500, 8, seed=21),
        DatasetSpec("twitter", 11316811, 85331846, "ba", 5000, 7, seed=22),
        DatasetSpec("dbpedia", 18268992, 172183984, "ba", 5000, 9, seed=23),
    )
}

#: Datasets carrying ground-truth communities (Table 4 workloads).
GROUND_TRUTH_DATASETS = ("football", "dblp", "youtube")

_cache: dict[str, Graph] = {}
_community_cache: dict[str, CommunityGraph] = {}


def dataset_names() -> list[str]:
    """All stand-in dataset names, in Table-1 order."""
    return list(SPECS)


def load_dataset(name: str, use_cache: bool = True) -> Graph:
    """Generate (or fetch from cache) the stand-in graph for ``name``.

    Generation is deterministic per dataset (fixed seed), so repeated loads
    across processes see the same graph.
    """
    if name not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}")
    if use_cache and name in _cache:
        return _cache[name]
    spec = SPECS[name]
    if spec.kind == "pp":
        graph = load_community_dataset(name, use_cache=use_cache).graph
    else:
        rng = random.Random(spec.seed)
        graph = barabasi_albert(spec.nodes, int(spec.parameter), rng=rng)
        connectify(graph, rng=rng)
    if use_cache:
        _cache[name] = graph
    return graph


def load_community_dataset(name: str, use_cache: bool = True) -> CommunityGraph:
    """Load a stand-in carrying ground-truth communities.

    Raises
    ------
    KeyError
        If ``name`` has no planted community structure.
    """
    if name not in GROUND_TRUTH_DATASETS:
        raise KeyError(
            f"dataset {name!r} has no ground-truth communities; "
            f"use one of {GROUND_TRUTH_DATASETS}"
        )
    if use_cache and name in _community_cache:
        return _community_cache[name]
    spec = SPECS[name]
    sizes = _community_sizes(spec)
    community_graph = make_community_graph(
        name, sizes, p_in=spec.parameter, p_out=spec.p_out, seed=spec.seed
    )
    if use_cache:
        _community_cache[name] = community_graph
        _cache[name] = community_graph.graph
    return community_graph


def _community_sizes(spec: DatasetSpec, spread: float = 0.5) -> list[int]:
    """Split ``spec.nodes`` into ``spec.num_communities`` uneven sizes."""
    rng = random.Random(spec.seed + 1)
    base = spec.nodes // spec.num_communities
    sizes = []
    remaining = spec.nodes
    for index in range(spec.num_communities - 1):
        low = max(3, int(base * (1 - spread)))
        high = int(base * (1 + spread))
        size = min(remaining - 3 * (spec.num_communities - index - 1),
                   rng.randint(low, high))
        sizes.append(max(size, 3))
        remaining -= sizes[-1]
    sizes.append(max(remaining, 3))
    return sizes


def clear_cache() -> None:
    """Drop all cached graphs (tests use this to control memory)."""
    _cache.clear()
    _community_cache.clear()
