"""Datasets: the exact karate club plus deterministic synthetic stand-ins
for every graph in the paper's Table 1 and the §7 case studies."""

from repro.datasets.karate import (
    FIGURE1_QUERY_DIFFERENT_COMMUNITIES,
    FIGURE1_QUERY_SAME_COMMUNITY,
    INSTRUCTOR_FACTION,
    PRESIDENT_FACTION,
    karate_club,
    karate_factions,
)
from repro.datasets.ppi import (
    HUB_GENES,
    QUERY_GENES,
    PPIDataset,
    ppi_network,
)
from repro.datasets.registry import (
    GROUND_TRUTH_DATASETS,
    SPECS,
    DatasetSpec,
    clear_cache,
    dataset_names,
    load_community_dataset,
    load_dataset,
)
from repro.datasets.steinlib import (
    puc_like,
    puc_suite,
    vienna_like,
    vienna_suite,
)
from repro.datasets.twitter import (
    FIGURE7_QUERY_ONE,
    FIGURE7_QUERY_TWO,
    FOLLOWERS,
    NAMED_USERS,
    TwitterDataset,
    kdd_twitter_network,
)

__all__ = [
    "FIGURE1_QUERY_DIFFERENT_COMMUNITIES",
    "FIGURE1_QUERY_SAME_COMMUNITY",
    "INSTRUCTOR_FACTION",
    "PRESIDENT_FACTION",
    "karate_club",
    "karate_factions",
    "GROUND_TRUTH_DATASETS",
    "SPECS",
    "DatasetSpec",
    "clear_cache",
    "dataset_names",
    "load_community_dataset",
    "load_dataset",
    "puc_like",
    "puc_suite",
    "vienna_like",
    "vienna_suite",
    "HUB_GENES",
    "QUERY_GENES",
    "PPIDataset",
    "ppi_network",
    "FIGURE7_QUERY_ONE",
    "FIGURE7_QUERY_TWO",
    "FOLLOWERS",
    "NAMED_USERS",
    "TwitterDataset",
    "kdd_twitter_network",
]
