"""Zachary's karate club — the paper's Figure-1 graph, embedded exactly.

The classic 34-node, 78-edge social network (Zachary 1977) with the known
two-faction ground truth: the club split between the instructor (vertex 1)
and the president (vertex 34).  Vertex ids are 1-based, matching the
paper's figure (``Q = {12, 25, 26, 30}`` on the left, ``{4, 12, 17}`` on
the right).
"""

from __future__ import annotations

from repro.graphs.graph import Graph

#: The 78 undirected edges, 1-based node ids.
KARATE_EDGES: tuple[tuple[int, int], ...] = (
    (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9),
    (1, 11), (1, 12), (1, 13), (1, 14), (1, 18), (1, 20), (1, 22), (1, 32),
    (2, 3), (2, 4), (2, 8), (2, 14), (2, 18), (2, 20), (2, 22), (2, 31),
    (3, 4), (3, 8), (3, 9), (3, 10), (3, 14), (3, 28), (3, 29), (3, 33),
    (4, 8), (4, 13), (4, 14),
    (5, 7), (5, 11),
    (6, 7), (6, 11), (6, 17),
    (7, 17),
    (9, 31), (9, 33), (9, 34),
    (10, 34),
    (14, 34),
    (15, 33), (15, 34),
    (16, 33), (16, 34),
    (19, 33), (19, 34),
    (20, 34),
    (21, 33), (21, 34),
    (23, 33), (23, 34),
    (24, 26), (24, 28), (24, 30), (24, 33), (24, 34),
    (25, 26), (25, 28), (25, 32),
    (26, 32),
    (27, 30), (27, 34),
    (28, 34),
    (29, 32), (29, 34),
    (30, 33), (30, 34),
    (31, 33), (31, 34),
    (32, 33), (32, 34),
    (33, 34),
)

#: Ground-truth factions after the split (instructor vs. president).
INSTRUCTOR_FACTION: frozenset[int] = frozenset(
    {1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 17, 18, 20, 22}
)
PRESIDENT_FACTION: frozenset[int] = frozenset(
    {9, 10, 15, 16, 19, 21, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34}
)

#: The paper's Figure-1 query sets.
FIGURE1_QUERY_DIFFERENT_COMMUNITIES: tuple[int, ...] = (12, 25, 26, 30)
FIGURE1_QUERY_SAME_COMMUNITY: tuple[int, ...] = (4, 12, 17)


def karate_club() -> Graph:
    """Return the karate club graph (34 nodes, 78 edges, 1-based ids)."""
    return Graph(KARATE_EDGES)


def karate_factions() -> list[frozenset[int]]:
    """Return the two ground-truth factions, instructor's first."""
    return [INSTRUCTOR_FACTION, PRESIDENT_FACTION]
