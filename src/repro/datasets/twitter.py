"""Synthetic Twitter #kdd2014 mention graph for the §7 case study.

The paper's second case study builds a graph over 1 141 Twitter users
active around ACM SIGKDD 2014 (edges are replies/mentions), clusters it
into communities with Clauset–Newman–Moore, and shows that minimum Wiener
connectors for cross-community query sets pass through the two most
influential users — ``kdnuggets`` (23.1k followers, top-1 mentioned and
top-1 betweenness in the whole graph) and ``drewconway`` (10.7k followers).

Our stand-in reproduces that structure deterministically: 13 communities
(the paper's labels run G1..G13), the named users from Figure 7 / Table 5
placed in their published communities, and ``kdnuggets``/``drewconway``
wired as the dominant cross-community bridges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.generators import connectify, erdos_renyi
from repro.graphs.graph import Graph

#: Follower counts reported in Table 5.
FOLLOWERS: dict[str, int] = {
    "kdnuggets": 23100,
    "drewconway": 10700,
    "francescobonchi": 619,
    "gizmonaut": 304,
    "irescuapp": 204,
    "jromich": 165,
}

#: Named users and their community (from Figure 7 / Table 5 annotations).
NAMED_USERS: dict[str, int] = {
    "kdnuggets": 1,
    "francescobonchi": 2,
    "nicola_barbieri": 2,
    "drewconway": 4,
    "data_nerd": 7,
    "irescuapp": 10,
    "cornell_tech": 10,
    "destrin": 10,
    "jromich": 11,
    "thrillscience": 11,
    "jonkleinberg": 13,
    "gizmonaut": 13,
}

#: The Figure-7 query sets (users from different communities).
FIGURE7_QUERY_ONE: tuple[str, ...] = (
    "irescuapp", "data_nerd", "francescobonchi", "cornell_tech",
)
FIGURE7_QUERY_TWO: tuple[str, ...] = (
    "gizmonaut", "jromich", "thrillscience", "jonkleinberg",
)

_NUM_COMMUNITIES = 13
_TOTAL_USERS = 1141


@dataclass
class TwitterDataset:
    """The synthetic #kdd2014 mention graph plus annotations."""

    graph: Graph
    community_of: dict[str, int]
    followers: dict[str, int] = field(default_factory=dict)
    celebrities: tuple[str, ...] = ("kdnuggets", "drewconway")

    def community_members(self, index: int) -> list[str]:
        return [user for user, c in self.community_of.items() if c == index]


def kdd_twitter_network(seed: int = 14) -> TwitterDataset:
    """Generate the deterministic #kdd2014-like graph (1 141 users)."""
    rng = random.Random(seed)
    graph = Graph()
    community_of: dict[str, int] = {}

    # Anonymous users split over 13 communities of uneven size.
    weights = [26, 14, 10, 12, 8, 7, 9, 6, 5, 8, 6, 4, 5]
    total_weight = sum(weights)
    remaining = _TOTAL_USERS - len(NAMED_USERS)
    sizes = [max(12, remaining * w // total_weight) for w in weights]
    members: dict[int, list[str]] = {}
    counter = 0
    for community, size in enumerate(sizes, start=1):
        names = [f"user{counter + i:04d}" for i in range(size)]
        counter += size
        members[community] = names
        for name in names:
            graph.add_node(name)
            community_of[name] = community
        # Mention graphs are sparse; wire each community as a loose blob.
        block = erdos_renyi(size, min(1.0, 4.0 / size), rng=rng)
        for u, v in block.edges():
            graph.add_edge(names[u], names[v])

    # Place the named users in their communities with moderate local degree.
    for user, community in NAMED_USERS.items():
        graph.add_node(user)
        community_of[user] = community
        local = members[community]
        degree = 8 if user in FOLLOWERS else 5
        for name in rng.sample(local, min(degree, len(local))):
            graph.add_edge(user, name)
        members[community].append(user)

    # Celebrities: mentioned from every community (the paper: kdnuggets is
    # top-mentioned in the entire graph, drewconway top-replied-to).
    for celebrity, reach in (("kdnuggets", 9), ("drewconway", 6)):
        for community in members:
            if community == community_of[celebrity]:
                continue
            pool = [u for u in members[community] if u != celebrity]
            for name in rng.sample(pool, min(reach, len(pool))):
                graph.add_edge(celebrity, name)
    graph.add_edge("kdnuggets", "drewconway")

    # A thin mesh of random cross-community mentions as noise.
    users = list(graph.nodes())
    for _ in range(220):
        a, b = rng.sample(users, 2)
        if community_of[a] != community_of[b]:
            graph.add_edge(a, b)

    connectify(graph, rng=rng)
    return TwitterDataset(
        graph=graph, community_of=community_of, followers=dict(FOLLOWERS)
    )
