"""SteinLib-like Steiner benchmark instances (``puc`` and ``vienna`` suites).

Section 6.5 compares ``ws-q`` and ``st`` on SteinLib's ``puc`` (hard
hypercube-flavored instances, 25 problems, ``|Q| ∈ [8, 2048]``) and
``vienna`` (street-network instances, 85 problems, ``|Q| ∈ [50, ~5k]``).
Without network access we generate families with the same character and
push them through the same ``.stp`` parser real benchmarks would use:

* :func:`puc_like` — hypercube graphs with random terminal subsets (unit
  weights).  Hypercubes are exactly the topology behind puc's ``hc`` série;
* :func:`vienna_like` — connected random geometric graphs (sparse,
  near-planar, like street networks) with *clustered* terminals sampled as
  BFS balls around a few centers, which is how real access-network
  terminals cluster.

Both are deterministic in ``index``.
"""

from __future__ import annotations

import random

from repro.graphs.generators import (
    connectify,
    hypercube_graph,
    random_geometric,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import SteinerInstance
from repro.graphs.traversal import bfs_limited

#: Number of instances per generated suite (the real puc has 25, vienna 85;
#: we default to smaller suites to keep experiment runtimes reasonable and
#: let callers ask for more).
DEFAULT_PUC_COUNT = 12
DEFAULT_VIENNA_COUNT = 12


def puc_like(index: int) -> SteinerInstance:
    """Return the ``index``-th puc-like instance (hypercube + random terminals).

    Dimensions cycle through 6..9 (64..512 nodes); terminal counts cycle
    through 1/8, 1/4 and 1/2 of the vertices, echoing puc's wide ``|Q|``
    range relative to graph size.
    """
    rng = random.Random(1000 + index)
    dimension = 6 + index % 4
    graph = hypercube_graph(dimension)
    n = graph.num_nodes
    fraction = (8, 4, 2)[index % 3]
    num_terminals = max(4, n // fraction)
    terminals = set(rng.sample(range(n), num_terminals))
    weighted = WeightedGraph.from_graph(graph)
    return SteinerInstance(
        name=f"puc-like-{index:02d}", graph=weighted, terminals=terminals
    )


def vienna_like(index: int) -> SteinerInstance:
    """Return the ``index``-th vienna-like instance (geometric graph +
    clustered terminals)."""
    rng = random.Random(2000 + index)
    n = 900 + 150 * (index % 5)
    # Radius chosen for average degree ~5: E[deg] = n * pi * r^2.
    radius = (5.0 / (3.14159 * n)) ** 0.5
    graph = random_geometric(n, radius, rng=rng)
    connectify(graph, rng=rng)
    num_centers = 3 + index % 4
    per_center = 12 + 4 * (index % 3)
    terminals: set[int] = set()
    nodes = list(graph.nodes())
    for _ in range(num_centers):
        center = rng.choice(nodes)
        ball = bfs_limited(graph, center, max_depth=4)
        members = sorted(ball)
        rng.shuffle(members)
        terminals.update(members[:per_center])
    weighted = WeightedGraph.from_graph(graph)
    return SteinerInstance(
        name=f"vienna-like-{index:02d}", graph=weighted, terminals=terminals
    )


def puc_suite(count: int = DEFAULT_PUC_COUNT) -> list[SteinerInstance]:
    """The generated puc-like suite."""
    return [puc_like(index) for index in range(count)]


def vienna_suite(count: int = DEFAULT_VIENNA_COUNT) -> list[SteinerInstance]:
    """The generated vienna-like suite."""
    return [vienna_like(index) for index in range(count)]
