"""Synthetic protein–protein-interaction network for the §7 case study.

The paper extracts a minimum Wiener connector from a BioGrid human PPI
network (15 312 proteins) for the query genes BMP1, JAK2, PSEN, SLC6A4 and
finds that the connector consists of the disease-hub proteins p53, HSP90,
GSK3B and SNCA (Figure 6).  Without network access we synthesize a PPI-like
network with the same qualitative structure:

* disease modules (cancer, leukemia, alzheimers, neurodegenerative,
  autism) as dense blobs of anonymous proteins;
* the four hub proteins wired as high-degree connectors inside and *across*
  modules (including the p53–GSK3B interaction the paper highlights as
  linking cancer and Alzheimer's);
* the four query proteins attached at the module periphery with their
  documented hub as the natural next hop.

The generated network preserves the case study's behaviour: the minimum
Wiener connector for the query genes passes through the planted hubs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.generators import connectify, erdos_renyi
from repro.graphs.graph import Graph

#: Query proteins (grey in Figure 6) and their planted hub (white).
QUERY_GENES: tuple[str, ...] = ("BMP1", "JAK2", "PSEN", "SLC6A4")
HUB_GENES: tuple[str, ...] = ("p53", "HSP90", "GSK3B", "SNCA")

#: Disease association of the named genes, as discussed in §7.
DISEASES: dict[str, tuple[str, ...]] = {
    "BMP1": ("cancer",),
    "p53": ("cancer",),
    "JAK2": ("leukemia",),
    "HSP90": ("leukemia", "cancer"),
    "PSEN": ("alzheimers",),
    "GSK3B": ("alzheimers", "cancer"),
    "SLC6A4": ("alzheimers", "autism"),
    "SNCA": ("alzheimers", "neurodegenerative"),
}

_MODULES: tuple[tuple[str, str, int], ...] = (
    # (module name, anonymous-protein prefix, module size)
    ("cancer", "CANC", 180),
    ("leukemia", "LEUK", 120),
    ("alzheimers", "ALZ", 180),
    ("neurodegenerative", "NEUR", 120),
    ("autism", "AUT", 100),
    ("background", "BKG", 160),
)

#: Which module each hub anchors, and which modules it bridges into.
_HUB_WIRING: dict[str, tuple[str, tuple[str, ...]]] = {
    "p53": ("cancer", ("leukemia", "alzheimers")),
    "HSP90": ("leukemia", ("cancer",)),
    "GSK3B": ("alzheimers", ("cancer", "neurodegenerative")),
    "SNCA": ("neurodegenerative", ("alzheimers", "autism")),
}

#: Which hub each query gene hangs off, plus its home module.
_QUERY_WIRING: dict[str, tuple[str, str]] = {
    "BMP1": ("p53", "cancer"),
    "JAK2": ("HSP90", "leukemia"),
    "PSEN": ("GSK3B", "alzheimers"),
    "SLC6A4": ("SNCA", "autism"),
}


@dataclass
class PPIDataset:
    """The synthetic PPI network plus its planted annotations."""

    graph: Graph
    module_of: dict[str, str]
    diseases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    query: tuple[str, ...] = QUERY_GENES
    hubs: tuple[str, ...] = HUB_GENES


def ppi_network(seed: int = 7) -> PPIDataset:
    """Generate the deterministic PPI-like case-study network (~860 nodes)."""
    rng = random.Random(seed)
    graph = Graph()
    module_of: dict[str, str] = {}
    members: dict[str, list[str]] = {}

    # Dense anonymous disease modules.
    for module, prefix, size in _MODULES:
        names = [f"{prefix}{i:03d}" for i in range(size)]
        members[module] = names
        for name in names:
            graph.add_node(name)
            module_of[name] = module
        block = erdos_renyi(size, 6.0 / size, rng=rng)
        for u, v in block.edges():
            graph.add_edge(names[u], names[v])

    # Sparse background noise between modules (keeps hubs strictly better
    # than random inter-module shortcuts).
    module_names = [module for module, _, _ in _MODULES]
    for _ in range(140):
        a, b = rng.sample(module_names, 2)
        graph.add_edge(rng.choice(members[a]), rng.choice(members[b]))

    # Hubs: high degree in their home module, bridges into related modules,
    # and a densely interlinked hub core (p53-GSK3B etc.).
    for hub, (home, bridged) in _HUB_WIRING.items():
        graph.add_node(hub)
        module_of[hub] = home
        for name in rng.sample(members[home], int(len(members[home]) * 0.35)):
            graph.add_edge(hub, name)
        for module in bridged:
            for name in rng.sample(members[module], int(len(members[module]) * 0.15)):
                graph.add_edge(hub, name)
    hub_core = list(_HUB_WIRING)
    for i, a in enumerate(hub_core):
        for b in hub_core[i + 1 :]:
            graph.add_edge(a, b)

    # Query proteins: attached to their hub and a small module periphery.
    for gene, (hub, home) in _QUERY_WIRING.items():
        graph.add_node(gene)
        module_of[gene] = home
        graph.add_edge(gene, hub)
        for name in rng.sample(members[home], 4):
            graph.add_edge(gene, name)

    connectify(graph, rng=rng)
    return PPIDataset(graph=graph, module_of=module_of, diseases=dict(DISEASES))
