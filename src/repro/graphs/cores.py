"""k-core decomposition (Batagelj–Zaveršnik peeling).

The core number of a vertex is the largest ``k`` such that the vertex
belongs to a subgraph of minimum degree ``k``.  Computed in ``O(|E|)`` with
bucketed peeling.  The Cocktail-Party baseline uses this: Sozio & Gionis'
unconstrained optimum — the connected subgraph containing ``Q`` with
maximum minimum degree — is exactly the component containing ``Q`` of the
largest ``k``-core that still holds the query together.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.graph import Graph, Node


def core_numbers(graph: Graph) -> dict[Node, int]:
    """Return the core number of every vertex.

    Bucketed peeling: repeatedly remove a vertex of globally minimum
    remaining degree; its degree at removal time (capped to be monotone)
    is its core number.
    """
    degrees = {node: graph.degree(node) for node in graph.nodes()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: list[list[Node]] = [[] for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].append(node)

    cores: dict[Node, int] = {}
    remaining = dict(degrees)
    removed: set[Node] = set()
    current = 0
    pending = len(degrees)
    while pending:
        while current <= max_degree and not buckets[current]:
            current += 1
        node = buckets[current].pop()
        if node in removed or remaining[node] != current:
            # Stale bucket entry; the node moved to a lower bucket already.
            if node not in removed:
                buckets[remaining[node]].append(node)
            continue
        removed.add(node)
        pending -= 1
        cores[node] = current
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            degree = remaining[neighbor]
            if degree > current:
                remaining[neighbor] = degree - 1
                buckets[degree - 1].append(neighbor)
        if current > 0:
            current -= 1
    return cores


def k_core_nodes(graph: Graph, k: int,
                 cores: dict[Node, int] | None = None) -> set[Node]:
    """Return the vertex set of the ``k``-core (may be empty)."""
    if cores is None:
        cores = core_numbers(graph)
    return {node for node, core in cores.items() if core >= k}


def max_core_component_with(
    graph: Graph, required: Iterable[Node]
) -> tuple[set[Node], int]:
    """Return the component of the largest ``k``-core keeping ``required``
    together, plus that ``k``.

    This is the unconstrained Cocktail-Party optimum: the connected
    subgraph containing all required vertices with the maximum possible
    minimum degree.  Falls back to ``k = 0`` (the whole component) when the
    required vertices share no denser core.
    """
    required_list = list(dict.fromkeys(required))
    cores = core_numbers(graph)
    best_nodes: set[Node] | None = None
    best_k = 0
    upper = min(cores[node] for node in required_list) if required_list else 0
    for k in range(upper, -1, -1):
        nodes = k_core_nodes(graph, k, cores)
        component = _component_containing(graph, nodes, required_list)
        if component is not None:
            best_nodes = component
            best_k = k
            break
    if best_nodes is None:
        # Required vertices are disconnected even in the 0-core.
        best_nodes = set(required_list)
    return best_nodes, best_k


def _component_containing(
    graph: Graph, allowed: set[Node], required: list[Node]
) -> set[Node] | None:
    """The connected component of ``G[allowed]`` holding all of ``required``."""
    if not required:
        return set()
    start = required[0]
    if start not in allowed:
        return None
    component = {start}
    queue: deque[Node] = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in allowed and v not in component:
                component.add(v)
                queue.append(v)
    if all(node in component for node in required):
        return component
    return None
