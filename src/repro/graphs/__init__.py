"""Graph substrate: data structures, traversals, metrics, and generators.

This package is the foundation the paper's algorithms are built on.  The
dict/set :class:`Graph` API is pure Python — the library never depends on
networkx (which is used only as a test oracle).  :mod:`repro.graphs.csr`
adds an optional numpy-backed CSR array layer (:class:`CSRGraph`): nodes
relabeled once to ``0..n-1`` in insertion order (the *canonical order*
used for every tie-break in the library), traversals vectorized over whole
BFS frontiers.  ``HAS_NUMPY`` gates it; every caller falls back to the
dict implementations when numpy is absent.
"""

from repro.graphs.centrality import (
    average_betweenness,
    betweenness_centrality,
    closeness_centrality,
    pagerank,
    random_walk_with_restart,
)
from repro.graphs.components import (
    connected_components,
    is_connected,
    is_tree,
    largest_component,
    largest_component_subgraph,
    nodes_connect,
    require_connected,
)
from repro.graphs.cores import core_numbers, k_core_nodes, max_core_component_with
from repro.graphs.csr import CSRGraph, HAS_NUMPY, order_map
from repro.graphs.graph import Graph, WeightedGraph, Node, Edge
from repro.graphs.landmarks import LandmarkIndex
from repro.graphs.metrics import (
    GraphSummary,
    average_clustering,
    average_degree,
    degree_histogram,
    density,
    effective_diameter,
    local_clustering,
    summarize,
)
from repro.graphs.traversal import (
    bfs_distances,
    bfs_limited,
    bfs_tree,
    bfs_tree_canonical,
    dijkstra,
    eccentricity,
    multi_source_bfs,
    multi_source_dijkstra,
    parents_from_dijkstra,
    shortest_path,
)
from repro.graphs.unionfind import UnionFind
from repro.graphs.wiener import (
    average_distance,
    distance_sum_lower_bound,
    rooted_distance_sum,
    wiener_index,
    wiener_index_of_subset,
    wiener_index_sampled,
)

__all__ = [
    "Graph",
    "WeightedGraph",
    "Node",
    "Edge",
    "CSRGraph",
    "HAS_NUMPY",
    "order_map",
    "bfs_tree_canonical",
    "parents_from_dijkstra",
    "connected_components",
    "is_connected",
    "is_tree",
    "largest_component",
    "largest_component_subgraph",
    "nodes_connect",
    "require_connected",
    "bfs_distances",
    "bfs_limited",
    "bfs_tree",
    "dijkstra",
    "eccentricity",
    "multi_source_bfs",
    "multi_source_dijkstra",
    "shortest_path",
    "UnionFind",
    "core_numbers",
    "LandmarkIndex",
    "k_core_nodes",
    "max_core_component_with",
    "average_distance",
    "distance_sum_lower_bound",
    "rooted_distance_sum",
    "wiener_index",
    "wiener_index_of_subset",
    "wiener_index_sampled",
    "GraphSummary",
    "average_clustering",
    "average_degree",
    "degree_histogram",
    "density",
    "effective_diameter",
    "local_clustering",
    "summarize",
    "average_betweenness",
    "betweenness_centrality",
    "closeness_centrality",
    "pagerank",
    "random_walk_with_restart",
]
