"""Graph substrate: data structures, traversals, metrics, and generators.

This package is the foundation the paper's algorithms are built on.  It is
self-contained pure Python — the library never depends on networkx (which is
used only as a test oracle).
"""

from repro.graphs.graph import Graph, WeightedGraph, Node, Edge
from repro.graphs.components import (
    connected_components,
    is_connected,
    is_tree,
    largest_component,
    largest_component_subgraph,
    nodes_connect,
    require_connected,
)
from repro.graphs.traversal import (
    bfs_distances,
    bfs_limited,
    bfs_tree,
    dijkstra,
    eccentricity,
    multi_source_bfs,
    multi_source_dijkstra,
    shortest_path,
)
from repro.graphs.unionfind import UnionFind
from repro.graphs.cores import core_numbers, k_core_nodes, max_core_component_with
from repro.graphs.landmarks import LandmarkIndex
from repro.graphs.wiener import (
    average_distance,
    distance_sum_lower_bound,
    rooted_distance_sum,
    wiener_index,
    wiener_index_of_subset,
    wiener_index_sampled,
)
from repro.graphs.metrics import (
    GraphSummary,
    average_clustering,
    average_degree,
    degree_histogram,
    density,
    effective_diameter,
    local_clustering,
    summarize,
)
from repro.graphs.centrality import (
    average_betweenness,
    betweenness_centrality,
    closeness_centrality,
    pagerank,
    random_walk_with_restart,
)

__all__ = [
    "Graph",
    "WeightedGraph",
    "Node",
    "Edge",
    "connected_components",
    "is_connected",
    "is_tree",
    "largest_component",
    "largest_component_subgraph",
    "nodes_connect",
    "require_connected",
    "bfs_distances",
    "bfs_limited",
    "bfs_tree",
    "dijkstra",
    "eccentricity",
    "multi_source_bfs",
    "multi_source_dijkstra",
    "shortest_path",
    "UnionFind",
    "core_numbers",
    "LandmarkIndex",
    "k_core_nodes",
    "max_core_component_with",
    "average_distance",
    "distance_sum_lower_bound",
    "rooted_distance_sum",
    "wiener_index",
    "wiener_index_of_subset",
    "wiener_index_sampled",
    "GraphSummary",
    "average_clustering",
    "average_degree",
    "degree_histogram",
    "density",
    "effective_diameter",
    "local_clustering",
    "summarize",
    "average_betweenness",
    "betweenness_centrality",
    "closeness_centrality",
    "pagerank",
    "random_walk_with_restart",
]
