"""Disjoint-set (union-find) forest with union by rank and path compression.

Used by Kruskal's minimum spanning tree inside Mehlhorn's Steiner
approximation, and by the planted-partition generator to guarantee
connectivity.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are created lazily on first touch.  All operations run in
    effectively-constant amortized time.

    Examples
    --------
    >>> uf = UnionFind()
    >>> uf.union("a", "b")
    True
    >>> uf.connected("a", "b")
    True
    >>> uf.union("a", "b")  # already joined
    False
    """

    __slots__ = ("_parent", "_rank", "_num_sets")

    def __init__(self, elements: Iterable[Hashable] | None = None) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        self._num_sets = 0
        if elements is not None:
            for element in elements:
                self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set; no-op if already present."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._num_sets += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the walk directly at the root.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they were already
        in the same set.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._num_sets -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._num_sets

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def sets(self) -> list[set[Hashable]]:
        """Materialize the current partition as a list of sets."""
        groups: dict[Hashable, set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return list(groups.values())
