"""CSR (compressed sparse row) array backend for the graph substrate.

The hashable-node :class:`~repro.graphs.graph.Graph` is the library's
public data model, but its dict/set adjacency makes every traversal pay
Python-interpreter constants per edge.  :class:`CSRGraph` is the
acceleration layer underneath: nodes are relabeled once to ``0..n-1``
integers (in :meth:`Graph.nodes` insertion order — the *canonical order*
every tie-break in the library refers to), adjacency becomes two flat
integer arrays (``indptr``/``indices``), and the traversal inner loops
become vectorized numpy expressions over whole BFS frontiers.

Where the CSR backend kicks in
------------------------------

* :func:`repro.graphs.wiener.wiener_index` converts to CSR above a size
  threshold — the one-off ``O(|E|)`` relabeling is amortized over ``|V|``
  BFS traversals;
* ``wiener_steiner(backend="csr")`` (see :mod:`repro.core.fastpath`)
  keeps one :class:`CSRGraph` for the whole λ×root sweep: BFS caches,
  per-arc reweighting, Steiner solving and candidate scoring all reuse
  the same arrays;
* candidate scoring uses :meth:`CSRGraph.induced` index masks instead of
  rebuilding hash-based subgraphs.

Canonical tie-breaking
----------------------

All kernels here resolve ties by the smallest integer index (e.g. a BFS
parent is the *lowest-index* neighbor on the previous level).  The dict
backend applies the same rule via its node→index order map, which is what
makes ``backend="csr"`` and ``backend="dict"`` return bit-identical
results rather than merely equivalent ones.

numpy is a soft dependency: importing this module without numpy leaves
``HAS_NUMPY`` false and :class:`CSRGraph` unusable; callers are expected
to gate on :data:`HAS_NUMPY` and fall back to the dict implementations.
scipy, when present, is used only where results are tie-free (all-pairs
distance matrices for Wiener scoring) so it can never change an answer.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, Node, WeightedGraph

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]

HAS_NUMPY = np is not None

try:  # pragma: no cover - scipy is optional icing over the numpy kernels
    from scipy.sparse import csr_matrix as scipy_csr_matrix
    from scipy.sparse.csgraph import dijkstra as scipy_dijkstra
    from scipy.sparse.csgraph import shortest_path as _scipy_shortest_path
except ImportError:  # pragma: no cover
    scipy_csr_matrix = None
    scipy_dijkstra = None
    _scipy_shortest_path = None

HAS_SCIPY = scipy_csr_matrix is not None

# Backwards-compatible private alias used inside this module.
_scipy_csr_matrix = scipy_csr_matrix

#: Above this many nodes an all-pairs matrix would not fit comfortably in
#: memory, so Wiener computation falls back to one-source-at-a-time BFS.
_SCIPY_ALL_PAIRS_MAX_NODES = 2048


def _require_numpy() -> None:
    if not HAS_NUMPY:
        raise GraphError(
            "the CSR backend requires numpy; install it or use the dict backend"
        )


class CSRGraph:
    """An immutable index-array view of a :class:`Graph`.

    Attributes
    ----------
    indptr:
        ``int64[n + 1]`` — row pointers; the arcs of node ``i`` live at
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64[2m]`` — arc heads, sorted ascending within each row (the
        canonical adjacency order).
    node_of:
        ``list`` mapping index → original node label (identity when the
        CSR was built directly from arrays).
    index_of:
        ``dict`` mapping original node label → index.
    """

    __slots__ = ("indptr", "indices", "node_of", "index_of", "_arc_src", "_half_arcs")

    def __init__(self, indptr, indices, node_of=None, index_of=None) -> None:
        _require_numpy()
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if node_of is None:
            node_of = list(range(len(self.indptr) - 1))
        self.node_of = node_of
        if index_of is None:
            index_of = {node: i for i, node in enumerate(node_of)}
        self.index_of = index_of
        self._arc_src = None
        self._half_arcs = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Relabel ``graph`` to ``0..n-1`` (insertion order) and pack to CSR."""
        _require_numpy()
        node_of = list(graph.nodes())
        index_of = {node: i for i, node in enumerate(node_of)}
        n = len(node_of)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, node in enumerate(node_of):
            indptr[i + 1] = indptr[i] + graph.degree(node)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for i, node in enumerate(node_of):
            row = sorted(index_of[v] for v in graph.neighbors(node))
            indices[int(indptr[i]) : int(indptr[i + 1])] = row
        return cls(indptr, indices, node_of, index_of)

    @classmethod
    def from_edge_stream(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        *,
        chunk_size: int = 1 << 20,
    ) -> "CSRGraph":
        """Pack an edge *stream* straight into CSR arrays, no dict graph.

        The scale-construction path of the load harness: a generator's
        edge stream (``0 <= u, v < num_nodes`` integer endpoints) is
        accumulated in bounded numpy chunks and packed directly, so a
        10^6+-node instance costs two int64 arrays instead of a
        dict-of-sets :class:`Graph` an order of magnitude larger.

        Semantics match building a ``Graph(nodes=range(num_nodes))`` from
        the same stream and calling :meth:`from_graph` on it, bit for
        bit: self-loops are rejected (the graph is simple), duplicate
        edges collapse silently, every row comes out sorted ascending
        (the canonical adjacency order), and isolated vertices keep their
        empty rows.  ``tests/test_scale_generators.py`` asserts the array
        identity on every generator family.
        """
        _require_numpy()
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        if chunk_size < 1:
            raise GraphError(f"chunk_size must be positive, got {chunk_size}")
        src_chunks: list = []
        dst_chunks: list = []
        buffer_u: list[int] = []
        buffer_v: list[int] = []

        def flush() -> None:
            if buffer_u:
                src_chunks.append(np.asarray(buffer_u, dtype=np.int64))
                dst_chunks.append(np.asarray(buffer_v, dtype=np.int64))
                buffer_u.clear()
                buffer_v.clear()

        for u, v in edges:
            buffer_u.append(u)
            buffer_v.append(v)
            if len(buffer_u) >= chunk_size:
                flush()
        flush()
        if src_chunks:
            src = np.concatenate(src_chunks)
            dst = np.concatenate(dst_chunks)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        if src.size:
            if bool((src == dst).any()):
                position = int(np.flatnonzero(src == dst)[0])
                raise GraphError(
                    f"self-loop ({int(src[position])}, {int(dst[position])}) "
                    "in the edge stream; the graph is simple"
                )
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= num_nodes:
                raise GraphError(
                    f"edge endpoint outside 0..{num_nodes - 1}: "
                    f"stream spans [{lo}, {hi}]"
                )
        # Both arc directions, sorted by (tail, head) and deduplicated —
        # exactly the rows from_graph emits for the equivalent dict graph.
        tails = np.concatenate([src, dst])
        heads = np.concatenate([dst, src])
        order = np.lexsort((heads, tails))
        tails = tails[order]
        heads = heads[order]
        if tails.size:
            keep = np.empty(len(tails), dtype=bool)
            keep[0] = True
            np.logical_or(
                tails[1:] != tails[:-1], heads[1:] != heads[:-1], out=keep[1:]
            )
            tails = tails[keep]
            heads = heads[keep]
        counts = np.bincount(tails, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, heads)

    @classmethod
    def from_weighted_graph(cls, graph: WeightedGraph):
        """Pack a :class:`WeightedGraph`; returns ``(csr, weights)``.

        ``weights[k]`` is the weight of the arc ``arc_src[k] -> indices[k]``
        (each undirected edge appears as two arcs with equal weight).
        """
        _require_numpy()
        node_of = list(graph.nodes())
        index_of = {node: i for i, node in enumerate(node_of)}
        n = len(node_of)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, node in enumerate(node_of):
            indptr[i + 1] = indptr[i] + graph.degree(node)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        weights = np.empty(int(indptr[-1]), dtype=np.float64)
        for i, node in enumerate(node_of):
            row = sorted(
                (index_of[v], w) for v, w in graph.neighbors(node).items()
            )
            lo = int(indptr[i])
            for k, (j, w) in enumerate(row):
                indices[lo + k] = j
                weights[lo + k] = w
        return cls(indptr, indices, node_of, index_of), weights

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    @property
    def arc_src(self):
        """``int64[2m]`` — arc tails, i.e. ``arc_src[k] -> indices[k]``."""
        if self._arc_src is None:
            degrees = np.diff(self.indptr)
            self._arc_src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), degrees
            )
        return self._arc_src

    @property
    def half_arcs(self):
        """``(positions, tails, heads)`` of the arcs with ``tail < head``.

        One entry per undirected edge, in ascending ``(tail, head)`` order —
        the canonical edge enumeration the candidate-reduction kernels rely
        on for their tie-breaks.
        """
        if self._half_arcs is None:
            positions = np.flatnonzero(self.arc_src < self.indices)
            self._half_arcs = (
                positions,
                self.arc_src[positions],
                self.indices[positions],
            )
        return self._half_arcs

    def indices_for(self, nodes: Iterable[Node]):
        """Map node labels to an ``int64`` index array (raises on unknowns)."""
        try:
            return np.fromiter(
                (self.index_of[v] for v in nodes), dtype=np.int64
            )
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None

    def labels_for(self, index_array) -> list[Node]:
        """Map an index array back to original node labels."""
        node_of = self.node_of
        return [node_of[int(i)] for i in index_array]

    def arc_weight_position(self, u: int, v: int) -> int:
        """Position ``k`` of arc ``u -> v`` (for indexing a weights array)."""
        lo = int(self.indptr[u])
        hi = int(self.indptr[u + 1])
        k = lo + int(np.searchsorted(self.indices[lo:hi], v))
        if k >= hi or int(self.indices[k]) != v:
            raise GraphError(f"arc {u} -> {v} not present")
        return k

    # ------------------------------------------------------------------
    # Vectorized traversals
    # ------------------------------------------------------------------
    def _expand(self, frontier):
        """Gather all arcs out of ``frontier``; returns ``(heads, tails)``."""
        indptr = self.indptr
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        cumstart = np.cumsum(counts) - counts
        positions = np.repeat(starts - cumstart, counts) + np.arange(
            total, dtype=np.int64
        )
        return self.indices[positions], np.repeat(frontier, counts)

    def bfs_distances(self, source: int):
        """``int64[n]`` of hop distances from ``source``; ``-1`` = unreachable."""
        dist = np.full(self.num_nodes, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            heads, _ = self._expand(frontier)
            heads = heads[dist[heads] < 0]
            if heads.size == 0:
                break
            frontier = np.unique(heads)
            dist[frontier] = level
        return dist

    def bfs_tree(self, source: int):
        """``(dist, parent)`` arrays with *canonical* (min-index) parents.

        ``parent[v]`` is the lowest-index neighbor of ``v`` on the previous
        BFS level (``-1`` for the source and unreachable nodes).  This is
        the tie-break rule the dict backend mirrors via its order map.
        """
        n = self.num_nodes
        dist = np.full(n, -1, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            heads, tails = self._expand(frontier)
            fresh = dist[heads] < 0
            heads, tails = heads[fresh], tails[fresh]
            if heads.size == 0:
                break
            order = np.lexsort((tails, heads))
            heads, tails = heads[order], tails[order]
            frontier, first = np.unique(heads, return_index=True)
            dist[frontier] = level
            parent[frontier] = tails[first]
        return dist, parent

    def multi_source_bfs(self, sources):
        """``(dist, closest)`` arrays; ties pick the lowest-index source."""
        n = self.num_nodes
        dist = np.full(n, -1, dtype=np.int64)
        closest = np.full(n, -1, dtype=np.int64)
        frontier = np.unique(np.asarray(list(sources), dtype=np.int64))
        dist[frontier] = 0
        closest[frontier] = frontier
        level = 0
        while frontier.size:
            level += 1
            heads, tails = self._expand(frontier)
            fresh = dist[heads] < 0
            heads, tails = heads[fresh], tails[fresh]
            if heads.size == 0:
                break
            order = np.lexsort((closest[tails], heads))
            heads, tails = heads[order], tails[order]
            frontier, first = np.unique(heads, return_index=True)
            dist[frontier] = level
            closest[frontier] = closest[tails[first]]
        return dist, closest

    # ------------------------------------------------------------------
    # Distance aggregates
    # ------------------------------------------------------------------
    def rooted_distance_sum(self, source: int) -> float:
        """``Σ_v d(source, v)``; ``inf`` if any node is unreachable."""
        dist = self.bfs_distances(source)
        if bool((dist < 0).any()):
            return float("inf")
        return float(int(dist.sum()))

    def wiener_index(self) -> float:
        """Exact Wiener index; ``inf`` when disconnected, 0 below 2 nodes.

        Distances are tie-free, so any correct engine gives the same
        answer: scipy's C BFS matrix when the graph is small enough for an
        all-pairs matrix, otherwise a loop of vectorized numpy BFS passes.
        """
        n = self.num_nodes
        if n < 2:
            return 0.0
        if HAS_SCIPY and n <= _SCIPY_ALL_PAIRS_MAX_NODES:
            matrix = _scipy_csr_matrix(
                (
                    np.ones(len(self.indices), dtype=np.int8),
                    self.indices,
                    self.indptr,
                ),
                shape=(n, n),
            )
            dist = _scipy_shortest_path(
                matrix, method="D", directed=False, unweighted=True
            )
            if bool(np.isinf(dist).any()):
                return float("inf")
            # Entries are exact small integers stored as floats; the sum is
            # exact well past any graph that fits in memory.
            return float(dist.sum()) / 2
        total = 0
        for source in range(n):
            dist = self.bfs_distances(source)
            if bool((dist < 0).any()):
                return float("inf")
            total += int(dist.sum())
        return total / 2

    # ------------------------------------------------------------------
    # Induced subgraphs
    # ------------------------------------------------------------------
    def induced(self, index_array) -> "CSRGraph":
        """The induced sub-CSR on ``index_array`` (need not be sorted).

        Sub-indices follow the *sorted* order of ``index_array`` so the
        canonical (ascending) adjacency order is preserved; ``node_of``
        maps sub-indices back to the original labels.
        """
        idx = np.unique(np.asarray(index_array, dtype=np.int64))
        sub_id = np.full(self.num_nodes, -1, dtype=np.int64)
        sub_id[idx] = np.arange(len(idx), dtype=np.int64)
        heads, tails = self._expand(idx)
        keep = sub_id[heads] >= 0
        sub_heads = sub_id[heads[keep]]
        sub_tails = sub_id[tails[keep]]
        counts = np.bincount(sub_tails, minlength=len(idx))
        indptr = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        node_of = self.labels_for(idx)
        return CSRGraph(indptr, sub_heads, node_of)

    def to_graph(self) -> Graph:
        """Materialize the equivalent dict :class:`Graph` (labels preserved).

        Nodes are added in index (= canonical) order, so
        ``CSRGraph.from_graph(csr.to_graph())`` round-trips to the same
        arrays.  Intended for *small* CSRs — result hosts, induced
        subgraphs — not for a million-node instance (whose whole point is
        never materializing the dict form).
        """
        graph = Graph(nodes=self.node_of)
        node_of = self.node_of
        positions, tails, heads = self.half_arcs
        del positions
        for tail, head in zip(tails.tolist(), heads.tolist()):
            graph.add_edge(node_of[tail], node_of[head])
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"CSRGraph(|V|={self.num_nodes}, |E|={self.num_edges})"


def csr_from_graph(graph: Graph) -> CSRGraph:
    """Module-level alias for :meth:`CSRGraph.from_graph`."""
    return CSRGraph.from_graph(graph)


def order_map(graph: Graph | WeightedGraph) -> dict[Node, int]:
    """The canonical node → index map (insertion order), without numpy.

    This is the exact relabeling :meth:`CSRGraph.from_graph` uses; the
    dict-backend code paths use it to apply the same integer tie-breaks
    the CSR kernels get for free.
    """
    return {node: i for i, node in enumerate(graph.nodes())}
