"""Graph serialization: whitespace edge lists and SteinLib ``.stp`` files.

The ``.stp`` format is the interchange format of the SteinLib benchmark
collection (http://steinlib.zib.de/) whose ``puc`` and ``vienna`` suites the
paper uses in §6.5.  We implement enough of the format to round-trip our
generated look-alike instances: the ``Comment``, ``Graph`` and ``Terminals``
sections.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.graphs.graph import Graph, Node, WeightedGraph


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------

def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write one ``u v`` line per undirected edge."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_edge_list(path: str | os.PathLike, node_type: type = int) -> Graph:
    """Read a whitespace edge list; ``#`` starts a comment line.

    Parameters
    ----------
    node_type:
        Callable applied to each endpoint token (default ``int``; pass
        ``str`` for labelled graphs).
    """
    graph = Graph()
    with open(path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ParseError(f"expected 'u v', got {line!r}", line_number)
            try:
                u = node_type(parts[0])
                v = node_type(parts[1])
            except ValueError as exc:
                raise ParseError(str(exc), line_number) from exc
            if u != v:
                graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# SteinLib .stp
# ----------------------------------------------------------------------

@dataclass
class SteinerInstance:
    """A Steiner-tree problem instance: weighted graph plus terminal set.

    ``name`` carries the benchmark identity (e.g. ``puc-like-08``); nodes
    are 1-based ints as in SteinLib.
    """

    name: str
    graph: WeightedGraph
    terminals: set[Node] = field(default_factory=set)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def unweighted(self) -> tuple[Graph, set[Node]]:
        """Return the unweighted view ``(graph, terminals)`` used by the
        connector algorithms (the paper's graphs are unweighted)."""
        return self.graph.unweighted(), set(self.terminals)


def write_stp(instance: SteinerInstance, path: str | os.PathLike) -> None:
    """Write a SteinLib ``.stp`` file (sections: Comment, Graph, Terminals)."""
    node_index = {node: i + 1 for i, node in enumerate(instance.graph.nodes())}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("33D32945 STP File, STP Format Version 1.0\n\n")
        handle.write("SECTION Comment\n")
        handle.write(f'Name    "{instance.name}"\n')
        handle.write('Creator "repro"\n')
        handle.write("END\n\n")
        handle.write("SECTION Graph\n")
        handle.write(f"Nodes {instance.graph.num_nodes}\n")
        handle.write(f"Edges {instance.graph.num_edges}\n")
        for u, v, w in instance.graph.edges():
            weight = int(w) if float(w).is_integer() else w
            handle.write(f"E {node_index[u]} {node_index[v]} {weight}\n")
        handle.write("END\n\n")
        handle.write("SECTION Terminals\n")
        handle.write(f"Terminals {len(instance.terminals)}\n")
        for terminal in instance.terminals:
            handle.write(f"T {node_index[terminal]}\n")
        handle.write("END\n\nEOF\n")


def read_stp(path: str | os.PathLike) -> SteinerInstance:
    """Parse a SteinLib ``.stp`` file into a :class:`SteinerInstance`.

    Raises
    ------
    ParseError
        On malformed section structure, edge lines, or terminal lines.
    """
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    graph = WeightedGraph()
    terminals: set[Node] = set()
    declared_nodes = 0
    section: str | None = None
    with open(path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            upper = line.upper()
            if upper.startswith("SECTION"):
                parts = line.split()
                if len(parts) < 2:
                    raise ParseError("SECTION without a name", line_number)
                section = parts[1].lower()
                continue
            if upper == "END":
                section = None
                continue
            if upper == "EOF":
                break
            if section == "comment":
                if upper.startswith("NAME"):
                    quoted = line.split('"')
                    if len(quoted) >= 2 and quoted[1]:
                        name = quoted[1]
                continue
            if section == "graph":
                _parse_graph_line(line, line_number, graph)
                if upper.startswith("NODES"):
                    declared_nodes = int(line.split()[1])
                continue
            if section == "terminals":
                parts = line.split()
                if parts[0].upper() == "T":
                    if len(parts) < 2:
                        raise ParseError("terminal line without node id", line_number)
                    terminals.add(int(parts[1]))
                continue
    # SteinLib numbers nodes 1..N even when some are isolated.
    for node in range(1, declared_nodes + 1):
        graph.add_node(node)
    missing = terminals - set(graph.nodes())
    if missing:
        raise ParseError(f"terminals {sorted(missing)} not among declared nodes")
    return SteinerInstance(name=name, graph=graph, terminals=terminals)


def _parse_graph_line(line: str, line_number: int, graph: WeightedGraph) -> None:
    parts = line.split()
    tag = parts[0].upper()
    if tag in ("NODES", "EDGES", "ARCS"):
        return
    if tag in ("E", "A"):
        if len(parts) < 4:
            raise ParseError(f"edge line needs 'E u v w', got {line!r}", line_number)
        try:
            u, v = int(parts[1]), int(parts[2])
            weight = float(parts[3])
        except ValueError as exc:
            raise ParseError(str(exc), line_number) from exc
        if u != v:
            graph.add_edge(u, v, weight)
        return
    raise ParseError(f"unrecognized graph-section line {line!r}", line_number)
