"""Graph generators.

Two families live here:

* classic deterministic topologies (paths, cycles, stars, grids, hypercubes,
  complete graphs) used by tests and by the SteinLib-like benchmark
  generators, plus the paper's Figure-2 gadget; and
* random models (Erdős–Rényi, Barabási–Albert, planted partition, random
  geometric) used to synthesize the experiment graphs (§6.6 uses ER and
  power-law explicitly; the planted-partition model stands in for the
  ground-truth-community datasets).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.components import connected_components


# ----------------------------------------------------------------------
# Deterministic topologies
# ----------------------------------------------------------------------

def path_graph(n: int) -> Graph:
    """Return the path ``0 - 1 - ... - n-1``."""
    graph = Graph(nodes=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(n_leaves: int) -> Graph:
    """Return a star: hub ``0`` connected to leaves ``1..n_leaves``."""
    graph = Graph(nodes=range(n_leaves + 1))
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n``."""
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` grid; node ``(r, c)`` is ``r * cols + c``."""
    graph = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """Return the ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    SteinLib's ``puc`` suite is built around hypercube-like instances; our
    puc-like benchmark generator uses these.
    """
    n = 1 << dimension
    graph = Graph(nodes=range(n))
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                graph.add_edge(u, v)
    return graph


def figure2_gadget(line_length: int = 10) -> Graph:
    """Return the paper's Figure-2 construction.

    A line ``v_1 .. v_h`` (integer nodes ``1..h``) plus two root nodes
    ``"r1"`` and ``"r2"``: ``r1`` is adjacent to the first ``h/2 + 1`` line
    vertices and ``r2`` to the last ``h/2 + 1`` (the windows overlap by
    two vertices in the middle).  For the paper's ``h = 10`` and ``Q`` =
    the whole line this reproduces the quoted values exactly:
    ``W(Q) = 165``, ``W(Q ∪ {r1}) = W(Q ∪ {r2}) = 151`` and
    ``W(Q ∪ {r1, r2}) = 142`` — the unique optimal Steiner tree is ``Q``
    itself while the optimal Wiener connector adds both roots.
    """
    if line_length < 4:
        raise GraphError("figure2_gadget needs a line of at least 4 nodes")
    graph = Graph(nodes=range(1, line_length + 1))
    for node in range(1, line_length):
        graph.add_edge(node, node + 1)
    span = line_length // 2 + 1
    graph.add_node("r1")
    graph.add_node("r2")
    for node in range(1, span + 1):
        graph.add_edge("r1", node)
    for node in range(line_length - span + 1, line_length + 1):
        graph.add_edge("r2", node)
    return graph


def line_with_universal_root(line_length: int) -> Graph:
    """A line ``1..h`` plus one root ``"r"`` adjacent to every line vertex.

    This is the paper's generalization of Figure 2: the optimal Steiner
    tree (the bare line) has Wiener index ``Ω(h³)`` while including the
    root drops it to ``O(h²)`` — an unbounded Steiner-vs-Wiener gap.
    """
    graph = Graph(nodes=range(1, line_length + 1))
    for node in range(1, line_length):
        graph.add_edge(node, node + 1)
    graph.add_node("r")
    for node in range(1, line_length + 1):
        graph.add_edge("r", node)
    return graph


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """Return a clique with a path tail attached — a handy asymmetric test graph."""
    graph = complete_graph(clique_size)
    previous = clique_size - 1
    for offset in range(tail_length):
        node = clique_size + offset
        graph.add_node(node)
        graph.add_edge(previous, node)
        previous = node
    return graph


# ----------------------------------------------------------------------
# Random models
# ----------------------------------------------------------------------

def erdos_renyi(n: int, p: float, rng: random.Random | None = None) -> Graph:
    """Return a ``G(n, p)`` Erdős–Rényi graph.

    Uses the geometric skipping trick so generation is ``O(n + |E|)`` even
    for small ``p``.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability {p} outside [0, 1]")
    rng = rng or random.Random()
    graph = Graph(nodes=range(n))
    if p == 0.0:
        return graph
    if p == 1.0:
        return complete_graph(n)
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        gap = math.floor(math.log(1.0 - rng.random()) / log_q)
        w += 1 + gap
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def erdos_renyi_with_degree(n: int, average_degree: float,
                            rng: random.Random | None = None) -> Graph:
    """ER graph calibrated to a target average degree (``p = d / (n-1)``)."""
    if n < 2:
        return Graph(nodes=range(n))
    p = min(1.0, average_degree / (n - 1))
    return erdos_renyi(n, p, rng=rng)


def barabasi_albert(n: int, attachment: int, rng: random.Random | None = None) -> Graph:
    """Return a Barabási–Albert preferential-attachment (power-law) graph.

    Each new node attaches to ``attachment`` existing nodes chosen
    proportionally to degree.  This is the "PL" model of §6.6.
    """
    if attachment < 1 or attachment >= n:
        raise GraphError(f"need 1 <= attachment < n; got attachment={attachment}, n={n}")
    rng = rng or random.Random()
    graph = Graph(nodes=range(n))
    # Seed with a star on the first attachment+1 nodes so every early node
    # has positive degree.
    repeated: list[int] = []
    for node in range(1, attachment + 1):
        graph.add_edge(0, node)
        repeated.extend((0, node))
    for node in range(attachment + 1, n):
        targets: set[int] = set()
        while len(targets) < attachment:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(node, target)
            repeated.extend((node, target))
    return graph


def planted_partition(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: random.Random | None = None,
) -> tuple[Graph, list[set[int]]]:
    """Return a planted-partition graph and its ground-truth communities.

    Nodes are numbered consecutively by community.  Intra-community edges
    appear with probability ``p_in``, inter-community edges with ``p_out``.
    This model stands in for the dblp/youtube ground-truth-community
    datasets (§6.4); afterwards call :func:`connectify` if you need a single
    component.
    """
    rng = rng or random.Random()
    total = sum(community_sizes)
    graph = Graph(nodes=range(total))
    communities: list[set[int]] = []
    start = 0
    for size in community_sizes:
        communities.append(set(range(start, start + size)))
        start += size
    membership = {}
    for index, community in enumerate(communities):
        for node in community:
            membership[node] = index
    # Intra-community edges: dense blocks generated per community.
    start = 0
    for size in community_sizes:
        block = _block_edges(start, size, p_in, rng)
        for u, v in block:
            graph.add_edge(u, v)
        start += size
    # Inter-community edges: sparse, sampled by expected count.
    if p_out > 0:
        nodes = list(range(total))
        expected = p_out * (total * (total - 1) / 2)
        trials = int(expected * 1.2) + 1
        for _ in range(trials):
            u = rng.choice(nodes)
            v = rng.choice(nodes)
            if u != v and membership[u] != membership[v]:
                graph.add_edge(u, v)
    return graph, communities


def _block_edges(start: int, size: int, p: float,
                 rng: random.Random) -> list[tuple[int, int]]:
    """Sample ``G(size, p)`` edges shifted to begin at node ``start``."""
    if p <= 0 or size < 2:
        return []
    block = erdos_renyi(size, p, rng=rng)
    return [(start + u, start + v) for u, v in block.edges()]


def random_geometric(n: int, radius: float,
                     rng: random.Random | None = None) -> Graph:
    """Return a random geometric graph on the unit square.

    Nodes get uniform positions; edges join pairs within ``radius``.  Grid
    bucketing keeps generation near-linear.  These near-planar sparse graphs
    are the model for our vienna-like (street-network) Steiner benchmarks.
    """
    rng = rng or random.Random()
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    graph = Graph(nodes=range(n))
    cell = max(radius, 1e-9)
    buckets: dict[tuple[int, int], list[int]] = {}
    for node, (x, y) in enumerate(positions):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(node)
    radius_sq = radius * radius
    for (bx, by), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                others = buckets.get((bx + dx, by + dy))
                if others is None:
                    continue
                for u in members:
                    ux, uy = positions[u]
                    for v in others:
                        if v <= u:
                            continue
                        vx, vy = positions[v]
                        if (ux - vx) ** 2 + (uy - vy) ** 2 <= radius_sq:
                            graph.add_edge(u, v)
    return graph


def connectify(graph: Graph, rng: random.Random | None = None) -> Graph:
    """Return ``graph`` with one random edge added between consecutive
    components, making it connected.

    Mutates and returns the input graph.  Random models frequently leave a
    few isolated vertices; the paper's experiments assume connected inputs,
    and stitching components with single edges perturbs the degree
    distribution far less than resampling.
    """
    rng = rng or random.Random()
    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    anchors = [rng.choice(sorted(component, key=repr)) for component in components]
    for previous, current in zip(anchors, anchors[1:]):
        graph.add_edge(previous, current)
    return graph
