"""Graph generators.

Two families live here:

* classic deterministic topologies (paths, cycles, stars, grids, hypercubes,
  complete graphs) used by tests and by the SteinLib-like benchmark
  generators, plus the paper's Figure-2 gadget; and
* random models (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
  stochastic Kronecker, configuration model, planted partition, random
  geometric) used to synthesize the experiment graphs (§6.6 uses ER and
  power-law explicitly; the planted-partition model stands in for the
  ground-truth-community datasets).

Edge streams
------------

Every scale-relevant random family has an ``*_edges`` companion returning
a deterministic edge *stream* (an iterator of ``(u, v)`` int pairs).  The
dict builders consume the stream through ``Graph.add_edge``, and the load
harness feeds the same stream to
:meth:`~repro.graphs.csr.CSRGraph.from_edge_stream` — so a 10^6+-node
instance packs straight into CSR arrays without ever materializing a dict
:class:`Graph`, and both construction paths produce the *identical* graph
for a given seed.  Streams draw from a caller-supplied
``random.Random`` only (never the salted built-in ``hash``), so a seed
pins the graph on every platform and ``PYTHONHASHSEED``
(``tests/test_scale_generators.py`` regresses this in subprocesses).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph


# ----------------------------------------------------------------------
# Deterministic topologies
# ----------------------------------------------------------------------

def path_graph(n: int) -> Graph:
    """Return the path ``0 - 1 - ... - n-1``."""
    graph = Graph(nodes=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(n_leaves: int) -> Graph:
    """Return a star: hub ``0`` connected to leaves ``1..n_leaves``."""
    graph = Graph(nodes=range(n_leaves + 1))
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n``."""
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` grid; node ``(r, c)`` is ``r * cols + c``."""
    graph = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """Return the ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    SteinLib's ``puc`` suite is built around hypercube-like instances; our
    puc-like benchmark generator uses these.
    """
    n = 1 << dimension
    graph = Graph(nodes=range(n))
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                graph.add_edge(u, v)
    return graph


def figure2_gadget(line_length: int = 10) -> Graph:
    """Return the paper's Figure-2 construction.

    A line ``v_1 .. v_h`` (integer nodes ``1..h``) plus two root nodes
    ``"r1"`` and ``"r2"``: ``r1`` is adjacent to the first ``h/2 + 1`` line
    vertices and ``r2`` to the last ``h/2 + 1`` (the windows overlap by
    two vertices in the middle).  For the paper's ``h = 10`` and ``Q`` =
    the whole line this reproduces the quoted values exactly:
    ``W(Q) = 165``, ``W(Q ∪ {r1}) = W(Q ∪ {r2}) = 151`` and
    ``W(Q ∪ {r1, r2}) = 142`` — the unique optimal Steiner tree is ``Q``
    itself while the optimal Wiener connector adds both roots.
    """
    if line_length < 4:
        raise GraphError("figure2_gadget needs a line of at least 4 nodes")
    graph = Graph(nodes=range(1, line_length + 1))
    for node in range(1, line_length):
        graph.add_edge(node, node + 1)
    span = line_length // 2 + 1
    graph.add_node("r1")
    graph.add_node("r2")
    for node in range(1, span + 1):
        graph.add_edge("r1", node)
    for node in range(line_length - span + 1, line_length + 1):
        graph.add_edge("r2", node)
    return graph


def line_with_universal_root(line_length: int) -> Graph:
    """A line ``1..h`` plus one root ``"r"`` adjacent to every line vertex.

    This is the paper's generalization of Figure 2: the optimal Steiner
    tree (the bare line) has Wiener index ``Ω(h³)`` while including the
    root drops it to ``O(h²)`` — an unbounded Steiner-vs-Wiener gap.
    """
    graph = Graph(nodes=range(1, line_length + 1))
    for node in range(1, line_length):
        graph.add_edge(node, node + 1)
    graph.add_node("r")
    for node in range(1, line_length + 1):
        graph.add_edge("r", node)
    return graph


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """Return a clique with a path tail attached — a handy asymmetric test graph."""
    graph = complete_graph(clique_size)
    previous = clique_size - 1
    for offset in range(tail_length):
        node = clique_size + offset
        graph.add_node(node)
        graph.add_edge(previous, node)
        previous = node
    return graph


# ----------------------------------------------------------------------
# Random models
# ----------------------------------------------------------------------

def erdos_renyi(n: int, p: float, rng: random.Random | None = None) -> Graph:
    """Return a ``G(n, p)`` Erdős–Rényi graph.

    Uses the geometric skipping trick so generation is ``O(n + |E|)`` even
    for small ``p``.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability {p} outside [0, 1]")
    rng = rng or random.Random()
    graph = Graph(nodes=range(n))
    if p == 0.0:
        return graph
    if p == 1.0:
        return complete_graph(n)
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        gap = math.floor(math.log(1.0 - rng.random()) / log_q)
        w += 1 + gap
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def erdos_renyi_with_degree(n: int, average_degree: float,
                            rng: random.Random | None = None) -> Graph:
    """ER graph calibrated to a target average degree (``p = d / (n-1)``)."""
    if n < 2:
        return Graph(nodes=range(n))
    p = min(1.0, average_degree / (n - 1))
    return erdos_renyi(n, p, rng=rng)


def barabasi_albert_edges(
    n: int, attachment: int, rng: random.Random | None = None
):
    """The Barabási–Albert edge stream behind :func:`barabasi_albert`.

    Yields every edge exactly once, duplicate-free, in the order the dict
    builder inserts them, so both construction paths agree bit for bit.
    The graph is connected by construction (every node attaches into the
    existing component).
    """
    if attachment < 1 or attachment >= n:
        raise GraphError(f"need 1 <= attachment < n; got attachment={attachment}, n={n}")
    rng = rng or random.Random()
    return _barabasi_albert_stream(n, attachment, rng)


def _barabasi_albert_stream(n: int, attachment: int, rng: random.Random):
    # Seed with a star on the first attachment+1 nodes so every early node
    # has positive degree.  ``targets`` holds only ints: int hashing is
    # unsalted, so the set's iteration order is PYTHONHASHSEED-independent.
    repeated: list[int] = []
    for node in range(1, attachment + 1):
        yield 0, node
        repeated.extend((0, node))
    for node in range(attachment + 1, n):
        targets: set[int] = set()
        while len(targets) < attachment:
            targets.add(rng.choice(repeated))
        for target in targets:
            yield node, target
            repeated.extend((node, target))


def barabasi_albert(n: int, attachment: int, rng: random.Random | None = None) -> Graph:
    """Return a Barabási–Albert preferential-attachment (power-law) graph.

    Each new node attaches to ``attachment`` existing nodes chosen
    proportionally to degree.  This is the "PL" model of §6.6.
    """
    graph = Graph(nodes=range(n))
    for u, v in barabasi_albert_edges(n, attachment, rng):
        graph.add_edge(u, v)
    return graph


def watts_strogatz_edges(
    n: int, k: int, p: float, rng: random.Random | None = None
):
    """The Watts–Strogatz edge stream behind :func:`watts_strogatz`."""
    if k < 2 or k % 2:
        raise GraphError(f"k must be a positive even integer, got {k}")
    if k >= n:
        raise GraphError(f"need k < n; got k={k}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"rewiring probability {p} outside [0, 1]")
    rng = rng or random.Random()
    return _watts_strogatz_stream(n, k, p, rng)


def _watts_strogatz_stream(n: int, k: int, p: float, rng: random.Random):
    # Ring lattice (each node to its k/2 clockwise neighbors), each lattice
    # edge rewired to a uniform non-neighbor with probability p.  Adjacency
    # is tracked as one int key per edge — far lighter than dict-of-sets —
    # and a node already adjacent to everyone keeps its lattice edge.
    present: set[int] = set()
    degree = [0] * n

    def key(u: int, v: int) -> int:
        return u * n + v if u < v else v * n + u

    for offset in range(1, k // 2 + 1):
        for u in range(n):
            v = (u + offset) % n
            if p > 0 and rng.random() < p and degree[u] < n - 1:
                w = rng.randrange(n)
                while w == u or key(u, w) in present:
                    w = rng.randrange(n)
                v = w
            if v == u or key(u, v) in present:
                continue
            present.add(key(u, v))
            degree[u] += 1
            degree[v] += 1
            yield u, v


def watts_strogatz(
    n: int, k: int, p: float, rng: random.Random | None = None
) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    A ring lattice where every node joins its ``k`` nearest ring
    neighbors (``k`` even), each lattice edge rewired to a random
    non-neighbor with probability ``p`` — high clustering with short
    paths, the small-world regime between lattice (``p=0``) and
    near-random (``p=1``).
    """
    graph = Graph(nodes=range(n))
    for u, v in watts_strogatz_edges(n, k, p, rng):
        graph.add_edge(u, v)
    return graph


#: Graph500's reference R-MAT initiator — skewed enough for power-law-ish
#: degrees without degenerating at bench scales.
KRONECKER_INITIATOR = (0.57, 0.19, 0.19, 0.05)


def stochastic_kronecker_edges(
    scale: int,
    edge_factor: int,
    initiator: Sequence[float] = KRONECKER_INITIATOR,
    rng: random.Random | None = None,
):
    """The stochastic-Kronecker (R-MAT) stream behind :func:`stochastic_kronecker`."""
    if scale < 1:
        raise GraphError(f"scale must be at least 1, got {scale}")
    if edge_factor < 1:
        raise GraphError(f"edge_factor must be at least 1, got {edge_factor}")
    probs = [float(value) for value in initiator]
    if len(probs) != 4 or any(value < 0 for value in probs) or sum(probs) <= 0:
        raise GraphError(
            f"initiator must be 4 non-negative weights with positive sum, "
            f"got {initiator!r}"
        )
    total = sum(probs)
    probs = [value / total for value in probs]
    rng = rng or random.Random()
    return _kronecker_stream(scale, edge_factor, probs, rng)


def _kronecker_stream(
    scale: int, edge_factor: int, probs: list[float], rng: random.Random
):
    # Each sample descends the 2x2 initiator `scale` times, halving the
    # adjacency matrix into quadrants — the standard R-MAT recursion.
    # Self-loops and duplicates are re-drawn (bounded attempts, so a
    # saturated quadrant cannot loop forever).
    n = 1 << scale
    target = edge_factor * n
    threshold_a = probs[0]
    threshold_b = probs[0] + probs[1]
    threshold_c = probs[0] + probs[1] + probs[2]
    present: set[int] = set()
    attempts = 0
    max_attempts = 20 * target
    while len(present) < target and attempts < max_attempts:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            draw = rng.random()
            if draw < threshold_a:
                row = col = 0
            elif draw < threshold_b:
                row, col = 0, 1
            elif draw < threshold_c:
                row, col = 1, 0
            else:
                row = col = 1
            u = (u << 1) | row
            v = (v << 1) | col
        if u == v:
            continue
        edge_key = u * n + v if u < v else v * n + u
        if edge_key in present:
            continue
        present.add(edge_key)
        yield u, v


def stochastic_kronecker(
    scale: int,
    edge_factor: int,
    initiator: Sequence[float] = KRONECKER_INITIATOR,
    rng: random.Random | None = None,
) -> Graph:
    """Return a stochastic-Kronecker (R-MAT) graph on ``2**scale`` nodes.

    Samples ``edge_factor * 2**scale`` distinct edges by recursively
    descending the 2x2 ``initiator`` probability matrix (default: the
    Graph500 reference initiator) — heavy-tailed degrees and community
    structure from four numbers.  Hub-heavy quadrants may leave isolated
    vertices; :func:`connectify` stitches them when a single component is
    required.
    """
    graph = Graph(nodes=range(1 << scale))
    for u, v in stochastic_kronecker_edges(scale, edge_factor, initiator, rng):
        graph.add_edge(u, v)
    return graph


def configuration_model_edges(
    degrees: Sequence[int], rng: random.Random | None = None
):
    """The configuration-model stream behind :func:`configuration_model`."""
    sequence = [int(degree) for degree in degrees]
    if any(degree < 0 for degree in sequence):
        raise GraphError("degrees must be non-negative")
    if sum(sequence) % 2:
        raise GraphError(
            f"degree sum must be even, got {sum(sequence)}"
        )
    rng = rng or random.Random()
    return _configuration_stream(sequence, rng)


def _configuration_stream(degrees: list[int], rng: random.Random):
    # The classic stub-matching construction: each node contributes
    # ``degree`` stubs, a uniform shuffle pairs them, and the simple-graph
    # projection drops self-loops and repeated pairs (so realized degrees
    # may fall slightly short of the prescription — standard behavior).
    n = len(degrees)
    stubs: list[int] = []
    for node, degree in enumerate(degrees):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)
    present: set[int] = set()
    for position in range(0, len(stubs) - 1, 2):
        u = stubs[position]
        v = stubs[position + 1]
        if u == v:
            continue
        edge_key = u * n + v if u < v else v * n + u
        if edge_key in present:
            continue
        present.add(edge_key)
        yield u, v


def configuration_model(
    degrees: Sequence[int], rng: random.Random | None = None
) -> Graph:
    """Return a configuration-model graph with the prescribed degrees.

    Node ``i`` gets (up to) ``degrees[i]`` neighbors via uniform stub
    matching; the simple-graph projection silently drops self-loops and
    multi-edges.  Feed it a power-law sequence to get a scale-free graph
    with *exact* degree control — the knob the BA growth process lacks.
    """
    graph = Graph(nodes=range(len(degrees)))
    for u, v in configuration_model_edges(degrees, rng):
        graph.add_edge(u, v)
    return graph


def powerlaw_degrees(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int | None = None,
    rng: random.Random | None = None,
) -> list[int]:
    """A power-law degree sequence for :func:`configuration_model`.

    Degrees are drawn from ``P(d) ∝ d^-exponent`` over
    ``[min_degree, max_degree]`` (default cap ``√n``, the standard
    structural cutoff) by inverse-transform sampling; the last draw is
    bumped by one when needed to make the sum even.
    """
    if n < 1:
        raise GraphError(f"n must be at least 1, got {n}")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    if min_degree < 1:
        raise GraphError(f"min_degree must be at least 1, got {min_degree}")
    cap = max_degree if max_degree is not None else max(min_degree, int(math.isqrt(n)))
    if cap < min_degree:
        raise GraphError(
            f"max_degree {cap} below min_degree {min_degree}"
        )
    rng = rng or random.Random()
    # Inverse transform on the continuous Pareto tail, truncated and
    # floored to ints — close enough to discrete power law for workloads.
    alpha = 1.0 - exponent
    lo = min_degree ** alpha
    hi = (cap + 1) ** alpha
    degrees = []
    for _ in range(n):
        draw = lo + (hi - lo) * rng.random()
        degrees.append(min(cap, int(draw ** (1.0 / alpha))))
    if sum(degrees) % 2:
        degrees[-1] += 1
    return degrees


def planted_partition(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: random.Random | None = None,
) -> tuple[Graph, list[set[int]]]:
    """Return a planted-partition graph and its ground-truth communities.

    Nodes are numbered consecutively by community.  Intra-community edges
    appear with probability ``p_in``, inter-community edges with ``p_out``.
    This model stands in for the dblp/youtube ground-truth-community
    datasets (§6.4); afterwards call :func:`connectify` if you need a single
    component.
    """
    rng = rng or random.Random()
    total = sum(community_sizes)
    graph = Graph(nodes=range(total))
    communities: list[set[int]] = []
    start = 0
    for size in community_sizes:
        communities.append(set(range(start, start + size)))
        start += size
    membership = {}
    for index, community in enumerate(communities):
        for node in community:
            membership[node] = index
    # Intra-community edges: dense blocks generated per community.
    start = 0
    for size in community_sizes:
        block = _block_edges(start, size, p_in, rng)
        for u, v in block:
            graph.add_edge(u, v)
        start += size
    # Inter-community edges: sparse, sampled by expected count.
    if p_out > 0:
        nodes = list(range(total))
        expected = p_out * (total * (total - 1) / 2)
        trials = int(expected * 1.2) + 1
        for _ in range(trials):
            u = rng.choice(nodes)
            v = rng.choice(nodes)
            if u != v and membership[u] != membership[v]:
                graph.add_edge(u, v)
    return graph, communities


def _block_edges(start: int, size: int, p: float,
                 rng: random.Random) -> list[tuple[int, int]]:
    """Sample ``G(size, p)`` edges shifted to begin at node ``start``."""
    if p <= 0 or size < 2:
        return []
    block = erdos_renyi(size, p, rng=rng)
    return [(start + u, start + v) for u, v in block.edges()]


def random_geometric(n: int, radius: float,
                     rng: random.Random | None = None) -> Graph:
    """Return a random geometric graph on the unit square.

    Nodes get uniform positions; edges join pairs within ``radius``.  Grid
    bucketing keeps generation near-linear.  These near-planar sparse graphs
    are the model for our vienna-like (street-network) Steiner benchmarks.
    """
    rng = rng or random.Random()
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    graph = Graph(nodes=range(n))
    cell = max(radius, 1e-9)
    buckets: dict[tuple[int, int], list[int]] = {}
    for node, (x, y) in enumerate(positions):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(node)
    radius_sq = radius * radius
    for (bx, by), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                others = buckets.get((bx + dx, by + dy))
                if others is None:
                    continue
                for u in members:
                    ux, uy = positions[u]
                    for v in others:
                        if v <= u:
                            continue
                        vx, vy = positions[v]
                        if (ux - vx) ** 2 + (uy - vy) ** 2 <= radius_sq:
                            graph.add_edge(u, v)
    return graph


def connectify(graph: Graph, rng: random.Random | None = None) -> Graph:
    """Return ``graph`` with one random edge added between consecutive
    components, making it connected.

    Mutates and returns the input graph.  Random models frequently leave a
    few isolated vertices; the paper's experiments assume connected inputs,
    and stitching components with single edges perturbs the degree
    distribution far less than resampling.
    """
    rng = rng or random.Random()
    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    anchors = [rng.choice(sorted(component, key=repr)) for component in components]
    for previous, current in zip(anchors, anchors[1:]):
        graph.add_edge(previous, current)
    return graph
