"""Core graph data structures.

The paper works with simple, connected, undirected, unweighted graphs
(Section 2).  :class:`Graph` implements exactly that model with an
adjacency-set representation: ``O(1)`` edge queries, ``O(deg)`` neighbor
iteration, and cheap induced subgraphs.  :class:`WeightedGraph` adds
non-negative edge weights and is used for the Steiner-tree instances
``G_{r,λ}`` that the approximation algorithm constructs (Lemma 4).

Nodes may be any hashable object; experiments typically use ``int`` ids and
the case studies use strings (gene / user names).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

Node = Hashable
Edge = tuple[Node, Node]


class Graph:
    """A simple undirected, unweighted graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self-loops are rejected;
        duplicate edges are silently collapsed (the graph is simple).
    nodes:
        Optional iterable of isolated nodes to add in addition to the edge
        endpoints.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(
        self,
        edges: Iterable[Edge] | None = None,
        nodes: Iterable[Node] | None = None,
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node``; a no-op if it is already present."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops are not allowed in a simple graph).
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        NodeNotFoundError
            If the node is not present.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        self._num_edges -= len(self._adj[node])
        del self._adj[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the undirected edge ``{u, v}`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> set[Node]:
        """Return the neighbor set of ``node`` (do not mutate it).

        Raises
        ------
        NodeNotFoundError
            If the node is not present.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        return len(self.neighbors(node))

    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E|``."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: set[Node] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph ``G[S]`` on the given node set.

        Raises
        ------
        NodeNotFoundError
            If some requested node is not in the graph.
        """
        node_set = set(nodes)
        for node in node_set:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        sub = Graph(nodes=node_set)
        for u in node_set:
            for v in self._adj[u]:
                if v in node_set:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy of the graph structure."""
        clone = Graph()
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def relabeled(self) -> tuple["Graph", dict[Node, int]]:
        """Return an isomorphic copy with nodes relabeled ``0..n-1``.

        Returns the new graph and the ``old -> new`` mapping (insertion
        order — the same canonical order :mod:`repro.graphs.csr` uses).
        Useful before handing the graph to array-based numeric code; for
        the packed adjacency arrays themselves use
        :meth:`repro.graphs.csr.CSRGraph.from_graph`, which performs this
        relabeling internally.
        """
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabeled = Graph(nodes=mapping.values())
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(|V|={self.num_nodes}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")


class WeightedGraph:
    """An undirected graph with non-negative edge weights.

    Used for the reweighted Steiner instances ``G_{r,λ}`` of Lemma 4 and for
    parsing weighted SteinLib benchmarks.  The representation is an
    adjacency map ``node -> {neighbor: weight}``.

    Examples
    --------
    >>> g = WeightedGraph()
    >>> g.add_edge("a", "b", 2.5)
    >>> g.weight("a", "b")
    2.5
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[tuple[Node, Node, float]] | None = None) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    def add_node(self, node: Node) -> None:
        """Add ``node``; a no-op if it is already present."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_edge(self, u: Node, v: Node, weight: float) -> None:
        """Add edge ``{u, v}`` with the given weight (overwrites existing).

        Raises
        ------
        GraphError
            On self-loops or negative weights.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        if weight < 0:
            raise GraphError(f"negative weight {weight!r} on edge ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        """Reweight the *existing* edge ``{u, v}``.

        Unlike :meth:`add_edge` this never creates the edge, so a typo'd
        endpoint in a reweight delta fails loudly instead of silently
        growing the graph.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        GraphError
            If ``weight`` is negative.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        if weight < 0:
            raise GraphError(f"negative weight {weight!r} on edge ({u!r}, {v!r})")
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the edge ``{u, v}`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Return the weight of edge ``{u, v}``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def neighbors(self, node: Node) -> dict[Node, float]:
        """Return the ``{neighbor: weight}`` map of ``node``."""
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        return len(self.neighbors(node))

    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E|``."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over each undirected edge (with weight) exactly once."""
        seen: set[Node] = set()
        for u, neighbors in self._adj.items():
            for v, w in neighbors.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def unweighted(self) -> Graph:
        """Drop the weights and return the underlying :class:`Graph`."""
        plain = Graph(nodes=self._adj)
        for u, v, _ in self.edges():
            plain.add_edge(u, v)
        return plain

    @classmethod
    def from_graph(cls, graph: Graph, weight: float = 1.0) -> "WeightedGraph":
        """Lift an unweighted graph to a uniformly weighted one."""
        lifted = cls()
        for node in graph.nodes():
            lifted.add_node(node)
        for u, v in graph.edges():
            lifted.add_edge(u, v, weight)
        return lifted

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(|V|={self.num_nodes}, |E|={self.num_edges})"
