"""Summary statistics for graphs and solution subgraphs.

These are the columns of Table 1 (dataset summary: density, average degree,
clustering coefficient, effective diameter) and Table 3 (solution
characterization: size, density, betweenness, Wiener index).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances


def density(graph: Graph) -> float:
    """Return ``|E| / C(|V|, 2)``; 0 for graphs with fewer than two nodes."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)


def average_degree(graph: Graph) -> float:
    """Return the mean degree ``2|E| / |V|``; 0 for the empty graph."""
    if graph.num_nodes == 0:
        return 0.0
    return 2 * graph.num_edges / graph.num_nodes


def local_clustering(graph: Graph, node: object) -> float:
    """Return the local clustering coefficient of ``node``.

    The fraction of neighbor pairs that are themselves adjacent; 0 for
    degree < 2.
    """
    neighbors = list(graph.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        # Count each neighbor pair once by scanning u's adjacency inside the set.
        for v in neighbors[i + 1 :]:
            if graph.has_edge(u, v):
                links += 1
    del neighbor_set
    return 2 * links / (k * (k - 1))


def average_clustering(graph: Graph, sample_size: int | None = None,
                       rng: random.Random | None = None) -> float:
    """Return the mean local clustering coefficient over (a sample of) nodes.

    For large graphs pass ``sample_size`` to estimate on a uniform node
    sample, which is how large-graph clustering is conventionally reported.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    if sample_size is not None and sample_size < len(nodes):
        rng = rng or random.Random(0)
        nodes = rng.sample(nodes, sample_size)
    return sum(local_clustering(graph, node) for node in nodes) / len(nodes)


def effective_diameter(
    graph: Graph,
    percentile: float = 0.9,
    sample_size: int = 64,
    rng: random.Random | None = None,
) -> float:
    """Return the effective diameter: the distance within which ``percentile``
    of connected node pairs fall.

    Estimated from BFS out of a uniform sample of sources with linear
    interpolation between integer distances, matching the convention used by
    SNAP for the ``ed`` column in Table 1.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        return 0.0
    rng = rng or random.Random(0)
    sources = nodes if len(nodes) <= sample_size else rng.sample(nodes, sample_size)
    histogram: dict[int, int] = {}
    for source in sources:
        for dist in bfs_distances(graph, source).values():
            if dist > 0:
                histogram[dist] = histogram.get(dist, 0) + 1
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    threshold = percentile * total
    cumulative = 0
    previous_cumulative = 0
    for dist in sorted(histogram):
        previous_cumulative = cumulative
        cumulative += histogram[dist]
        if cumulative >= threshold:
            if cumulative == previous_cumulative:
                return float(dist)
            # Interpolate within the final distance bucket.
            fraction = (threshold - previous_cumulative) / (cumulative - previous_cumulative)
            return dist - 1 + fraction
    return float(max(histogram))


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Return ``{degree: count}`` over all nodes."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


@dataclass(frozen=True)
class GraphSummary:
    """The Table-1 row for a dataset."""

    name: str
    num_nodes: int
    num_edges: int
    density: float
    average_degree: float
    clustering: float
    effective_diameter: float

    def formatted(self) -> str:
        """Render the row in the paper's Table-1 style."""
        return (
            f"{self.name:<12} {self.num_nodes:>8} {self.num_edges:>9} "
            f"{self.density:>9.1e} {self.average_degree:>6.2f} "
            f"{self.clustering:>5.2f} {self.effective_diameter:>5.1f}"
        )


def summarize(graph: Graph, name: str = "graph",
              clustering_sample: int | None = 2000) -> GraphSummary:
    """Compute a full Table-1-style summary of ``graph``."""
    return GraphSummary(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        density=density(graph),
        average_degree=average_degree(graph),
        clustering=average_clustering(graph, sample_size=clustering_sample),
        effective_diameter=effective_diameter(graph),
    )
