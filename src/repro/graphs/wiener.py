"""Wiener index computation (Eq. (1) of the paper).

The Wiener index of a connected graph ``H`` is the sum of shortest-path
distances over unordered node pairs:

``W(H) = Σ_{ {u,v} ⊆ V(H) } d_H(u, v)``

For disconnected graphs the index is infinite.  Exact computation costs one
BFS per node (``O(|V| (|V| + |E|))``); for the large solutions produced by
baseline methods we also provide a pair-sampling estimator, matching the
paper's Remark 1 ("approximate the Wiener index" for large candidates).

Above :data:`CSR_DISPATCH_THRESHOLD` nodes (and when numpy is available),
:func:`wiener_index` and :func:`wiener_index_sampled` convert to the CSR
array backend once and run their BFS passes there — the ``O(|E|)``
relabeling is amortized over the traversals.  Distance sums are integers
(and the sampled estimator draws the same sources either way), so the
array paths return bit-identical values to the dict paths.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable

from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

#: Node count at which Wiener computation switches to the CSR backend;
#: below it the relabeling overhead exceeds the vectorization gain.
CSR_DISPATCH_THRESHOLD = 128


def _csr_or_none(graph: Graph):
    if graph.num_nodes < CSR_DISPATCH_THRESHOLD:
        return None
    from repro.graphs.csr import HAS_NUMPY, CSRGraph

    if not HAS_NUMPY:
        return None
    return CSRGraph.from_graph(graph)


def wiener_index(graph: Graph) -> float:
    """Return the exact Wiener index of ``graph``.

    Returns ``math.inf`` if the graph is disconnected, 0 for graphs with
    fewer than two nodes.  Large graphs are computed on the CSR array
    backend (same exact value, much lower constant factors).
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    csr = _csr_or_none(graph)
    if csr is not None:
        return csr.wiener_index()
    total = 0
    for node in graph.nodes():
        distances = bfs_distances(graph, node)
        if len(distances) != n:
            return math.inf
        total += sum(distances.values())
    # Each unordered pair was counted twice (once from each endpoint).
    return total / 2


def wiener_index_of_subset(graph: Graph, nodes: Iterable[Node]) -> float:
    """Return ``W(G[S])`` for a node subset ``S`` without materializing views
    the caller might mutate.

    Equivalent to ``wiener_index(graph.subgraph(nodes))``.
    """
    return wiener_index(graph.subgraph(nodes))


def rooted_distance_sum(graph: Graph, root: Node, csr=None) -> float:
    """Return ``Σ_v d_H(root, v)``; infinite if some node is unreachable.

    Callers that already hold a :class:`~repro.graphs.csr.CSRGraph` of
    ``graph`` can pass it as ``csr`` to run the BFS on the array backend
    (a one-shot conversion would cost more than the dict BFS it saves).
    """
    if csr is not None:
        return csr.rooted_distance_sum(csr.index_of[root])
    distances = bfs_distances(graph, root)
    if len(distances) != graph.num_nodes:
        return math.inf
    return float(sum(distances.values()))


def average_distance(graph: Graph) -> float:
    """Return the average pairwise distance ``W(H) / C(|V|, 2)``."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    index = wiener_index(graph)
    return index / (n * (n - 1) / 2)


def wiener_index_sampled(
    graph: Graph,
    num_sources: int,
    rng: random.Random | None = None,
) -> float:
    """Estimate the Wiener index by BFS from a random sample of sources.

    Samples ``num_sources`` distinct source nodes, averages their distance
    sums and extrapolates to all nodes.  The estimator is unbiased over the
    source choice and exact when ``num_sources >= |V|``.

    Returns ``math.inf`` if any sampled source fails to reach the whole
    graph (the graph is then certainly disconnected).
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    rng = rng or random.Random()
    if num_sources >= n:
        return wiener_index(graph)
    csr = _csr_or_none(graph)
    if csr is not None:
        # ``rng.sample`` draws the same positions for equal population
        # sizes, and index order is nodes() insertion order, so the CSR
        # path samples the very sources the dict path would — the integer
        # distance sums (and hence the estimate) are bit-identical.
        sources = rng.sample(range(n), num_sources)
        total = 0
        for source in sources:
            dist = csr.bfs_distances(source)
            if bool((dist < 0).any()):
                return math.inf
            total += int(dist.sum())
        return (total / num_sources) * n / 2
    all_nodes = list(graph.nodes())
    sources = rng.sample(all_nodes, num_sources)
    total = 0.0
    for source in sources:
        distances = bfs_distances(graph, source)
        if len(distances) != n:
            return math.inf
        total += sum(distances.values())
    # Scale the sampled one-to-all sums up to all n sources, then halve.
    return (total / num_sources) * n / 2


def distance_sum_lower_bound(
    graph: Graph, nodes: Iterable[Node]
) -> float:
    """Admissible lower bound on ``W(G[S])`` for any connector ``S ⊇ nodes``.

    Distances in an induced subgraph can only grow relative to the host
    graph, so the sum of *host-graph* distances over pairs of ``nodes`` is a
    valid lower bound on the Wiener index of every connector containing
    them.  Used by the branch-and-bound solver.
    """
    node_list = list(dict.fromkeys(nodes))
    total = 0.0
    for i, u in enumerate(node_list):
        distances = bfs_distances(graph, u)
        for v in node_list[i + 1 :]:
            d = distances.get(v)
            if d is None:
                return math.inf
            total += d
    return total
