"""Centrality measures: betweenness (Brandes), closeness, and PageRank.

Betweenness centrality is the paper's yardstick for "importance" of the
vertices a connector adds (Table 3's ``bc(H)`` column).  The PageRank power
iteration here is also the computational core shared by the ``ppr`` and
``cps`` baselines.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Mapping

from repro.errors import InvalidQueryError
from repro.graphs.graph import Graph, Node


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    sample_size: int | None = None,
    rng: random.Random | None = None,
) -> dict[Node, float]:
    """Return betweenness centrality of every node via Brandes' algorithm.

    Parameters
    ----------
    normalized:
        Divide by ``(n-1)(n-2)/2`` (the number of node pairs excluding the
        vertex itself) so values fall in ``[0, 1]``.
    sample_size:
        If given, accumulate dependencies only from a uniform sample of
        source nodes and extrapolate — the standard sampling estimator for
        large graphs.

    Notes
    -----
    Exact mode runs in ``O(|V| |E|)``.
    """
    nodes = list(graph.nodes())
    centrality: dict[Node, float] = {node: 0.0 for node in nodes}
    n = len(nodes)
    if n < 3:
        return centrality

    if sample_size is not None and sample_size < n:
        rng = rng or random.Random(0)
        sources = rng.sample(nodes, sample_size)
        scale_sources = n / sample_size
    else:
        sources = nodes
        scale_sources = 1.0

    for source in sources:
        _accumulate_brandes(graph, source, centrality)

    # Undirected graphs count each pair twice in the accumulation.
    scale = scale_sources / 2
    if normalized:
        scale /= (n - 1) * (n - 2) / 2
    return {node: value * scale for node, value in centrality.items()}


def _accumulate_brandes(graph: Graph, source: Node, centrality: dict[Node, float]) -> None:
    """One source iteration of Brandes' dependency accumulation."""
    stack: list[Node] = []
    predecessors: dict[Node, list[Node]] = {}
    sigma: dict[Node, float] = {source: 1.0}
    distance: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        stack.append(u)
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = distance[u] + 1
                queue.append(v)
            if distance[v] == distance[u] + 1:
                sigma[v] = sigma.get(v, 0.0) + sigma[u]
                predecessors.setdefault(v, []).append(u)
    delta: dict[Node, float] = {node: 0.0 for node in stack}
    while stack:
        w = stack.pop()
        for u in predecessors.get(w, ()):
            delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
        if w != source:
            centrality[w] += delta[w]


def average_betweenness(graph: Graph, nodes: Iterable[Node],
                        centrality: Mapping[Node, float] | None = None) -> float:
    """Return the mean betweenness (in ``graph``) over the given nodes.

    This is the ``bc(H)`` statistic of Table 3: centrality is measured in
    the *host* graph, averaged over the solution's vertices.
    """
    node_list = list(nodes)
    if not node_list:
        return 0.0
    if centrality is None:
        centrality = betweenness_centrality(graph)
    return sum(centrality[node] for node in node_list) / len(node_list)


def closeness_centrality(graph: Graph) -> dict[Node, float]:
    """Return closeness centrality ``(reachable-1) / Σ d(v, ·)`` per node,
    scaled by the reachable fraction (Wasserman–Faust) so disconnected
    graphs are handled gracefully."""
    from repro.graphs.traversal import bfs_distances

    n = graph.num_nodes
    closeness: dict[Node, float] = {}
    for node in graph.nodes():
        distances = bfs_distances(graph, node)
        total = sum(distances.values())
        reachable = len(distances)
        if total > 0 and n > 1:
            closeness[node] = ((reachable - 1) / total) * ((reachable - 1) / (n - 1))
        else:
            closeness[node] = 0.0
    return closeness


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    personalization: Mapping[Node, float] | None = None,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> dict[Node, float]:
    """Power-iteration PageRank with optional personalization vector.

    Parameters
    ----------
    damping:
        The restart/damping factor ``c`` (paper §6.1 uses 0.85).
    personalization:
        Restart distribution.  ``None`` means uniform; the ``ppr`` baseline
        passes the uniform distribution over the query set ``Q`` (standard
        PageRank personalized over the query vertices, following Kloumann &
        Kleinberg's recommendation cited in §6.1).
    max_iterations, tolerance:
        Iteration stops after ``max_iterations`` rounds (paper: 100) or when
        the L1 change drops below ``tolerance`` (paper: 1e-7).

    Returns
    -------
    dict
        Scores summing to 1 over all nodes.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    if personalization is None:
        restart = {node: 1.0 / n for node in nodes}
    else:
        total = float(sum(personalization.values()))
        if total <= 0:
            raise InvalidQueryError("personalization vector must have positive mass")
        for node in personalization:
            if not graph.has_node(node):
                raise InvalidQueryError(f"personalization node {node!r} not in graph")
        restart = {node: weight / total for node, weight in personalization.items()}

    scores = dict(restart) if personalization is not None else {n_: 1.0 / n for n_ in nodes}
    for node in nodes:
        scores.setdefault(node, 0.0)

    for _ in range(max_iterations):
        next_scores = {node: 0.0 for node in nodes}
        dangling_mass = 0.0
        for node in nodes:
            score = scores[node]
            degree = graph.degree(node)
            if degree == 0:
                dangling_mass += score
                continue
            share = score / degree
            for neighbor in graph.neighbors(node):
                next_scores[neighbor] += share
        # Dangling nodes redistribute their mass via the restart vector.
        for node in nodes:
            next_scores[node] = (
                damping * (next_scores[node] + dangling_mass * restart.get(node, 0.0))
                + (1 - damping) * restart.get(node, 0.0)
            )
        change = sum(abs(next_scores[node] - scores[node]) for node in nodes)
        scores = next_scores
        if change < tolerance:
            break
    return scores


def random_walk_with_restart(
    graph: Graph,
    seed: Node,
    restart_probability: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> dict[Node, float]:
    """Random walk with restart from a single seed node.

    Equivalent to :func:`pagerank` with a point-mass personalization on
    ``seed`` and damping ``1 - restart_probability``; this is the per-query
    building block of the Center-piece Subgraph baseline (Tong & Faloutsos).
    """
    return pagerank(
        graph,
        damping=1 - restart_probability,
        personalization={seed: 1.0},
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
