"""Landmark-based approximate distances (a lightweight distance oracle).

Section 6.6 notes that when the graph does not fit in memory one must fall
back on parallel or *approximate* shortest-distance computation (citing
Thorup–Zwick-style distance oracles).  This module provides the standard
practical variant: shortest-path tables from ``k`` landmark vertices,
estimating

``d(u, v) ≈ min_l  d(u, l) + d(l, v)``

which is always an upper bound (triangle inequality) and exact whenever
some landmark lies on a shortest ``u``-``v`` path.  High-degree landmark
selection works well on the heavy-tailed graphs the paper evaluates,
because hubs lie on many shortest paths.

The tables are **weight-aware**: on a :class:`~repro.graphs.graph.Graph`
(or a :class:`~repro.graphs.graph.WeightedGraph` whose weights are all
``1``) each landmark's table is a BFS hop count; on a genuinely weighted
graph it is a Dijkstra distance table.  This is what makes
:meth:`estimate` / :meth:`lower_bound` *provable* bounds on the true
shortest-path metric in both regimes — an earlier revision silently ran
unweighted BFS on weighted inputs, so its "bounds" could fall on the
wrong side of the truth, which would poison any pruning built on them.

The oracle also powers a fast Wiener-index estimator for very large
subgraphs, complementing the sampling estimator of
:mod:`repro.graphs.wiener`.

The unweighted tables are built with the CSR array BFS on large graphs
(or on a prebuilt :class:`~repro.graphs.csr.CSRGraph` passed in by the
caller — :class:`repro.core.service.ConnectorService` shares its serving
arrays this way), holding exactly the distances the dict BFS would
produce.  A CSR-only construction (``graph=None``) is supported so that
graph-less shard replicas, which receive nothing but the int arrays, can
still host an index.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graphs.graph import Graph, Node, WeightedGraph
from repro.graphs.traversal import bfs_distances, dijkstra


class LandmarkIndex:
    """Precomputed shortest-path distances from a set of landmark vertices.

    Parameters
    ----------
    graph:
        The host graph — a :class:`Graph` or a :class:`WeightedGraph`.
        May be ``None`` when a prebuilt ``csr`` is given (graph-less shard
        replicas build their index straight from the serving arrays).
    num_landmarks:
        How many landmarks to select (clamped to ``|V|``).
    strategy:
        ``"degree"`` (default) picks the highest-degree vertices — the
        best single heuristic on scale-free graphs; ``"random"`` samples
        uniformly.
    rng:
        Randomness for the ``"random"`` strategy.
    csr:
        An optional prebuilt :class:`~repro.graphs.csr.CSRGraph` of
        ``graph`` to run the landmark BFS passes on (the serving layer
        hands its shared arrays here).  When omitted, a CSR view is built
        on the fly for large unweighted graphs and numpy; either way the
        tables hold the same distances the dict traversal would produce.
        Ignored for table building on weighted graphs (hop counts are not
        distances there); weighted tables always come from Dijkstra.

    Examples
    --------
    >>> from repro.graphs.generators import path_graph
    >>> index = LandmarkIndex(path_graph(10), num_landmarks=2)
    >>> index.estimate(0, 9) >= 9
    True
    """

    #: Graphs at least this large run their landmark BFS on CSR arrays.
    CSR_THRESHOLD = 128

    def __init__(
        self,
        graph: Graph | WeightedGraph | None = None,
        num_landmarks: int = 16,
        strategy: str = "degree",
        rng: random.Random | None = None,
        csr=None,
    ) -> None:
        if num_landmarks < 1:
            raise GraphError("need at least one landmark")
        if strategy not in ("degree", "random"):
            raise GraphError(f"unknown landmark strategy {strategy!r}")
        if graph is None and csr is None:
            raise GraphError("LandmarkIndex needs a graph or a CSRGraph")
        self._graph = graph
        self._csr = csr
        # Weight-aware table dispatch: a WeightedGraph whose weights are
        # all exactly 1 is metrically an unweighted graph, so it keeps the
        # (cheaper, integer) BFS tables; any other weighted graph gets
        # Dijkstra tables.  Hop counts on a weighted graph are neither an
        # upper nor a lower bound on the metric, so they are never used
        # there.
        self._weighted = isinstance(graph, WeightedGraph) and any(
            w != 1 for _, _, w in graph.edges()
        )
        if graph is not None:
            nodes = list(graph.nodes())
            degree_of = graph.degree
        else:
            nodes = list(csr.node_of)
            indptr = csr.indptr
            index_of = csr.index_of
            degree_of = lambda node: int(
                indptr[index_of[node] + 1] - indptr[index_of[node]]
            )
        self._nodes = nodes
        num_landmarks = min(num_landmarks, len(nodes))
        if strategy == "degree":
            ranked = sorted(nodes, key=lambda node: (-degree_of(node), repr(node)))
            self.landmarks: list[Node] = ranked[:num_landmarks]
        else:
            rng = rng or random.Random(0)
            self.landmarks = rng.sample(nodes, num_landmarks)
        if (
            not self._weighted
            and csr is None
            and graph is not None
            and not isinstance(graph, WeightedGraph)
            and graph.num_nodes >= self.CSR_THRESHOLD
        ):
            from repro.graphs.csr import HAS_NUMPY, CSRGraph

            if HAS_NUMPY:
                csr = CSRGraph.from_graph(graph)
        self._tables: dict[Node, dict[Node, float]] = {
            landmark: self._table(landmark, csr) for landmark in self.landmarks
        }
        # The (k, n) float64 distance matrix behind the vectorized
        # estimate_many / lower_bound_many; built lazily on first use.
        self._matrix = None
        self._column_of: dict[Node, int] | None = None

    def _table(self, landmark: Node, csr) -> dict[Node, float]:
        """One landmark's distance table, on arrays when available."""
        if self._weighted:
            distances, _ = dijkstra(self._graph, landmark)
            return distances
        if csr is None:
            if isinstance(self._graph, WeightedGraph):
                # Unit-weight WeightedGraph: hop counts are the metric.
                distances, _ = dijkstra(self._graph, landmark)
                return {node: int(d) for node, d in distances.items()}
            return bfs_distances(self._graph, landmark)
        dist = csr.bfs_distances(csr.index_of[landmark])
        node_of = csr.node_of
        return {
            node_of[i]: int(d) for i, d in enumerate(dist.tolist()) if d >= 0
        }

    # ------------------------------------------------------------------
    # Scalar bounds
    # ------------------------------------------------------------------
    def estimate(self, u: Node, v: Node) -> float:
        """Upper-bound estimate of ``d(u, v)``.

        Returns ``math.inf`` — never raises — when ``u`` or ``v`` is
        unreachable from every landmark (disconnected graphs, vertices in
        landmark-less components): infinity *is* the correct upper bound
        there, and consumers like :meth:`wiener_estimate` propagate it
        arithmetically instead of special-casing missing tables.
        """
        if u == v:
            return 0.0
        best = math.inf
        for table in self._tables.values():
            du = table.get(u)
            dv = table.get(v)
            if du is not None and dv is not None:
                best = min(best, float(du + dv))
        return best

    def lower_bound(self, u: Node, v: Node) -> float:
        """Lower-bound estimate ``max_l |d(u,l) - d(l,v)|`` (also from the
        triangle inequality)."""
        if u == v:
            return 0.0
        best = 0.0
        for table in self._tables.values():
            du = table.get(u)
            dv = table.get(v)
            if du is not None and dv is not None:
                best = max(best, float(abs(du - dv)))
        return best

    # ------------------------------------------------------------------
    # Vectorized bounds
    # ------------------------------------------------------------------
    def _distance_matrix(self):
        """The lazily built ``(k, n)`` float64 table matrix, or ``None``.

        Row ``i`` holds landmark ``i``'s distances over every node column
        (``inf`` where the landmark does not reach the node) — the exact
        content of the dict tables, so the vectorized bounds below return
        the same floats as the scalar loops, bit for bit.
        """
        if self._matrix is not None:
            return self._matrix
        from repro.graphs.csr import HAS_NUMPY

        if not HAS_NUMPY:
            return None
        import numpy as np

        if self._column_of is None:
            self._column_of = {node: i for i, node in enumerate(self._nodes)}
        matrix = np.full((len(self.landmarks), len(self._nodes)), np.inf)
        for row, landmark in enumerate(self.landmarks):
            table = self._tables[landmark]
            for node, distance in table.items():
                matrix[row, self._column_of[node]] = distance
        self._matrix = matrix
        return matrix

    def estimate_many(self, pairs: Iterable[tuple[Node, Node]]) -> list[float]:
        """Vector form of :meth:`estimate` — one ``(k, p)`` array pass.

        Returns exactly what ``[self.estimate(u, v) for u, v in pairs]``
        returns (the scalar path is the fallback when numpy is absent):
        missing table entries contribute ``inf`` to the column minimum,
        which is precisely the scalar loop's skip-and-default behavior,
        and ``u == v`` columns are pinned to ``0.0`` before the reduction.
        """
        pair_list = list(pairs)
        matrix = self._distance_matrix()
        if matrix is None or not pair_list:
            return [self.estimate(u, v) for u, v in pair_list]
        import numpy as np

        column_of = self._column_of
        us = np.fromiter(
            (column_of[u] for u, _ in pair_list), dtype=np.int64,
            count=len(pair_list),
        )
        vs = np.fromiter(
            (column_of[v] for _, v in pair_list), dtype=np.int64,
            count=len(pair_list),
        )
        sums = matrix[:, us] + matrix[:, vs]
        best = sums.min(axis=0)
        best[us == vs] = 0.0
        return [float(value) for value in best]

    def lower_bound_many(self, pairs: Iterable[tuple[Node, Node]]) -> list[float]:
        """Vector form of :meth:`lower_bound`, pinned to the scalar path.

        A landmark missing either endpoint is excluded from the maximum
        (``inf - finite`` would otherwise fabricate an infinite "lower
        bound"); with no covering landmark the trivial ``0.0`` stands,
        exactly as in the scalar loop.
        """
        pair_list = list(pairs)
        matrix = self._distance_matrix()
        if matrix is None or not pair_list:
            return [self.lower_bound(u, v) for u, v in pair_list]
        import numpy as np

        column_of = self._column_of
        us = np.fromiter(
            (column_of[u] for u, _ in pair_list), dtype=np.int64,
            count=len(pair_list),
        )
        vs = np.fromiter(
            (column_of[v] for _, v in pair_list), dtype=np.int64,
            count=len(pair_list),
        )
        left = matrix[:, us]
        right = matrix[:, vs]
        valid = np.isfinite(left) & np.isfinite(right)
        # Zero-fill non-finite entries *before* subtracting: the masked
        # positions are discarded anyway, and ``inf - inf`` would emit a
        # spurious invalid-value warning on the way to the mask.
        gaps = np.where(valid, np.abs(np.where(valid, left, 0.0)
                                      - np.where(valid, right, 0.0)), 0.0)
        best = gaps.max(axis=0) if len(self.landmarks) else np.zeros(len(pair_list))
        best[us == vs] = 0.0
        return [float(value) for value in best]

    # ------------------------------------------------------------------
    # Wiener triage
    # ------------------------------------------------------------------
    def wiener_estimate(
        self,
        nodes: Iterable[Node] | None = None,
        sample_pairs: int | None = None,
        rng: random.Random | None = None,
    ) -> float:
        """Approximate the Wiener index of ``G[nodes]`` from the oracle.

        Uses host-graph estimates — an upper bound made of lower-boundable
        parts; intended for quick triage of very large candidate solutions
        (the Remark-1 situation), not for final reporting.  With
        ``sample_pairs`` set, estimates from a uniform pair sample.

        Inherits :meth:`estimate`'s unreachable-pair contract: any pair
        separated from every landmark contributes ``math.inf``, so the
        returned estimate is ``inf`` (a true upper bound) rather than an
        error — disconnected node sets are triaged as "unboundedly bad",
        never crash the sweep.
        """
        node_list = list(nodes) if nodes is not None else list(self._nodes)
        n = len(node_list)
        if n < 2:
            return 0.0
        total_pairs = n * (n - 1) // 2
        rng = rng or random.Random(0)
        if sample_pairs is not None and sample_pairs < total_pairs:
            total = 0.0
            for _ in range(sample_pairs):
                u, v = rng.sample(node_list, 2)
                total += self.estimate(u, v)
            return total / sample_pairs * total_pairs
        pairs = [
            (u, v)
            for i, u in enumerate(node_list)
            for v in node_list[i + 1 :]
        ]
        return float(sum(self.estimate_many(pairs)))

    def __len__(self) -> int:
        return len(self.landmarks)

    def __repr__(self) -> str:
        # len(self.landmarks) is the *post-clamp* landmark count: asking
        # for more landmarks than the graph has vertices reports what was
        # actually built, not what was requested.
        num_nodes = (
            self._graph.num_nodes if self._graph is not None
            else self._csr.num_nodes
        )
        return (
            f"{type(self).__name__}(landmarks={len(self.landmarks)}, "
            f"graph=|V|={num_nodes})"
        )
