"""Landmark-based approximate distances (a lightweight distance oracle).

Section 6.6 notes that when the graph does not fit in memory one must fall
back on parallel or *approximate* shortest-distance computation (citing
Thorup–Zwick-style distance oracles).  This module provides the standard
practical variant: BFS from ``k`` landmark vertices, estimating

``d(u, v) ≈ min_l  d(u, l) + d(l, v)``

which is always an upper bound (triangle inequality) and exact whenever
some landmark lies on a shortest ``u``-``v`` path.  High-degree landmark
selection works well on the heavy-tailed graphs the paper evaluates,
because hubs lie on many shortest paths.

The oracle also powers a fast Wiener-index estimator for very large
subgraphs, complementing the sampling estimator of
:mod:`repro.graphs.wiener`.

The tables are built with the CSR array BFS on large graphs (or on a
prebuilt :class:`~repro.graphs.csr.CSRGraph` passed in by the caller —
:class:`repro.core.service.ConnectorService` shares its serving arrays
this way), holding exactly the distances the dict BFS would produce.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances


class LandmarkIndex:
    """Precomputed BFS distances from a set of landmark vertices.

    Parameters
    ----------
    graph:
        The host graph.
    num_landmarks:
        How many landmarks to select.
    strategy:
        ``"degree"`` (default) picks the highest-degree vertices — the
        best single heuristic on scale-free graphs; ``"random"`` samples
        uniformly.
    rng:
        Randomness for the ``"random"`` strategy.
    csr:
        An optional prebuilt :class:`~repro.graphs.csr.CSRGraph` of
        ``graph`` to run the landmark BFS passes on (the serving layer
        hands its shared arrays here).  When omitted, a CSR view is built
        on the fly for large graphs and numpy; either way the tables hold
        the same distances the dict BFS would produce.

    Examples
    --------
    >>> from repro.graphs.generators import path_graph
    >>> index = LandmarkIndex(path_graph(10), num_landmarks=2)
    >>> index.estimate(0, 9) >= 9
    True
    """

    #: Graphs at least this large run their landmark BFS on CSR arrays.
    CSR_THRESHOLD = 128

    def __init__(
        self,
        graph: Graph,
        num_landmarks: int = 16,
        strategy: str = "degree",
        rng: random.Random | None = None,
        csr=None,
    ) -> None:
        if num_landmarks < 1:
            raise GraphError("need at least one landmark")
        if strategy not in ("degree", "random"):
            raise GraphError(f"unknown landmark strategy {strategy!r}")
        self._graph = graph
        nodes = list(graph.nodes())
        num_landmarks = min(num_landmarks, len(nodes))
        if strategy == "degree":
            nodes.sort(key=lambda node: (-graph.degree(node), repr(node)))
            self.landmarks: list[Node] = nodes[:num_landmarks]
        else:
            rng = rng or random.Random(0)
            self.landmarks = rng.sample(nodes, num_landmarks)
        if csr is None and graph.num_nodes >= self.CSR_THRESHOLD:
            from repro.graphs.csr import HAS_NUMPY, CSRGraph

            if HAS_NUMPY:
                csr = CSRGraph.from_graph(graph)
        self._tables: dict[Node, dict[Node, int]] = {
            landmark: self._table(landmark, csr) for landmark in self.landmarks
        }

    def _table(self, landmark: Node, csr) -> dict[Node, int]:
        """One landmark's distance table, on arrays when available."""
        if csr is None:
            return bfs_distances(self._graph, landmark)
        dist = csr.bfs_distances(csr.index_of[landmark])
        node_of = csr.node_of
        return {
            node_of[i]: int(d) for i, d in enumerate(dist.tolist()) if d >= 0
        }

    def estimate(self, u: Node, v: Node) -> float:
        """Upper-bound estimate of ``d(u, v)``.

        Returns ``math.inf`` — never raises — when ``u`` or ``v`` is
        unreachable from every landmark (disconnected graphs, vertices in
        landmark-less components): infinity *is* the correct upper bound
        there, and consumers like :meth:`wiener_estimate` propagate it
        arithmetically instead of special-casing missing tables.
        """
        if u == v:
            return 0.0
        best = math.inf
        for table in self._tables.values():
            du = table.get(u)
            dv = table.get(v)
            if du is not None and dv is not None:
                best = min(best, float(du + dv))
        return best

    def lower_bound(self, u: Node, v: Node) -> float:
        """Lower-bound estimate ``max_l |d(u,l) - d(l,v)|`` (also from the
        triangle inequality)."""
        if u == v:
            return 0.0
        best = 0.0
        for table in self._tables.values():
            du = table.get(u)
            dv = table.get(v)
            if du is not None and dv is not None:
                best = max(best, float(abs(du - dv)))
        return best

    def estimate_many(self, pairs: Iterable[tuple[Node, Node]]) -> list[float]:
        """Vector form of :meth:`estimate`."""
        return [self.estimate(u, v) for u, v in pairs]

    def wiener_estimate(
        self,
        nodes: Iterable[Node] | None = None,
        sample_pairs: int | None = None,
        rng: random.Random | None = None,
    ) -> float:
        """Approximate the Wiener index of ``G[nodes]`` from the oracle.

        Uses host-graph estimates — an upper bound made of lower-boundable
        parts; intended for quick triage of very large candidate solutions
        (the Remark-1 situation), not for final reporting.  With
        ``sample_pairs`` set, estimates from a uniform pair sample.

        Inherits :meth:`estimate`'s unreachable-pair contract: any pair
        separated from every landmark contributes ``math.inf``, so the
        returned estimate is ``inf`` (a true upper bound) rather than an
        error — disconnected node sets are triaged as "unboundedly bad",
        never crash the sweep.
        """
        node_list = list(nodes) if nodes is not None else list(self._graph.nodes())
        n = len(node_list)
        if n < 2:
            return 0.0
        total_pairs = n * (n - 1) // 2
        rng = rng or random.Random(0)
        if sample_pairs is not None and sample_pairs < total_pairs:
            total = 0.0
            for _ in range(sample_pairs):
                u, v = rng.sample(node_list, 2)
                total += self.estimate(u, v)
            return total / sample_pairs * total_pairs
        total = 0.0
        for i, u in enumerate(node_list):
            for v in node_list[i + 1 :]:
                total += self.estimate(u, v)
        return total

    def __len__(self) -> int:
        return len(self.landmarks)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(landmarks={len(self.landmarks)}, "
            f"graph=|V|={self._graph.num_nodes})"
        )
