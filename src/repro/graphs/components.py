"""Connectivity utilities: components, connectivity checks, spanning forests.

A *connector* (the paper's central object) is a connected subgraph containing
the query set, so nearly every algorithm here begins or ends with a
connectivity check.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph, Node


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return the connected components as a list of node sets.

    Components are reported in order of first-seen node; runs in
    ``O(|V| + |E|)``.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        queue: deque[Node] = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in component:
                    component.add(v)
                    queue.append(v)
        seen |= component
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """Return whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_nodes == 0:
        return True
    start = next(iter(graph.nodes()))
    reached = 1
    seen = {start}
    queue: deque[Node] = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                reached += 1
                queue.append(v)
    return reached == graph.num_nodes


def require_connected(graph: Graph) -> None:
    """Raise :class:`DisconnectedGraphError` unless the graph is connected."""
    if not is_connected(graph):
        raise DisconnectedGraphError(
            f"graph with {graph.num_nodes} nodes and {graph.num_edges} edges "
            "is not connected"
        )


def nodes_connect(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return whether the induced subgraph ``G[nodes]`` is connected and
    contains every node in ``nodes``.

    This is the feasibility test for connectors: a vertex set ``S ⊇ Q`` is a
    valid solution iff ``nodes_connect(G, S)``.
    """
    node_set = set(nodes)
    if not node_set:
        return True
    for node in node_set:
        if not graph.has_node(node):
            return False
    start = next(iter(node_set))
    seen = {start}
    queue: deque[Node] = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in node_set and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == len(node_set)


def largest_component(graph: Graph) -> set[Node]:
    """Return the node set of the largest connected component."""
    components = connected_components(graph)
    if not components:
        return set()
    return max(components, key=len)


def largest_component_subgraph(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest connected component.

    Generators use this to guarantee connected experiment graphs, matching
    the paper's assumption of connected inputs.
    """
    return graph.subgraph(largest_component(graph))


def spanning_forest_edges(graph: Graph) -> list[tuple[Node, Node]]:
    """Return the edges of an arbitrary BFS spanning forest."""
    seen: set[Node] = set()
    edges: list[tuple[Node, Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        seen.add(start)
        queue: deque[Node] = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    edges.append((u, v))
                    queue.append(v)
    return edges


def is_tree(graph: Graph) -> bool:
    """Return whether the graph is a tree (connected and ``|E| = |V| - 1``)."""
    if graph.num_nodes == 0:
        return True
    return graph.num_edges == graph.num_nodes - 1 and is_connected(graph)
