"""Shortest-path traversals: BFS for unweighted graphs, Dijkstra for weighted.

These routines are the workhorses of the whole library — the WienerSteiner
algorithm's complexity is dominated by ``|Q|`` single-source traversals
(Algorithm 1, line 1), and the Wiener index itself is an all-pairs BFS sum.

This module is the pure-Python ("dict") implementation.  The CSR array
backend (:mod:`repro.graphs.csr`) provides vectorized equivalents of the
BFS kernels; hot paths such as ``wiener_steiner(backend="csr")`` use those
directly, while these versions remain the reference implementation, the
fallback when numpy is unavailable, and the API for hashable node labels.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable

from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph, Node, WeightedGraph


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Return shortest-path distances from ``source`` to every reachable node.

    Runs in ``O(|V| + |E|)``.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not in the graph.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        next_distance = distances[u] + 1
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = next_distance
                queue.append(v)
    return distances


def bfs_tree(graph: Graph, source: Node) -> tuple[dict[Node, int], dict[Node, Node]]:
    """Return ``(distances, parents)`` of a BFS tree rooted at ``source``.

    ``parents`` maps every reachable node except the source to its BFS
    predecessor; following parent links yields a shortest path back to the
    source.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: dict[Node, int] = {source: 0}
    parents: dict[Node, Node] = {}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        next_distance = distances[u] + 1
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = next_distance
                parents[v] = u
                queue.append(v)
    return distances, parents


def bfs_limited(graph: Graph, source: Node, max_depth: int) -> dict[Node, int]:
    """BFS truncated at ``max_depth`` hops; returns distances ``<= max_depth``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        depth = distances[u]
        if depth == max_depth:
            continue
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = depth + 1
                queue.append(v)
    return distances


def multi_source_bfs(
    graph: Graph, sources: Iterable[Node]
) -> tuple[dict[Node, int], dict[Node, Node]]:
    """Multi-source BFS used by Mehlhorn's Steiner approximation.

    Returns ``(distances, closest_source)`` where ``closest_source[v]`` is
    the source whose BFS region ``v`` falls into (Voronoi partition of the
    graph around the sources, with ties broken by traversal order).
    """
    distances: dict[Node, int] = {}
    closest: dict[Node, Node] = {}
    queue: deque[Node] = deque()
    for source in sources:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        if source not in distances:
            distances[source] = 0
            closest[source] = source
            queue.append(source)
    while queue:
        u = queue.popleft()
        next_distance = distances[u] + 1
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = next_distance
                closest[v] = closest[u]
                queue.append(v)
    return distances, closest


def shortest_path(graph: Graph, source: Node, target: Node) -> list[Node] | None:
    """Return one shortest ``source -> target`` path, or ``None`` if unreachable.

    The search is bidirectional-free plain BFS but stops as soon as the
    target is settled, so queries between nearby nodes are fast.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents: dict[Node, Node] = {source: source}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in parents:
                continue
            parents[v] = u
            if v == target:
                return _reconstruct_path(parents, source, target)
            queue.append(v)
    return None


def _reconstruct_path(parents: dict[Node, Node], source: Node, target: Node) -> list[Node]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def dijkstra(
    graph: WeightedGraph, source: Node
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Single-source Dijkstra on a non-negatively weighted graph.

    Returns ``(distances, parents)``; unreachable nodes are absent from both
    maps.  Runs in ``O(|E| log |V|)`` with a binary heap.  Parents are
    tracked inline in the heap loop (the relaxing predecessor travels with
    each heap entry and is committed when the node settles) — no separate
    float-tolerance recovery pass is needed; see
    :func:`parents_from_dijkstra` for the standalone recovery utility.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: dict[Node, float] = {}
    parents: dict[Node, Node] = {}
    counter = 0  # tie-breaker so heterogeneous node types never get compared
    heap: list[tuple[float, int, Node, Node | None]] = [(0.0, counter, source, None)]
    tentative: dict[Node, float] = {source: 0.0}
    while heap:
        dist, _, u, parent = heapq.heappop(heap)
        if u in distances:
            continue
        distances[u] = dist
        if parent is not None:
            parents[u] = parent
        for v, weight in graph.neighbors(u).items():
            if v in distances:
                continue
            candidate = dist + weight
            if candidate < tentative.get(v, float("inf")):
                tentative[v] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, v, u))
    return distances, parents


def parents_from_dijkstra(
    graph: WeightedGraph, distances: dict[Node, float]
) -> dict[Node, Node]:
    """Recover a shortest-path-tree parent map from settled distances.

    For each settled node ``v`` (other than the root), pick any neighbor
    ``u`` with ``dist[u] + w(u, v) == dist[v]``; such a neighbor always
    exists.  Floating-point weights are compared with a small tolerance.
    """
    parents: dict[Node, Node] = {}
    for v, dist_v in distances.items():
        if dist_v == 0.0:
            continue
        for u, weight in graph.neighbors(v).items():
            dist_u = distances.get(u)
            if dist_u is None:
                continue
            if abs(dist_u + weight - dist_v) <= 1e-9 * max(1.0, dist_v):
                parents[v] = u
                break
    return parents


def multi_source_dijkstra(
    graph: WeightedGraph, sources: Iterable[Node]
) -> tuple[dict[Node, float], dict[Node, Node], dict[Node, Node]]:
    """Multi-source Dijkstra returning ``(distances, parents, closest_source)``.

    This is the first phase of Mehlhorn's Steiner-tree algorithm: it computes
    the weighted Voronoi partition of the graph around the terminal set.
    """
    distances: dict[Node, float] = {}
    parents: dict[Node, Node] = {}
    closest: dict[Node, Node] = {}
    counter = 0
    heap: list[tuple[float, int, Node, Node, Node | None]] = []
    for source in sources:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        heap.append((0.0, counter, source, source, None))
        counter += 1
    heapq.heapify(heap)
    while heap:
        dist, _, u, source, parent = heapq.heappop(heap)
        if u in distances:
            continue
        distances[u] = dist
        closest[u] = source
        if parent is not None:
            parents[u] = parent
        for v, weight in graph.neighbors(u).items():
            if v not in distances:
                counter += 1
                heapq.heappush(heap, (dist + weight, counter, v, source, u))
    return distances, parents, closest


def bfs_tree_canonical(
    graph: Graph, source: Node, order: dict[Node, int] | None = None
) -> tuple[dict[Node, int], dict[Node, Node]]:
    """BFS tree with *canonical* parents: the lowest-order previous-level neighbor.

    Plain :func:`bfs_tree` breaks parent ties by adjacency-set iteration
    order, which is an implementation accident.  Here ``parents[v]`` is the
    neighbor ``u`` with ``dist[u] == dist[v] - 1`` minimizing ``order[u]``
    (``order`` defaults to node insertion order — the same relabeling the
    CSR backend uses), so the dict and array backends build the exact same
    shortest-path tree.
    """
    if order is None:
        order = {node: index for index, node in enumerate(graph.nodes())}
    distances = bfs_distances(graph, source)
    parents: dict[Node, Node] = {}
    for v, dist_v in distances.items():
        if dist_v == 0:
            continue
        best: Node | None = None
        best_order = -1
        for u in graph.neighbors(v):
            if distances.get(u) != dist_v - 1:
                continue
            u_order = order[u]
            if best is None or u_order < best_order:
                best = u
                best_order = u_order
        parents[v] = best
    return distances, parents


def eccentricity(graph: Graph, source: Node) -> int:
    """Return the eccentricity of ``source`` within its connected component."""
    distances = bfs_distances(graph, source)
    return max(distances.values())
