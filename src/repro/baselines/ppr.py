"""``ppr`` — the personalized-PageRank seed-expansion baseline (§6.1).

Following Kloumann & Kleinberg's findings (cited in §1.1/§6.1), this is
*standard* PageRank (no degree normalization) personalized uniformly over
the query vertices: damping ``c = 0.85``, up to ``m = 100`` iterations,
convergence threshold ``ξ = 1e-7``.  The solution is grown greedily by
descending score until the query set becomes connected.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.baselines.common import greedy_connect, validate_query
from repro.core.result import ConnectorResult
from repro.graphs.centrality import pagerank
from repro.graphs.graph import Graph, Node

#: Defaults matching the paper's experimental setup.
DAMPING = 0.85
MAX_ITERATIONS = 100
TOLERANCE = 1e-7


def ppr_connector(
    graph: Graph,
    query: Iterable[Node],
    damping: float = DAMPING,
    max_iterations: int = MAX_ITERATIONS,
    tolerance: float = TOLERANCE,
) -> ConnectorResult:
    """Return the ``ppr`` baseline solution for ``query``.

    The returned connector's vertex set is ``Q`` plus every vertex added by
    the greedy expansion; the subgraph is the induced one.
    """
    started = time.perf_counter()
    query_set = validate_query(graph, query)
    scores = pagerank(
        graph,
        damping=damping,
        personalization={q: 1.0 for q in query_set},
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
    solution = greedy_connect(graph, query_set, scores)
    return ConnectorResult(
        host=graph,
        nodes=frozenset(solution),
        query=query_set,
        method="ppr",
        metadata={
            "damping": damping,
            "runtime_seconds": time.perf_counter() - started,
        },
    )
