"""Shared machinery for the score-and-expand baselines (``ppr`` and ``cps``).

Both random-walk baselines produce a relevance score per vertex and then
grow a solution greedily: starting from the query set, repeatedly add the
highest-scoring missing vertex until the query vertices become connected in
the induced subgraph (§6.1: "we greedily add to the solution the
highest-score vertex, until we connect the vertices in Q").
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.graphs.graph import Graph, Node
from repro.graphs.unionfind import UnionFind


def validate_query(graph: Graph, query: Iterable[Node]) -> frozenset[Node]:
    """Return the query as a frozenset, raising on empty/unknown vertices."""
    query_set = frozenset(query)
    if not query_set:
        raise InvalidQueryError("query set must be non-empty")
    missing = [q for q in query_set if not graph.has_node(q)]
    if missing:
        raise InvalidQueryError(
            f"query vertices not in graph: {sorted(map(repr, missing))}"
        )
    return query_set


def greedy_connect(
    graph: Graph,
    query: frozenset[Node],
    scores: Mapping[Node, float],
) -> set[Node]:
    """Grow ``query`` by descending score until it induces a connected set.

    Connectivity is tracked incrementally with a union–find over the
    vertices added so far, so the whole expansion costs
    ``O(|V| log |V| + |E| α(|V|))``.

    Raises
    ------
    DisconnectedGraphError
        If even the full vertex set fails to connect the query (the host
        graph does not connect them).
    """
    solution: set[Node] = set(query)
    forest = UnionFind(solution)
    for u in solution:
        for v in graph.neighbors(u):
            if v in solution:
                forest.union(u, v)

    query_list = list(query)
    anchor = query_list[0]

    def connected() -> bool:
        return all(forest.connected(anchor, q) for q in query_list[1:])

    if connected():
        return solution

    ranked = sorted(
        (node for node in graph.nodes() if node not in solution),
        key=lambda node: (-scores.get(node, 0.0), repr(node)),
    )
    for node in ranked:
        solution.add(node)
        forest.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor in solution:
                forest.union(node, neighbor)
        if connected():
            return _query_component(forest, solution, anchor)
    raise DisconnectedGraphError("query vertices are not connected in the host graph")


def _query_component(
    forest: UnionFind, solution: set[Node], anchor: Node
) -> set[Node]:
    """Drop vertices the greedy pass added that never attached to the query.

    High-scoring vertices may join the solution without (yet) touching the
    query's component; keeping them would make the induced subgraph
    disconnected, which is not a valid connector.
    """
    return {node for node in solution if forest.connected(node, anchor)}
