"""The comparison methods of the paper's evaluation (§6.1).

======  ==========================================================
tag     method
======  ==========================================================
ws-q    WienerSteiner, the paper's algorithm (:mod:`repro.core`)
st      Steiner tree (Mehlhorn's 2-approximation)
ppr     personalized PageRank seed expansion
cps     Center-piece Subgraph (RWR + Hadamard product)
ctp     Cocktail-Party community search (BFS-restricted greedy)
======  ==========================================================

Every ``METHODS`` value satisfies the :class:`repro.core.options.Method`
protocol — ``solve(graph, query, options)`` plus a ``name`` tag — so the
experiment harness, the CLI, and :class:`repro.core.service.ConnectorService`
dispatch every method uniformly through :class:`SolveOptions` instead of
per-method keyword soups.  The entries remain *callable* with the legacy
``(graph, query, **kwargs)`` convention, so pre-redesign call sites keep
working unchanged.
"""

from collections.abc import Iterable

from repro.baselines.cps import cps_connector
from repro.baselines.ctp import ctp_connector
from repro.baselines.ppr import ppr_connector
from repro.baselines.steiner_baseline import steiner_connector
from repro.core.options import FunctionMethod, Method, SolveOptions
from repro.core.result import ConnectorResult
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.graph import Graph, Node

#: Back-compat alias — the registry's value type used to be a bare
#: ``Callable[[Graph, Iterable[Node]], ConnectorResult]``.
ConnectorMethod = Method


class _WienerSteinerMethod:
    """``ws-q`` as a :class:`Method`: a throwaway service per solve."""

    name = "ws-q"

    def solve(
        self,
        graph: Graph,
        query: Iterable[Node],
        options: SolveOptions | None = None,
    ) -> ConnectorResult:
        from repro.core.service import ConnectorService

        if options is not None and options.method not in ("ws-q",):
            options = options.replace(method="ws-q")
        return ConnectorService(
            graph, options, max_cached_roots=None
        ).solve(query)

    def __call__(self, graph: Graph, query: Iterable[Node], **kwargs):
        return wiener_steiner(graph, query, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}({self.name!r})"


METHODS: dict[str, Method] = {
    "ws-q": _WienerSteinerMethod(),
    "st": FunctionMethod("st", steiner_connector),
    "ppr": FunctionMethod("ppr", ppr_connector),
    "cps": FunctionMethod("cps", cps_connector),
    "ctp": FunctionMethod("ctp", ctp_connector),
}

__all__ = [
    "METHODS",
    "ConnectorMethod",
    "Method",
    "cps_connector",
    "ctp_connector",
    "ppr_connector",
    "steiner_connector",
]
