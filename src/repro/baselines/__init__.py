"""The comparison methods of the paper's evaluation (§6.1).

======  ==========================================================
tag     method
======  ==========================================================
ws-q    WienerSteiner, the paper's algorithm (:mod:`repro.core`)
st      Steiner tree (Mehlhorn's 2-approximation)
ppr     personalized PageRank seed expansion
cps     Center-piece Subgraph (RWR + Hadamard product)
ctp     Cocktail-Party community search (BFS-restricted greedy)
======  ==========================================================

``METHODS`` maps tags to callables with the uniform signature
``(graph, query) -> ConnectorResult`` for the experiment harness.
"""

from collections.abc import Callable, Iterable

from repro.baselines.cps import cps_connector
from repro.baselines.ctp import ctp_connector
from repro.baselines.ppr import ppr_connector
from repro.baselines.steiner_baseline import steiner_connector
from repro.core.result import ConnectorResult
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.graph import Graph, Node

ConnectorMethod = Callable[[Graph, Iterable[Node]], ConnectorResult]

METHODS: dict[str, ConnectorMethod] = {
    "ws-q": wiener_steiner,
    "st": steiner_connector,
    "ppr": ppr_connector,
    "cps": cps_connector,
    "ctp": ctp_connector,
}

__all__ = [
    "METHODS",
    "ConnectorMethod",
    "cps_connector",
    "ctp_connector",
    "ppr_connector",
    "steiner_connector",
]
