"""``st`` — the Steiner-tree baseline.

Mehlhorn's 2-approximation (the same subroutine ``ws-q`` uses internally,
as §6.1 notes) applied directly to the unweighted host graph with the query
set as terminals.  The connector is the vertex set of the resulting tree.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.baselines.common import validate_query
from repro.core.result import ConnectorResult
from repro.core.steiner import steiner_tree_unweighted
from repro.graphs.graph import Graph, Node


def steiner_connector(graph: Graph, query: Iterable[Node]) -> ConnectorResult:
    """Return the ``st`` baseline solution for ``query``.

    Notes
    -----
    Like every :class:`ConnectorResult`, the reported subgraph is the
    subgraph *induced* by the tree's vertex set (the paper restricts
    attention to induced solutions; for the Steiner objective only the
    vertex count matters, and the tree itself is available from
    :func:`repro.core.steiner.steiner_tree_unweighted` when needed).
    """
    started = time.perf_counter()
    query_set = validate_query(graph, query)
    tree = steiner_tree_unweighted(graph, query_set)
    return ConnectorResult(
        host=graph,
        nodes=frozenset(tree.nodes()),
        query=query_set,
        method="st",
        metadata={
            "tree_edges": tree.num_edges,
            "runtime_seconds": time.perf_counter() - started,
        },
    )
