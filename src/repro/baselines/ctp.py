"""``ctp`` — the Cocktail-Party / community-search baseline
(Sozio & Gionis, KDD'10), in the size-limited variant the paper runs.

The original parameter-free algorithm greedily peels minimum-degree
vertices from the *whole* graph and returns the intermediate subgraph with
the largest minimum degree that still connects the query.  The paper found
this "typically returns too large solutions (often with a size comparable
to the original graph)", so §6.1 prescribes the variant implemented here:

1. from each query vertex, grow a BFS ball until it covers the whole query
   set (each ball is a connected subgraph containing ``Q``);
2. keep the smallest of these ``|Q|`` balls;
3. run the Sozio–Gionis greedy peeling on that ball.

Step 3 exploits Sozio & Gionis' structural characterization instead of
literal vertex-by-vertex peeling: the greedy's optimum — the connected
subgraph containing ``Q`` of maximum minimum degree — is exactly the
component containing ``Q`` of the largest ``k``-core that keeps the query
together.  A k-core decomposition finds it in ``O(|E|)``, which is what
makes the large Table-3/Table-4 workloads tractable in pure Python.  The
literal peeling loop is retained as ``greedy_peel`` for small graphs and
for cross-checking the equivalence in tests.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.baselines.common import validate_query
from repro.core.result import ConnectorResult
from repro.errors import DisconnectedGraphError
from repro.graphs.components import connected_components
from repro.graphs.cores import max_core_component_with
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances


def ctp_connector(graph: Graph, query: Iterable[Node]) -> ConnectorResult:
    """Return the ``ctp`` baseline solution for ``query``."""
    started = time.perf_counter()
    query_set = validate_query(graph, query)

    ball = _smallest_covering_ball(graph, query_set)
    subgraph = graph.subgraph(ball)
    solution, min_degree = max_core_component_with(subgraph, query_set)

    return ConnectorResult(
        host=graph,
        nodes=frozenset(solution),
        query=query_set,
        method="ctp",
        metadata={
            "ball_size": len(ball),
            "min_degree": min_degree,
            "runtime_seconds": time.perf_counter() - started,
        },
    )


def _smallest_covering_ball(graph: Graph, query_set: frozenset[Node]) -> set[Node]:
    """Step 1–2: the smallest BFS ball (over query-vertex centers) covering Q."""
    best: set[Node] | None = None
    for center in sorted(query_set, key=repr):
        distances = bfs_distances(graph, center)
        missing = [q for q in query_set if q not in distances]
        if missing:
            raise DisconnectedGraphError(
                f"query vertices {sorted(map(repr, missing))} unreachable "
                f"from {center!r}"
            )
        radius = max(distances[q] for q in query_set)
        ball = {node for node, dist in distances.items() if dist <= radius}
        if best is None or len(ball) < len(best):
            best = ball
    assert best is not None
    return best


def greedy_peel(subgraph: Graph, query_set: frozenset[Node]) -> set[Node]:
    """Sozio–Gionis greedy: peel min-degree vertices, track the best subgraph.

    The literal peeling loop — quadratic, so only suitable for small
    graphs; the production path goes through the k-core characterization.
    Returns the vertex set of the intermediate subgraph with maximum
    minimum degree (ties: fewest vertices) among all feasible steps.
    """
    current = subgraph.copy()
    _restrict_to_query_component(current, query_set)

    best_nodes = set(current.nodes())
    best_min_degree = _min_degree(current)

    while current.num_nodes > len(query_set):
        victim = _min_degree_removable(current, query_set)
        if victim is None:
            break
        current.remove_node(victim)
        if not _restrict_to_query_component(current, query_set):
            break
        min_degree = _min_degree(current)
        if min_degree > best_min_degree or (
            min_degree == best_min_degree and current.num_nodes < len(best_nodes)
        ):
            best_min_degree = min_degree
            best_nodes = set(current.nodes())
    return best_nodes


def _min_degree(graph: Graph) -> int:
    if graph.num_nodes == 0:
        return 0
    return min(graph.degree(node) for node in graph.nodes())


def _min_degree_removable(graph: Graph, query_set: frozenset[Node]) -> Node | None:
    """The minimum-degree non-query vertex, or None if only query remains."""
    best: Node | None = None
    best_degree = None
    for node in graph.nodes():
        if node in query_set:
            continue
        degree = graph.degree(node)
        if best_degree is None or degree < best_degree:
            best = node
            best_degree = degree
    return best


def _restrict_to_query_component(graph: Graph, query_set: frozenset[Node]) -> bool:
    """Drop every component not containing Q; False if Q got split."""
    components = connected_components(graph)
    home = None
    for component in components:
        if query_set <= component:
            home = component
            break
        if query_set & component:
            return False  # the query is split across components
    if home is None:
        return False
    for component in components:
        if component is not home:
            for node in component:
                graph.remove_node(node)
    return True
