"""``cps`` — the Center-piece Subgraph baseline (Tong & Faloutsos, KDD'06).

One random walk with restart per query vertex (restart parameter
``c = 0.85``, i.e. restart probability ``0.15``; ``m = 100`` iterations;
threshold ``ξ = 1e-7``, as in §6.1), combined with the Hadamard
(component-wise) product — a vertex scores high only when it is close to
*all* query vertices simultaneously (the "AND" center-piece semantics).
As in the paper's setup, no budget is imposed a priori: the solution is
grown greedily by descending combined score until the query connects.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable

from repro.baselines.common import greedy_connect, validate_query
from repro.core.result import ConnectorResult
from repro.graphs.centrality import random_walk_with_restart
from repro.graphs.graph import Graph, Node

#: Defaults matching the paper's experimental setup (restart c = 0.85).
RESTART = 0.85
MAX_ITERATIONS = 100
TOLERANCE = 1e-7


def cps_connector(
    graph: Graph,
    query: Iterable[Node],
    restart: float = RESTART,
    max_iterations: int = MAX_ITERATIONS,
    tolerance: float = TOLERANCE,
) -> ConnectorResult:
    """Return the ``cps`` baseline solution for ``query``.

    Notes
    -----
    Raw RWR scores are multiplied in log-space to avoid underflow on large
    graphs (the Hadamard product of ``|Q|`` probability vectors is tiny).
    """
    started = time.perf_counter()
    query_set = validate_query(graph, query)
    combined: dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    floor = 1e-300
    for q in sorted(query_set, key=repr):
        walk = random_walk_with_restart(
            graph,
            q,
            restart_probability=1 - restart,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )
        for node in combined:
            combined[node] += math.log(max(walk.get(node, 0.0), floor))
    solution = greedy_connect(graph, query_set, combined)
    return ConnectorResult(
        host=graph,
        nodes=frozenset(solution),
        query=query_set,
        method="cps",
        metadata={
            "restart": restart,
            "runtime_seconds": time.perf_counter() - started,
        },
    )
