"""Command-line interface: ``repro <experiment>`` or ``python -m repro``.

Examples
--------
::

    repro list                          # show available experiments
    repro figure2                       # the Steiner-vs-Wiener gadget (instant)
    repro table2                        # approximation quality vs certified bounds
    repro query email 3 17 42           # run ws-q on a dataset with an ad-hoc query
    repro query email --batch q.txt     # serve a whole batch from one index
    repro query email --batch q.txt --shards 4   # ...sharded over 4 processes
    repro query email 3 17 42 --json    # machine-readable output

Ad-hoc queries are served through
:class:`repro.core.service.ConnectorService`: the dataset is indexed once
and every query of the invocation (one positional query, a ``--batch``
file, or both) reuses the same CSR arrays and caches.  With ``--shards N``
the batch is routed across N persistent shard processes
(:class:`repro.core.sharded.ShardedConnectorService`) instead —
bit-identical answers, parallel solving.  Batch files hold one
whitespace-separated query per line, or a JSON list of vertex lists.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Minimum Wiener Connector Problem' "
            "(SIGMOD 2015): run paper experiments or ad-hoc queries."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    for name, module in EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else name
        sub.add_parser(name, help=summary)

    query = sub.add_parser(
        "query", help="run a connector method on a dataset with query sets"
    )
    query.add_argument("dataset", help="stand-in dataset name (see `repro list`)")
    query.add_argument("vertices", nargs="*", type=int, help="query vertex ids")
    query.add_argument("--method", default="ws-q",
                       help="ws-q, st, ppr, cps or ctp (default ws-q)")
    query.add_argument("--batch", metavar="FILE",
                       help="file of additional queries: one whitespace-"
                            "separated query per line, or a JSON list of "
                            "vertex lists")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="emit one JSON document instead of text")
    query.add_argument("--beta", type=float, default=1.0,
                       help="λ-grid resolution of Algorithm 1 (default 1.0)")
    query.add_argument("--selection", default="auto",
                       choices=("a", "wiener", "auto", "sampled"),
                       help="candidate scoring policy (default auto)")
    query.add_argument("--backend", default="auto",
                       choices=("auto", "csr", "dict"),
                       help="solver backend (default auto)")
    query.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve the batch through N persistent shard "
                            "processes (default 0: one in-process service); "
                            "answers are bit-identical either way")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        from repro.datasets import dataset_names

        print("experiments:")
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()
            print(f"  {name:10s} {doc[0] if doc else ''}")
        print("\ndatasets (synthetic stand-ins):")
        print("  " + ", ".join(dataset_names()))
        return 0
    if args.command == "query":
        return _run_query(args)
    EXPERIMENTS[args.command].main()
    return 0


def _canonical_sort(values):
    """Sort labels canonically: numerically when comparable, else by type
    name and repr — never the lexicographic-repr order that ranks 10
    before 2."""
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=lambda v: (type(v).__name__, repr(v)))


def _read_batch(path: str) -> list[list[int]]:
    """Parse a batch file: JSON list-of-lists or one query per line."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith(("[", "{")):
        payload = json.loads(text)
        if isinstance(payload, dict):
            payload = payload.get("queries", [])
        if payload and all(isinstance(entry, (int, str)) for entry in payload):
            payload = [payload]  # a flat list is one query, not a list of them
        queries = [[int(v) for v in entry] for entry in payload]
    else:
        queries = [
            [int(token) for token in line.split()]
            for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
    return [q for q in queries if q]


def _run_query(args: argparse.Namespace) -> int:
    from repro.baselines import METHODS
    from repro.core.options import SolveOptions
    from repro.core.service import ConnectorService
    from repro.datasets import load_dataset

    if args.method not in METHODS:
        print(f"unknown method {args.method!r}; choose from {sorted(METHODS)}",
              file=sys.stderr)
        return 2

    queries: list[list[int]] = []
    if args.vertices:
        queries.append(args.vertices)
    if args.batch:
        try:
            queries.extend(_read_batch(args.batch))
        except (OSError, TypeError, ValueError) as exc:
            print(f"cannot read batch file {args.batch!r}: {exc}",
                  file=sys.stderr)
            return 2
    if not queries:
        print("no queries: pass vertex ids and/or --batch FILE",
              file=sys.stderr)
        return 2

    graph = load_dataset(args.dataset)
    missing = _canonical_sort(
        {v for query in queries for v in query if not graph.has_node(v)}
    )
    if missing:
        known = _canonical_sort(graph.nodes())
        print(
            f"vertices not in graph: {missing} (dataset {args.dataset!r} has "
            f"{len(known)} vertices: {known[0]!r} .. {known[-1]!r})",
            file=sys.stderr,
        )
        return 2

    if args.shards < 0:
        print(f"--shards must be non-negative, got {args.shards}",
              file=sys.stderr)
        return 2

    options = SolveOptions(
        method=args.method,
        beta=args.beta,
        selection=args.selection,
        backend=args.backend,
    )
    if args.shards:
        from repro.core.sharded import ShardedConnectorService

        with ShardedConnectorService(
            graph, options, n_shards=args.shards
        ) as service:
            results = service.solve_many(queries)
    else:
        service = ConnectorService(graph, options)
        results = service.solve_many(queries)

    if args.as_json:
        document = {
            "dataset": args.dataset,
            "method": args.method,
            "results": [
                {
                    "query": _canonical_sort(result.query),
                    "nodes": _canonical_sort(result.nodes),
                    "added": _canonical_sort(result.added_nodes),
                    "size": result.size,
                    "wiener_index": result.wiener_index,
                    "density": result.density,
                    "metadata": {
                        key: value
                        for key, value in result.metadata.items()
                        if isinstance(value, (int, float, str, bool, type(None)))
                    },
                }
                for result in results
            ],
        }
        print(json.dumps(document, indent=2))
        return 0

    for query, result in zip(queries, results):
        if len(results) > 1:
            print(f"query {_canonical_sort(set(query))}:")
        print(result.summary())
        print(f"added vertices: {_canonical_sort(result.added_nodes)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
