"""Command-line interface: ``repro <experiment>`` or ``python -m repro``.

Examples
--------
::

    repro list                 # show available experiments
    repro figure2              # the Steiner-vs-Wiener gadget (instant)
    repro table2               # approximation quality vs certified bounds
    repro query email 3 17 42  # run ws-q on a dataset with an ad-hoc query
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Minimum Wiener Connector Problem' "
            "(SIGMOD 2015): run paper experiments or ad-hoc queries."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    for name, module in EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else name
        sub.add_parser(name, help=summary)

    query = sub.add_parser("query", help="run ws-q on a dataset with a query set")
    query.add_argument("dataset", help="stand-in dataset name (see `repro list`)")
    query.add_argument("vertices", nargs="+", type=int, help="query vertex ids")
    query.add_argument("--method", default="ws-q",
                       help="ws-q, st, ppr, cps or ctp (default ws-q)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        from repro.datasets import dataset_names

        print("experiments:")
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()
            print(f"  {name:10s} {doc[0] if doc else ''}")
        print("\ndatasets (synthetic stand-ins):")
        print("  " + ", ".join(dataset_names()))
        return 0
    if args.command == "query":
        return _run_query(args)
    EXPERIMENTS[args.command].main()
    return 0


def _run_query(args: argparse.Namespace) -> int:
    from repro.baselines import METHODS
    from repro.datasets import load_dataset

    if args.method not in METHODS:
        print(f"unknown method {args.method!r}; choose from {sorted(METHODS)}",
              file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset)
    missing = [v for v in args.vertices if not graph.has_node(v)]
    if missing:
        print(f"vertices not in graph: {missing} (graph has 0..{graph.num_nodes - 1})",
              file=sys.stderr)
        return 2
    result = METHODS[args.method](graph, args.vertices)
    print(result.summary())
    print(f"added vertices: {sorted(map(repr, result.added_nodes))}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
