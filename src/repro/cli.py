"""Command-line interface: ``repro <experiment>`` or ``python -m repro``.

Examples
--------
::

    repro list                          # show available experiments
    repro figure2                       # the Steiner-vs-Wiener gadget (instant)
    repro table2                        # approximation quality vs certified bounds
    repro query email 3 17 42           # run ws-q on a dataset with an ad-hoc query
    repro query email --batch q.txt     # serve a whole batch from one index
    repro query email --batch q.txt --shards 4   # ...sharded over 4 processes
    repro query email 3 17 42 --json    # machine-readable output
    repro serve email --port 8765       # persistent JSON-lines TCP server
    repro serve email --port 8765 --shards 4     # ...over 4 shard processes
    repro shard-host email --port 8766  # one shard replica, served over TCP
    repro serve email --shards 10.0.0.5:8766,10.0.0.6:8766   # remote shards
    repro serve email --shards 4 --replication 2   # replicated, self-healing
    repro ping 10.0.0.5:8766            # health-probe a shard-host daemon
    repro mutate email --edges delta.txt           # offline delta dry-run
    repro mutate email --edges delta.txt --port 8765   # mutate a live server
    repro trace synth t.jsonl email --requests 500     # synthesize a load trace
    repro trace record t.jsonl --target 127.0.0.1:8765 # record live traffic
    repro replay t.jsonl --target 127.0.0.1:8765 --slo slo.json  # fire + gate

Ad-hoc queries are served through
:class:`repro.core.service.ConnectorService`: the dataset is indexed once
and every query of the invocation (one positional query, a ``--batch``
file, or both) reuses the same CSR arrays and caches.  With ``--shards N``
the batch is routed across N persistent shard processes
(:class:`repro.core.sharded.ShardedConnectorService`) instead —
bit-identical answers, parallel solving.  ``--shards`` also accepts a
comma-separated list of shard specs (``host:port`` for a ``repro
shard-host`` daemon — possibly on another machine — or ``local`` for an
in-process worker), so one router can front a mixed ring.  Batch files
hold one whitespace-separated query per line, or a JSON list of vertex
lists.

``repro serve`` turns the same stack into a persistent daemon: an
:class:`~repro.core.gateway.AsyncGateway` micro-batches
concurrently-arriving requests into ``solve_many`` windows (coalescing
identical in-flight queries) behind the JSON-lines TCP protocol of
:mod:`repro.serving` — one request per line, one connector per line.
``repro shard-host`` runs the other side of the shard transport: one
service replica answering ``sweep`` requests for any router that passes
the graph-digest handshake (see :mod:`repro.serving.remote`).

``repro trace`` and ``repro replay`` are the scenario harness
(:mod:`repro.loadgen`): ``trace synth`` writes a deterministic JSONL
load trace (Zipf-skewed queries, Poisson arrivals with a burst
envelope), ``trace record`` captures live server traffic through a
transparent recording proxy, and ``replay`` fires a trace open-loop at a
running daemon, reporting latency percentiles, throughput, and
shed/coalesce rates — optionally gated by an ``--slo`` envelope (exit 1
on violation).  ``repro query --batch`` also accepts a trace file
directly: the offsets are ignored and the queries run as one batch.

With ``--replication R`` (R ≥ 2) each key range is served by R distinct
replicas on the ring: a dead shard degrades the deployment instead of
failing it (in-flight sweeps fail over to a surviving replica, the slot
heals with backoff), and ``--heartbeat-interval`` /
``--liveness-deadline`` tune how fast silence is noticed.  ``repro
ping`` is the matching supervisor primitive: a handshake-free liveness
probe of one shard-host daemon, reporting round-trip time and the
daemon's health counters (exit 0 alive, 1 unreachable).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Minimum Wiener Connector Problem' "
            "(SIGMOD 2015): run paper experiments or ad-hoc queries."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    for name, module in EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else name
        sub.add_parser(name, help=summary)

    query = sub.add_parser(
        "query", help="run a connector method on a dataset with query sets"
    )
    query.add_argument("dataset", help="stand-in dataset name (see `repro list`)")
    query.add_argument("vertices", nargs="*", type=int, help="query vertex ids")
    query.add_argument("--method", default="ws-q",
                       help="ws-q, st, ppr, cps or ctp (default ws-q)")
    query.add_argument("--batch", metavar="FILE",
                       help="file of additional queries: one whitespace-"
                            "separated query per line, or a JSON list of "
                            "vertex lists")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="emit one JSON document instead of text")
    query.add_argument("--beta", type=float, default=1.0,
                       help="λ-grid resolution of Algorithm 1 (default 1.0)")
    query.add_argument("--selection", default="auto",
                       choices=("a", "wiener", "auto", "sampled"),
                       help="candidate scoring policy (default auto)")
    query.add_argument("--backend", default="auto",
                       choices=("auto", "csr", "dict"),
                       help="solver backend (default auto)")
    query.add_argument("--no-prune", action="store_true",
                       help="disable certified λ×root sweep pruning "
                            "(ablation; the connector is bit-identical "
                            "either way, pruning is only faster)")
    query.add_argument("--shards", default="0", metavar="N|SPECS",
                       help="serve the batch through persistent shards: a "
                            "count N of local shard processes (default 0: "
                            "one in-process service), or a comma-separated "
                            "list of specs — host:port of a `repro "
                            "shard-host` daemon, or `local` (answers are "
                            "bit-identical either way)")
    _add_health_flags(query)

    serve = sub.add_parser(
        "serve",
        help="run a persistent JSON-lines TCP connector server on a dataset",
    )
    serve.add_argument("dataset", help="stand-in dataset name (see `repro list`)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 asks the OS for a free one "
                            "(default 8765)")
    serve.add_argument("--shards", default="0", metavar="N|SPECS",
                       help="back the gateway with persistent shards: a "
                            "count N of local shard processes (default 0: "
                            "one in-process service), or a comma-separated "
                            "list of specs — host:port of a `repro "
                            "shard-host` daemon, or `local`")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="most requests per gateway window (default 32)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="longest a window waits for more arrivals "
                            "(default 2.0 ms)")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admission-queue bound; arrivals beyond it "
                            "backpressure (default 1024)")
    _add_health_flags(serve)

    shard_host = sub.add_parser(
        "shard-host",
        help="run one shard replica as a TCP daemon for remote routers",
    )
    shard_host.add_argument("dataset",
                            help="stand-in dataset name (see `repro list`)")
    shard_host.add_argument("--host", default="127.0.0.1",
                            help="bind address (default 127.0.0.1)")
    shard_host.add_argument("--port", type=int, default=8766,
                            help="TCP port; 0 asks the OS for a free one "
                                 "(default 8766)")

    mutate = sub.add_parser(
        "mutate",
        help="apply an edge delta to a dataset index or a running server",
    )
    mutate.add_argument("dataset",
                        help="stand-in dataset name (see `repro list`)")
    mutate.add_argument("--edges", metavar="FILE", required=True,
                        help="delta file, one op per line: `+ u v` insert, "
                             "`- u v` delete, `= u v w` reweight; a bare "
                             "`u v` inserts; `#` starts a comment")
    mutate.add_argument("--host", default="127.0.0.1",
                        help="server address for --port (default 127.0.0.1)")
    mutate.add_argument("--port", type=int, default=0,
                        help="send the delta to a running `repro serve` "
                             "daemon on this port instead of applying "
                             "offline (default 0: offline dry-run)")
    mutate.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON document instead of text")

    trace = sub.add_parser(
        "trace", help="synthesize or record JSONL load traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command")

    synth = trace_sub.add_parser(
        "synth",
        help="deterministically synthesize a trace from a dataset's "
             "component-aware query pool",
    )
    synth.add_argument("out", help="trace file to write (JSONL)")
    synth.add_argument("dataset",
                       help="stand-in dataset name (see `repro list`)")
    synth.add_argument("--requests", type=int, default=200,
                       help="number of request records (default 200)")
    synth.add_argument("--query-size", type=int, default=5,
                       help="vertices per query (default 5)")
    synth.add_argument("--pool-size", type=int, default=16,
                       help="distinct queries in the popularity pool, "
                            "hottest first (default 16)")
    synth.add_argument("--mean-gap-ms", type=float, default=50.0,
                       help="mean arrival gap in ms (default 50.0)")
    synth.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf popularity exponent over the pool; 0 is "
                            "uniform (default 1.1)")
    synth.add_argument("--burst-amplitude", type=float, default=0.0,
                       help="relative amplitude of the sinusoidal rate "
                            "envelope, in [0, 1) (default 0: constant rate)")
    synth.add_argument("--burst-period-s", type=float, default=60.0,
                       help="period of the burst envelope in seconds "
                            "(default 60)")
    synth.add_argument("--seed", type=int, default=0,
                       help="RNG seed; equal knobs give byte-equal traces "
                            "(default 0)")

    record = trace_sub.add_parser(
        "record",
        help="record live solve traffic through a transparent proxy",
    )
    record.add_argument("out", help="trace file to write (JSONL)")
    record.add_argument("--target", required=True, metavar="HOST:PORT",
                        help="address of the live `repro serve` daemon")
    record.add_argument("--host", default="127.0.0.1",
                        help="proxy bind address (default 127.0.0.1)")
    record.add_argument("--port", type=int, default=0,
                        help="proxy TCP port; 0 asks the OS for a free one "
                             "(default 0)")
    record.add_argument("--duration", type=float, default=0.0,
                        metavar="SECONDS",
                        help="stop recording after this long (default 0: "
                             "record until Ctrl-C)")

    replay = sub.add_parser(
        "replay",
        help="fire a trace open-loop at a live server and report/gate",
    )
    replay.add_argument("trace", help="trace file to replay (JSONL)")
    replay.add_argument("--target", required=True, metavar="HOST:PORT",
                        help="address of the live `repro serve` daemon")
    replay.add_argument("--speed", type=float, default=1.0,
                        help="time-scale the arrival schedule; 2.0 fires "
                             "twice as fast (default 1.0)")
    replay.add_argument("--slo", metavar="FILE",
                        help="JSON SLO envelope to gate on; any violated "
                             "bound exits 1")
    replay.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON document instead of text")

    ping = sub.add_parser(
        "ping",
        help="health-probe a `repro shard-host` daemon (rtt + counters)",
    )
    ping.add_argument("address", metavar="HOST:PORT",
                      help="address of the shard-host daemon to probe")
    ping.add_argument("--json", action="store_true", dest="as_json",
                      help="emit one JSON document instead of text")
    ping.add_argument("--timeout", type=float, default=5.0,
                      help="seconds to wait for the pong (default 5.0); a "
                           "hung daemon counts as unreachable")

    lint = sub.add_parser(
        "lint",
        help="run the project's AST invariant checker (repro.analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro, falling "
             "back to the current directory)",
    )
    lint.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run (e.g. RPR001,RPR003); "
             "default runs every registered rule",
    )
    lint.add_argument(
        "--ignore", metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report (stable ordering) "
             "instead of text",
    )
    lint.add_argument(
        "--explain", metavar="RPR00x",
        help="print a rule's rationale and its minimal bad/good fixture "
             "pair, then exit",
    )
    return parser


def _add_health_flags(command: argparse.ArgumentParser) -> None:
    """The replicated-ring knobs shared by ``query`` and ``serve``."""
    command.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="distinct replicas per key range on the shard ring (default "
             "1: a dead shard fails the batch; R >= 2: it fails over to a "
             "surviving replica and heals with backoff). Needs --shards "
             "with at least R slots",
    )
    command.add_argument(
        "--heartbeat-interval", type=float, default=15.0, metavar="SECONDS",
        help="ping idle remote shard links this often, marking silent "
             "replicas suspect before a batch touches them (default 15.0; "
             "0 disables idle heartbeats)",
    )
    command.add_argument(
        "--liveness-deadline", type=float, default=30.0, metavar="SECONDS",
        help="mid-batch silence from a busy shard tolerated before it is "
             "probed and, if unreachable, declared dead (default 30.0; 0 "
             "waits forever, bounded only by ~60s TCP keepalive)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        from repro.datasets import dataset_names

        print("experiments:")
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()
            print(f"  {name:10s} {doc[0] if doc else ''}")
        print("\ndatasets (synthetic stand-ins):")
        print("  " + ", ".join(dataset_names()))
        return 0
    if args.command == "query":
        return _run_query(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "shard-host":
        return _run_shard_host(args)
    if args.command == "mutate":
        return _run_mutate(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "ping":
        return _run_ping(args)
    if args.command == "lint":
        return _run_lint(args)
    EXPERIMENTS[args.command].main()
    return 0


def _parse_shards(value: str):
    """Parse ``--shards``: a local count or a comma-separated spec list.

    Returns ``("count", n)`` for a plain integer or ``("specs", [...])``
    for a list of ``host:port`` / ``local`` entries (validated through
    :func:`repro.core.sharded.normalize_shard_spec`, the same rules the
    service itself enforces).  Raises ``ValueError`` with a message fit
    for direct stderr printing.
    """
    text = value.strip()
    try:
        count = int(text)
    except ValueError:
        pass
    else:
        if count < 0:
            raise ValueError(f"--shards must be non-negative, got {count}")
        return "count", count
    from repro.core.sharded import normalize_shard_spec

    specs = [part.strip() for part in text.split(",") if part.strip()]
    if not specs:
        raise ValueError(
            f"--shards must be a count or a comma-separated spec list, "
            f"got {value!r}"
        )
    for spec in specs:
        normalize_shard_spec(spec)  # raises on a malformed entry
    return "specs", specs


def _check_replication(args: argparse.Namespace, shards) -> None:
    """Fail a bad ``--replication`` before any dataset loads or shard spawns."""
    kind, value = shards
    slots = value if kind == "count" else len(value)
    if args.replication < 1:
        raise ValueError(
            f"--replication must be at least 1, got {args.replication}"
        )
    if args.replication > 1 and slots == 0:
        raise ValueError(
            f"--replication {args.replication} needs a shard ring; pass "
            f"--shards with at least {args.replication} slots"
        )
    if args.replication > slots > 0:
        raise ValueError(
            f"--replication {args.replication} needs at least that many "
            f"shard slots, got {slots}"
        )


def _health_kwargs(args: argparse.Namespace) -> dict:
    """The replicated-ring knobs of `_add_health_flags`, service-shaped.

    Zero means "off" on the CLI (argparse has no None literal); the
    service spells that ``None``.
    """
    return {
        "replication": args.replication,
        "heartbeat_interval": (
            args.heartbeat_interval if args.heartbeat_interval > 0 else None
        ),
        "liveness_deadline": (
            args.liveness_deadline if args.liveness_deadline > 0 else None
        ),
    }


def _make_batch_service(graph, options, shards, health: dict | None = None):
    """The serving backend of one CLI invocation (shared query/serve path)."""
    kind, value = shards
    if kind == "count" and value == 0:
        from repro.core.service import ConnectorService

        return ConnectorService(graph, options)
    from repro.core.sharded import ShardedConnectorService

    kwargs = dict(health or {})
    if kind == "count":
        return ShardedConnectorService(graph, options, n_shards=value, **kwargs)
    return ShardedConnectorService(graph, options, shards=value, **kwargs)


def _canonical_sort(values):
    """Canonical label order (shared with the serving wire format)."""
    from repro.serving.protocol import canonical_sort

    return canonical_sort(values)


def _read_batch(path: str) -> list[list[int]]:
    """Parse a batch file: JSON list-of-lists, one query per line, or a
    JSONL load trace (arrival offsets ignored; the queries run as one
    batch)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    first_line = stripped.splitlines()[0] if stripped else ""
    if first_line.startswith("{"):
        try:
            head = json.loads(first_line)
        except json.JSONDecodeError:
            head = None
        if isinstance(head, dict) and head.get("kind") == "header":
            from repro.loadgen.trace import Trace

            trace = Trace.loads(text)
            return [[int(v) for v in record.query] for record in trace.records]
    if stripped.startswith(("[", "{")):
        payload = json.loads(text)
        if isinstance(payload, dict):
            payload = payload.get("queries", [])
        if payload and all(isinstance(entry, (int, str)) for entry in payload):
            payload = [payload]  # a flat list is one query, not a list of them
        queries = [[int(v) for v in entry] for entry in payload]
    else:
        queries = [
            [int(token) for token in line.split()]
            for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
    return [q for q in queries if q]


def _run_query(args: argparse.Namespace) -> int:
    from repro.baselines import METHODS
    from repro.core.options import SolveOptions
    from repro.datasets import load_dataset

    if args.method not in METHODS:
        print(f"unknown method {args.method!r}; choose from {sorted(METHODS)}",
              file=sys.stderr)
        return 2

    queries: list[list[int]] = []
    if args.vertices:
        queries.append(args.vertices)
    if args.batch:
        try:
            queries.extend(_read_batch(args.batch))
        except (OSError, TypeError, ValueError) as exc:
            print(f"cannot read batch file {args.batch!r}: {exc}",
                  file=sys.stderr)
            return 2
    if not queries and not args.batch:
        print("no queries: pass vertex ids and/or --batch FILE",
              file=sys.stderr)
        return 2
    # An explicitly provided --batch file with nothing in it is an empty
    # workload, not a usage error: the invocation proceeds (validating the
    # dataset and shard topology as usual) and reports zero queries.

    try:
        shards = _parse_shards(args.shards)
        _check_replication(args, shards)
    except ValueError as exc:
        # Pure-string validation, so a malformed --shards fails before the
        # dataset is loaded and indexed (same order as `repro serve`).
        print(exc, file=sys.stderr)
        return 2

    graph = load_dataset(args.dataset)
    missing = _canonical_sort(
        {v for query in queries for v in query if not graph.has_node(v)}
    )
    if missing:
        known = _canonical_sort(graph.nodes())
        print(
            f"vertices not in graph: {missing} (dataset {args.dataset!r} has "
            f"{len(known)} vertices: {known[0]!r} .. {known[-1]!r})",
            file=sys.stderr,
        )
        return 2

    options = SolveOptions(
        method=args.method,
        beta=args.beta,
        selection=args.selection,
        backend=args.backend,
        prune=not args.no_prune,
    )
    wants_footer = bool(args.batch) and not args.as_json
    try:
        service = _make_batch_service(
            graph, options, shards, _health_kwargs(args)
        )
    except (RuntimeError, OSError) as exc:
        # A refused handshake or an unreachable shard host is a topology
        # problem the operator must fix, not a traceback.
        print(f"cannot build the shard topology: {exc}", file=sys.stderr)
        return 2
    with service:
        started = time.perf_counter()
        results = service.solve_many(queries)
        elapsed = time.perf_counter() - started
        # Only the footer reads the stats, and a sharded stats() is a
        # scatter/gather over every shard link — skip the dead IPC.
        stats = service.stats() if wants_footer and queries else None

    if args.as_json:
        from repro.serving.protocol import result_to_payload

        # One connector-document shape for both surfaces: this is the
        # same payload the TCP server sends per request.
        document = {
            "dataset": args.dataset,
            "method": args.method,
            "results": [result_to_payload(result) for result in results],
        }
        print(json.dumps(document, indent=2))
        return 0

    for query, result in zip(queries, results):
        if len(results) > 1:
            print(f"query {_canonical_sort(set(query))}:")
        print(result.summary())
        print(f"added vertices: {_canonical_sort(result.added_nodes)}")
    if wants_footer:
        if not queries:
            # The empty-workload footer: no timing averages over nothing.
            print("batch: 0 queries")
            return 0
        # Batch mode used to drop its timing on the floor; surface the
        # serving picture the JSON path always had.  "Served warm" folds
        # the sharded router's in-flight dedup into the cache hits so the
        # number is comparable across --shards 0 and --shards N (the
        # router answers intra-batch duplicates before any shard cache
        # sees them).
        warm = stats.result_hits + getattr(stats, "inflight_deduped", 0)
        print(
            f"batch: {len(queries)} queries in {elapsed:.2f}s "
            f"({elapsed / len(queries) * 1e3:.1f} ms/query, "
            f"{warm} served warm, {warm / len(queries):.0%} of batch)"
        )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.gateway import AsyncGateway
    from repro.datasets import load_dataset
    from repro.serving.server import GatewayServer

    try:
        shards = _parse_shards(args.shards)
        _check_replication(args, shards)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not 0 <= args.port <= 65535:
        print(f"--port must be in 0..65535, got {args.port}",
              file=sys.stderr)
        return 2
    gateway_tunables = dict(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
    )
    try:
        # Probe-construct to validate the tunables: the constructor never
        # touches the service, and letting it own the rules keeps the CLI
        # from duplicating (and drifting from) the gateway's validation —
        # while still failing before a dataset loads or shards spawn.
        AsyncGateway(None, **gateway_tunables)
    except ValueError as exc:
        print(f"invalid serving option: {exc}", file=sys.stderr)
        return 2

    graph = load_dataset(args.dataset)
    try:
        service = _make_batch_service(graph, None, shards, _health_kwargs(args))
    except (RuntimeError, OSError) as exc:
        print(f"cannot build the shard topology: {exc}", file=sys.stderr)
        return 2

    async def run() -> int:
        with service:
            gateway = AsyncGateway(service, **gateway_tunables)
            try:
                try:
                    server = await GatewayServer(
                        gateway, args.host, args.port
                    ).start()
                except OSError as exc:
                    # Bind failures (port in use, unresolvable --host) are
                    # user errors, not tracebacks.  Scoped to the bind: an
                    # OSError later in the serving lifetime (say a broken
                    # stdout pipe) must not masquerade as one.
                    print(f"cannot bind {args.host}:{args.port}: {exc}",
                          file=sys.stderr)
                    return 2
                try:
                    kind, value = shards
                    if kind == "specs":
                        backing = f"shards [{', '.join(value)}]"
                    elif value:
                        backing = f"{value} shard processes"
                    else:
                        backing = "one in-process service"
                    print(
                        f"serving {args.dataset!r} ({graph.num_nodes} vertices, "
                        f"{graph.num_edges} edges) over {backing}",
                        flush=True,
                    )
                    # The tests (and any supervisor) parse this line for
                    # the bound port, so its shape is part of the CLI API.
                    print(f"listening on {server.host}:{server.port}", flush=True)
                    bound_ports = {address[1] for address in server.addresses}
                    if len(bound_ports) > 1:
                        # A dual-stack host name with --port 0 gets a
                        # different ephemeral port per address family; the
                        # parseable line above can only announce one.
                        print(
                            f"warning: {args.host!r} bound multiple address "
                            f"families on different ports {sorted(bound_ports)}; "
                            "bind a single-family address (e.g. 127.0.0.1) "
                            "when using --port 0",
                            file=sys.stderr,
                            flush=True,
                        )
                    await server.wait_shutdown()
                    print("shutdown requested; draining", flush=True)
                finally:
                    await server.aclose()
            finally:
                await gateway.aclose()
        stats = gateway.stats()
        print(
            f"served {stats.results_served} results in "
            f"{stats.windows_dispatched} windows "
            f"({stats.coalesced} coalesced, {stats.shed} shed)",
            flush=True,
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _read_delta(path: str):
    """Parse a delta file into a :class:`~repro.core.versioned.GraphDelta`.

    One op per line: ``+ u v`` inserts, ``- u v`` deletes, ``= u v w``
    reweights; a bare ``u v`` is an insert.  ``#`` starts a comment.
    The GraphDelta constructor then enforces the batch rules (no
    duplicate edge across ops, no self-loops, non-empty).
    """
    from repro.core.versioned import GraphDelta

    inserts, deletes, reweights = [], [], []
    with open(path, encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            op = "+"
            if tokens[0] in ("+", "-", "="):
                op, tokens = tokens[0], tokens[1:]
            try:
                if op == "=" and len(tokens) == 3:
                    reweights.append(
                        (int(tokens[0]), int(tokens[1]), float(tokens[2]))
                    )
                elif op in ("+", "-") and len(tokens) == 2:
                    target = inserts if op == "+" else deletes
                    target.append((int(tokens[0]), int(tokens[1])))
                else:
                    raise ValueError("wrong arity")
            except ValueError:
                raise ValueError(
                    f"line {number}: expected `+ u v`, `- u v` or "
                    f"`= u v w`, got {raw.strip()!r}"
                ) from None
    return GraphDelta(
        inserts=tuple(inserts),
        deletes=tuple(deletes),
        reweights=tuple(reweights),
    )


def _run_mutate(args: argparse.Namespace) -> int:
    """``repro mutate`` — the operator's edge-delta primitive.

    Offline (no ``--port``): loads the dataset, applies the delta to a
    fresh index, and reports the new epoch/digest — a dry-run that
    answers "does this delta apply, and what version does it produce?"
    before it is shipped anywhere.  With ``--port``, sends the delta to
    a running ``repro serve`` daemon as the pure-JSON ``mutate`` op, so
    the live gateway (and its whole shard ring) flips to the new epoch.
    Exit 0: applied.  Exit 1: refused (inapplicable delta, unreachable
    server).  Exit 2: usage (unreadable/malformed delta file).
    """
    from repro.errors import DeltaError

    try:
        delta = _read_delta(args.edges)
    except (OSError, ValueError, DeltaError) as exc:
        print(f"cannot read delta file {args.edges!r}: {exc}", file=sys.stderr)
        return 2

    if args.port:
        import asyncio

        from repro.serving.server import AsyncConnectorClient, ServerError

        async def run() -> int:
            client = await AsyncConnectorClient.connect(args.host, args.port)
            try:
                return await client.mutate(delta)
            finally:
                await client.aclose()

        try:
            epoch = asyncio.run(run())
        except (ServerError, ConnectionError, OSError) as exc:
            print(f"mutate against {args.host}:{args.port} failed: {exc}",
                  file=sys.stderr)
            return 1
        if args.as_json:
            print(json.dumps({
                "ok": True,
                "address": f"{args.host}:{args.port}",
                "epoch": epoch,
                "ops": delta.num_ops,
            }))
        else:
            print(f"server {args.host}:{args.port} advanced to epoch {epoch} "
                  f"({delta.num_ops} ops)")
        return 0

    from repro.core.service import ConnectorService
    from repro.datasets import load_dataset

    graph = load_dataset(args.dataset)
    service = ConnectorService(graph)
    try:
        epoch = service.apply_delta(delta)
    except DeltaError as exc:
        print(f"delta does not apply to {args.dataset!r}: {exc}",
              file=sys.stderr)
        return 1
    digest = service.index_digest()
    if args.as_json:
        print(json.dumps({
            "ok": True,
            "dataset": args.dataset,
            "epoch": epoch,
            "ops": delta.num_ops,
            "digest": digest,
            "nodes": service.num_nodes,
        }))
    else:
        print(f"{args.dataset!r} at epoch {epoch} after {delta.num_ops} ops "
              f"(digest {digest[:12]}, {service.num_nodes} vertices)")
    return 0


def _parse_address(value: str) -> tuple[str, int]:
    """Parse ``HOST:PORT``; raises ``ValueError`` fit for stderr."""
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"port must be an integer, got {port_text!r}"
        ) from None
    if not 0 < port <= 65535:
        raise ValueError(f"port must be in 1..65535, got {port}")
    return host, port


def _run_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "synth":
        return _run_trace_synth(args)
    if args.trace_command == "record":
        return _run_trace_record(args)
    print("usage: repro trace {synth,record} ...", file=sys.stderr)
    return 2


def _run_trace_synth(args: argparse.Namespace) -> int:
    """``repro trace synth`` — a deterministic load trace from knobs.

    The query pool is drawn component-aware
    (:func:`repro.workloads.component_query`), hottest-first, so every
    replayed query is solvable even on datasets with stragglers.  Equal
    knobs (including ``--seed``) give byte-equal trace files.
    """
    import random

    from repro.datasets import load_dataset
    from repro.errors import InvalidQueryError
    from repro.loadgen.trace import synthesize
    from repro.workloads import component_query

    if args.pool_size < 1:
        print(f"--pool-size must be at least 1, got {args.pool_size}",
              file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset)
    rng = random.Random(args.seed)
    pool: list[tuple[int, ...]] = []
    seen: set[frozenset] = set()
    # Distinct queries only: a duplicate pool entry would silently skew
    # the popularity curve.  Small components cap how many distinct
    # queries exist, so give up after a bounded number of redraws.
    attempts = 0
    try:
        while len(pool) < args.pool_size and attempts < 20 * args.pool_size:
            attempts += 1
            query = tuple(component_query(graph, args.query_size, rng))
            key = frozenset(query)
            if key not in seen:
                seen.add(key)
                pool.append(query)
    except InvalidQueryError as exc:
        print(f"cannot build a query pool on {args.dataset!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        trace = synthesize(
            pool,
            args.requests,
            mean_gap_ms=args.mean_gap_ms,
            zipf=args.zipf,
            burst_amplitude=args.burst_amplitude,
            burst_period_s=args.burst_period_s,
            seed=args.seed,
            meta={"dataset": args.dataset, "query_size": args.query_size},
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        trace.save(args.out)
    except OSError as exc:
        print(f"cannot write {args.out!r}: {exc}", file=sys.stderr)
        return 2
    print(
        f"wrote {len(trace)} requests over {trace.duration:.2f}s "
        f"({len(pool)} distinct queries) to {args.out}"
    )
    return 0


def _run_trace_record(args: argparse.Namespace) -> int:
    """``repro trace record`` — capture live traffic as a trace.

    Starts a transparent proxy in front of ``--target``; point clients at
    the proxy's address (printed as the usual parseable ``listening on``
    line) and their solve requests are recorded with arrival offsets
    while being served normally.
    """
    import asyncio

    from repro.loadgen.trace import RecordingProxy

    try:
        target_host, target_port = _parse_address(args.target)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not 0 <= args.port <= 65535:
        print(f"--port must be in 0..65535, got {args.port}", file=sys.stderr)
        return 2
    if args.duration < 0:
        print(f"--duration must be non-negative, got {args.duration}",
              file=sys.stderr)
        return 2

    async def run() -> int:
        proxy = RecordingProxy(target_host, target_port, args.host, args.port)
        try:
            await proxy.start()
        except OSError as exc:
            print(f"cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 2
        bound_port = proxy.port
        try:
            print(f"recording traffic for {target_host}:{target_port}",
                  flush=True)
            # Same parseable shape as `repro serve`: clients (and tests)
            # read the proxy's bound port from this line.
            print(f"listening on {proxy.host}:{bound_port}", flush=True)
            if args.duration:
                await asyncio.sleep(args.duration)
            else:  # pragma: no cover - interactive record until Ctrl-C
                await asyncio.Event().wait()
        finally:
            await proxy.aclose()
        trace = proxy.to_trace(meta={"bind": f"{args.host}:{bound_port}"})
        trace.save(args.out)
        print(f"wrote {len(trace)} requests over {trace.duration:.2f}s "
              f"to {args.out}", flush=True)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _run_replay(args: argparse.Namespace) -> int:
    """``repro replay`` — fire a trace at a live daemon, report, gate.

    Exit 0: replay finished (and the SLO, if given, held).  Exit 1: the
    server was unreachable or an ``--slo`` bound was violated.  Exit 2:
    usage (unreadable trace/SLO file, bad address).
    """
    import asyncio

    from repro.errors import TraceError
    from repro.loadgen.replay import replay_trace
    from repro.loadgen.slo import SLO
    from repro.loadgen.trace import Trace

    try:
        target_host, target_port = _parse_address(args.target)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.speed <= 0:
        print(f"--speed must be positive, got {args.speed}", file=sys.stderr)
        return 2
    try:
        trace = Trace.load(args.trace)
    except (OSError, TraceError) as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    slo = None
    if args.slo:
        try:
            slo = SLO.from_file(args.slo)
        except (OSError, ValueError) as exc:
            print(f"cannot read SLO file {args.slo!r}: {exc}", file=sys.stderr)
            return 2

    try:
        report = asyncio.run(
            replay_trace(trace, target_host, target_port, speed=args.speed)
        )
    except (ConnectionError, OSError) as exc:
        print(f"cannot replay against {target_host}:{target_port}: {exc}",
              file=sys.stderr)
        return 1

    verdict = slo.evaluate(report) if slo is not None else None
    if args.as_json:
        document = {
            "trace": args.trace,
            "target": f"{target_host}:{target_port}",
            "speed": args.speed,
            "report": report.summary(),
        }
        if verdict is not None:
            document["slo"] = verdict.to_payload()
        print(json.dumps(document, indent=2))
    else:
        summary = report.summary()
        print(
            f"replayed {summary['requests']} requests in "
            f"{summary['duration_s']:.2f}s "
            f"({summary['throughput_rps']:.1f} req/s, "
            f"{summary['errors']} errors)"
        )
        print(
            f"latency p50/p95/p99: {summary['p50_ms']:.1f}/"
            f"{summary['p95_ms']:.1f}/{summary['p99_ms']:.1f} ms; "
            f"shed {summary['shed']} ({summary['shed_rate']:.1%}), "
            f"coalesced {summary['coalesced']} "
            f"({summary['coalesce_rate']:.1%})"
        )
        if verdict is not None:
            print(verdict.describe())
    if verdict is not None and not verdict.ok:
        return 1
    return 0


def _run_ping(args: argparse.Namespace) -> int:
    """``repro ping HOST:PORT`` — the supervisor's liveness primitive.

    Handshake-free (no graph needed on this side), so any process can
    probe any shard-host daemon.  Exit 0: the daemon ponged (round-trip
    time and its health counters are reported).  Exit 1: unreachable,
    hung past ``--timeout``, or not a shard host.  Exit 2: usage.
    """
    from repro.core.sharded import ShardTransportError, normalize_shard_spec
    from repro.serving.remote import ping_shard_host

    try:
        spec = normalize_shard_spec(args.address)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if spec == "local":
        print("ping probes a daemon: pass HOST:PORT, not 'local'",
              file=sys.stderr)
        return 2
    if args.timeout <= 0:
        print(f"--timeout must be positive, got {args.timeout}",
              file=sys.stderr)
        return 2
    host, port = spec
    try:
        report = ping_shard_host(
            host, port, timeout=args.timeout, with_stats=True
        )
    except ShardTransportError as exc:
        if args.as_json:
            print(json.dumps(
                {"ok": False, "address": f"{host}:{port}", "error": str(exc)}
            ))
        else:
            print(exc, file=sys.stderr)
        return 1
    if args.as_json:
        document = {"ok": True, "address": f"{host}:{port}", **report}
        print(json.dumps(document, indent=2))
        return 0
    print(f"shard host {host}:{port}: pong in "
          f"{report['rtt_seconds'] * 1e3:.2f} ms")
    daemon = report.get("host")
    if daemon:
        print(
            f"up {daemon['uptime_seconds']:.1f}s, "
            f"{daemon['sweeps_served']} sweeps served, "
            f"{daemon['connections_active']} connections active"
        )
    return 0


def _run_shard_host(args: argparse.Namespace) -> int:
    from repro.core.service import ConnectorService
    from repro.datasets import load_dataset
    from repro.serving.remote import ShardHostServer

    if not 0 <= args.port <= 65535:
        print(f"--port must be in 0..65535, got {args.port}",
              file=sys.stderr)
        return 2

    graph = load_dataset(args.dataset)
    service = ConnectorService(graph)
    server = ShardHostServer(service, args.host, args.port)
    try:
        server.start()
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    try:
        print(
            f"shard host for {args.dataset!r} ({graph.num_nodes} vertices, "
            f"{graph.num_edges} edges, digest {service.index_digest()[:12]})",
            flush=True,
        )
        # Same parseable shape as `repro serve`: supervisors and tests
        # read the bound port from this line.
        print(f"listening on {server.host}:{server.port}", flush=True)
        server.wait_shutdown()
        print("shutdown requested; stopping", flush=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.close()
    print(f"served {server.sweeps_served} sweeps", flush=True)
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    """``repro lint``: the AST invariant checker as a CI-gateable verb.

    Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule id or
    nonexistent path) — the convention CI's lint-gate job keys on.
    """
    from pathlib import Path

    from repro.analysis import (
        default_registry,
        lint_paths,
        render_explain,
        render_json,
        render_text,
    )

    registry = default_registry()

    if args.explain:
        rule_id = args.explain.strip().upper()
        try:
            rule = registry.get(rule_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}; known rules: "
                  f"{', '.join(registry.ids())}")
            return 2
        fixtures = Path(__file__).parent / "analysis" / "fixtures"
        stem = rule_id.lower()
        bad = fixtures / f"{stem}_bad.py"
        good = fixtures / f"{stem}_good.py"
        try:
            print(render_explain(
                rule.id,
                rule.description,
                rule.rationale or "(no recorded rationale)",
                bad.read_text(encoding="utf-8") if bad.is_file() else None,
                good.read_text(encoding="utf-8") if good.is_file() else None,
            ))
        except BrokenPipeError:  # the reader (a pager, head) hung up
            pass
        return 0

    def split_ids(raw: str | None) -> list[str] | None:
        if not raw:
            return None
        return [part.strip().upper() for part in raw.split(",") if part.strip()]

    paths = list(args.paths)
    if not paths:
        default = Path("src/repro")
        paths = [str(default)] if default.is_dir() else ["."]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such path: {path}")
            return 2

    try:
        result = lint_paths(
            paths,
            registry,
            select=split_ids(args.select),
            ignore=split_ids(args.ignore),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}; known rules: {', '.join(registry.ids())}")
        return 2

    try:
        print(render_json(result) if args.as_json else render_text(result))
    except BrokenPipeError:  # the reader (a pager, head) hung up
        pass
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
