"""The JSON-lines TCP daemon and its async client.

:class:`GatewayServer` exposes an :class:`~repro.core.gateway.AsyncGateway`
over a stdlib :func:`asyncio.start_server` socket: one JSON request per
line in, one JSON response per line out (:mod:`repro.serving.protocol`).
Each request line is served as its own task, so a pipelining client — or
many concurrent clients — lands its requests in the gateway's admission
queue *concurrently*, which is exactly what lets the gateway batch and
coalesce them; responses therefore return in completion order, paired to
requests by the echoed ``id``.

:class:`AsyncConnectorClient` is the matching client: it multiplexes any
number of in-flight ``solve`` calls over one connection, pairing
responses by ``id``.  The round-trip tests and the gateway benchmark
drive the server through it, and ``examples/serving_gateway.py`` shows it
against a live ``repro serve``.

Lifecycle: the server owns only the sockets.  The gateway and its
backing service belong to the caller (the CLI closes all three in
order), and a ``{"op": "shutdown"}`` request resolves
:meth:`GatewayServer.wait_shutdown` so that caller knows when to start
tearing down — the remote-stop path the tests use to check that no shard
process outlives the daemon.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.core.gateway import service_health
from repro.core.options import SolveOptions
from repro.core.versioned import GraphDelta
from repro.errors import ServerStateError
from repro.serving.protocol import (
    decode_line,
    encode_line,
    options_from_payload,
    result_to_payload,
)

__all__ = ["AsyncConnectorClient", "GatewayServer", "ServerError"]

#: Per-line buffer bound (a query of tens of thousands of vertex ids).
LINE_LIMIT = 1 << 20


class ServerError(RuntimeError):
    """A server-side failure response, re-raised client-side.

    Carries the server's ``error_type`` (the original exception class
    name) so callers can distinguish a bad query from an internal fault.
    """

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type


class GatewayServer:
    """Serve one gateway on a TCP port, one JSON line per request.

    ``max_pipelined`` bounds the request tasks live per connection: once
    a client has that many unanswered requests, the read loop stops
    pulling lines, TCP flow control pushes back on the sender, and the
    gateway's admission backpressure actually reaches the socket instead
    of being buffered away into unbounded task memory.
    """

    def __init__(
        self,
        gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pipelined: int = 64,
        close_grace_seconds: float = 30.0,
    ) -> None:
        if max_pipelined < 1:
            raise ValueError(
                f"max_pipelined must be at least 1, got {max_pipelined}"
            )
        if close_grace_seconds <= 0:
            raise ValueError(
                f"close_grace_seconds must be positive, got {close_grace_seconds}"
            )
        self._gateway = gateway
        self._host = host
        self._port = port
        self._max_pipelined = max_pipelined
        # Longest aclose() waits for in-flight request tasks (solve +
        # response write) before force-closing transports.  The bound
        # exists for hostile peers — a client that stops reading its
        # socket blocks writer.drain() forever — so keep it comfortably
        # above the slowest legitimate solve, or computed answers are
        # forfeited at shutdown.
        self._close_grace = close_grace_seconds
        self._server: asyncio.base_events.Server | None = None
        self._request_tasks: set[asyncio.Task] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._connection_writers: set = set()
        self._shutdown = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when constructed with 0).

        Reports the first listening socket.  With ``port=0`` and a
        *dual-stack* host name (e.g. ``localhost`` resolving to both
        ``127.0.0.1`` and ``::1``) each address family gets its own
        ephemeral port, so bind a single-family address (the default
        ``127.0.0.1``) when asking the OS to pick the port.
        """
        if self._server is None:
            raise ServerStateError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def addresses(self) -> list[tuple]:
        """``(host, port)`` of every bound socket (dual-stack hosts may
        hold several, with *different* ephemeral ports under ``port=0``)."""
        if self._server is None:
            raise ServerStateError("server is not started")
        return [sock.getsockname()[:2] for sock in self._server.sockets]

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> "GatewayServer":
        """Bind and start accepting connections; returns ``self``."""
        if self._server is not None:
            raise ServerStateError("server is already started")
        # A fresh event per run: aclose() latches the old one to release
        # its waiters, and a restarted server must not inherit that.
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, limit=LINE_LIMIT
        )
        return self

    async def wait_shutdown(self) -> None:
        """Block until a ``{"op": "shutdown"}`` request has been answered."""
        await self._shutdown.wait()

    async def aclose(self) -> None:
        """Stop accepting, finish in-flight request tasks, close sockets.

        The gateway and its backing service are deliberately left open —
        they belong to the caller (and may outlive several servers).
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        # A connection accepted just before close may have its handler
        # task created but not yet run (so not yet registered); one loop
        # yield lets every such handler register itself before we sweep.
        await asyncio.sleep(0)
        # Answer what is already in flight *before* touching transports —
        # closing first would compute those responses and then drop them
        # on the closed socket.  The grace bound keeps a stalled peer
        # (drain() blocked on an unread socket) or a greedy pipeliner
        # from holding shutdown hostage; past it, they forfeit their
        # answers when the transports close below.
        stalled = False
        try:
            await asyncio.wait_for(
                self._drain_request_tasks(), timeout=self._close_grace
            )
        except asyncio.TimeoutError:  # pragma: no cover - hostile peer
            # A peer stopped reading: its writer.drain() waiters can hold
            # this drain open forever.  Escalate to transport.abort()
            # below — a graceful close cannot flush to a dead reader, so
            # it would never reach connection_lost either.
            stalled = True
        # Idle connections sit blocked in readline() forever.  Closing
        # their transports feeds them EOF so the handler tasks finish on
        # their own — cancelling them instead trips the 3.11 asyncio
        # streams wart where the protocol's done-callback re-raises the
        # CancelledError into the loop's exception handler.  (A line that
        # sneaks in between the drain above and this close is answered by
        # the handler's own final gather, write permitting.)  asyncio.wait
        # (not gather+wait_for) so a timeout never cancels the handlers;
        # any connection still stuck after a grace period gets aborted on
        # the next pass.
        while self._connection_tasks:
            for writer in list(self._connection_writers):
                if stalled:  # pragma: no cover - hostile peer
                    writer.transport.abort()
                else:
                    writer.close()
            _done, pending = await asyncio.wait(
                tuple(self._connection_tasks), timeout=self._close_grace
            )
            if pending:  # pragma: no cover - hostile peer
                stalled = True
        self._server = None
        self._shutdown.set()  # unblock any waiter even on a local close

    async def _drain_request_tasks(self) -> None:
        while self._request_tasks:
            await asyncio.gather(
                *tuple(self._request_tasks), return_exceptions=True
            )

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        pipeline_slots = asyncio.Semaphore(self._max_pipelined)
        self._connection_tasks.add(asyncio.current_task())
        self._connection_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):  # over-long or reset
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Stop reading once the pipeline is full — flow control
                # is the only backpressure a socket peer can feel.
                await pipeline_slots.acquire()
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
                task.add_done_callback(lambda _t: pipeline_slots.release())
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        finally:
            self._connection_tasks.discard(asyncio.current_task())
            self._connection_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _serve_line(self, line: bytes, writer, write_lock) -> None:
        """Answer one request line; failures fail the request, not the link."""
        request_id = None
        is_shutdown = False
        try:
            message = decode_line(line)
            request_id = message.get("id")
            if "op" in message:
                response, is_shutdown = await self._control(message)
            else:
                response = await self._solve(message)
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        response["id"] = request_id
        try:
            async with write_lock:
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away; nothing left to tell it
        # Even when the acknowledgement could not be delivered (the peer
        # fired shutdown and hung up), the accepted shutdown must happen —
        # dropping it would leave the daemon running forever.
        if is_shutdown:
            self._shutdown.set()

    async def _solve(self, message: dict) -> dict:
        query = message.get("query")
        if not isinstance(query, list) or not query:
            raise ValueError('a solve request needs a non-empty "query" array')
        options = None
        if message.get("options") is not None:
            options = options_from_payload(message["options"])
        result = await self._gateway.asolve(query, options)
        return {"ok": True, "result": result_to_payload(result)}

    async def _control(self, message: dict) -> tuple[dict, bool]:
        op = message["op"]
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "stats":
            payload = {"gateway": dataclasses.asdict(self._gateway.stats())}
            # aservice_stats serializes with the solve windows on the
            # gateway's executor — calling the backing service directly
            # here would race a sharded service's pipes mid-window.
            service_stats = await self._gateway.aservice_stats()
            if service_stats is not None:
                payload["service"] = dataclasses.asdict(service_stats)
            # The degraded-mode verdict (replicated rings report dead
            # slots and failover counters) — what supervisors poll.
            payload["health"] = service_health(service_stats)
            return {"ok": True, "stats": payload}, False
        if op == "mutate":
            # The mutate op stays pure JSON like everything else on this
            # untrusted surface: the delta arrives as plain edge lists
            # (GraphDelta.from_payload validates shape and content), never
            # as a pickle.  amutate serializes the epoch flip with the
            # solve windows on the gateway's executor.
            delta = GraphDelta.from_payload(message.get("delta"))
            epoch = await self._gateway.amutate(delta)
            return {"ok": True, "epoch": epoch}, False
        if op == "shutdown":
            # The flag defers the event until *after* this response is on
            # the wire, so the requester always sees its acknowledgement.
            return {"ok": True, "shutting_down": True}, True
        raise ValueError(
            f"unknown op {op!r}; choose from "
            "('ping', 'stats', 'mutate', 'shutdown')"
        )


class AsyncConnectorClient:
    """A multiplexing JSON-lines client for :class:`GatewayServer`.

    Any number of :meth:`solve` calls may be in flight concurrently over
    the one connection; a background reader task pairs responses to
    callers by ``id``.  Usable as an async context manager.
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncConnectorClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=LINE_LIMIT
        )
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        error: Exception | None = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_line(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except Exception as exc:  # noqa: BLE001 - forwarded to awaiters
            error = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    error or ConnectionError("server closed the connection")
                )
        self._pending.clear()

    async def request(self, message: dict) -> dict:
        """Send one raw message and await its paired response."""
        if self._read_task.done():
            raise ConnectionError("client connection is closed")
        request_id = self._next_id
        self._next_id += 1
        message = dict(message, id=request_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode_line(message))
            await self._writer.drain()
        except BaseException:
            # The caller gets this error directly; leaving the future in
            # _pending would make the read loop fail it with no awaiter
            # ("Future exception was never retrieved" at GC).
            self._pending.pop(request_id, None)
            raise
        return await future

    async def _checked_request(self, message: dict, default_error: str) -> dict:
        """Send one message; a failure envelope raises :class:`ServerError`."""
        response = await self.request(message)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", default_error),
                response.get("error_type", ""),
            )
        return response

    async def solve(self, query, options=None) -> dict:
        """Solve one query; returns the connector document (``"result"``).

        ``options`` may be a :class:`SolveOptions` (serialized in full) or
        a plain dict of field overrides.
        """
        message: dict = {"query": list(query)}
        if isinstance(options, SolveOptions):
            message["options"] = dataclasses.asdict(options)
        elif options is not None:
            message["options"] = dict(options)
        return (await self._checked_request(message, "request failed"))["result"]

    async def stats(self) -> dict:
        response = await self._checked_request({"op": "stats"}, "stats failed")
        return response["stats"]

    async def ping(self) -> bool:
        response = await self.request({"op": "ping"})
        return bool(response.get("pong"))

    async def mutate(self, delta) -> int:
        """Apply a graph delta server-side; returns the new epoch.

        ``delta`` may be a :class:`~repro.core.versioned.GraphDelta` or
        its plain-JSON payload dict (``{"insert": [...], "delete": [...],
        "reweight": [...]}``).
        """
        payload = delta.to_payload() if isinstance(delta, GraphDelta) else dict(delta)
        response = await self._checked_request(
            {"op": "mutate", "delta": payload}, "mutate failed"
        )
        return int(response["epoch"])

    async def shutdown_server(self) -> None:
        """Ask the server to shut down gracefully (acknowledged)."""
        await self._checked_request({"op": "shutdown"}, "shutdown failed")

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # server side already gone
        await self._read_task

    async def __aenter__(self) -> "AsyncConnectorClient":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()
