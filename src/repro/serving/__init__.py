"""Network serving: the JSON-lines TCP layers of the connector stack.

:mod:`repro.serving.protocol` defines the wire format (one JSON request
per line in, one JSON response per line out), :mod:`repro.serving.server`
the :func:`asyncio.start_server` gateway daemon plus the async client
helper the tests and benchmark drive it with, and
:mod:`repro.serving.remote` the shard transport: the ``repro shard-host``
daemon and the socket-backed
:class:`~repro.serving.remote.RemoteShardTransport` that lets one router
scatter/gather sweeps across shard hosts on other machines.  ``repro
serve DATASET`` and ``repro shard-host DATASET`` are the CLI entry
points.
"""

from repro.serving.protocol import (
    canonical_sort,
    options_from_payload,
    result_to_payload,
)
from repro.serving.remote import (
    RemoteShardTransport,
    ShardHostServer,
    shutdown_shard_host,
)
from repro.serving.server import AsyncConnectorClient, GatewayServer

__all__ = [
    "AsyncConnectorClient",
    "GatewayServer",
    "RemoteShardTransport",
    "ShardHostServer",
    "canonical_sort",
    "options_from_payload",
    "result_to_payload",
    "shutdown_shard_host",
]
