"""Network serving: the JSON-lines TCP front-end over :class:`AsyncGateway`.

:mod:`repro.serving.protocol` defines the wire format (one JSON request
per line in, one JSON response per line out), :mod:`repro.serving.server`
the :func:`asyncio.start_server` daemon plus the async client helper the
tests and benchmark drive it with.  ``repro serve DATASET`` is the CLI
entry point.
"""

from repro.serving.protocol import (
    canonical_sort,
    options_from_payload,
    result_to_payload,
)
from repro.serving.server import AsyncConnectorClient, GatewayServer

__all__ = [
    "AsyncConnectorClient",
    "GatewayServer",
    "canonical_sort",
    "options_from_payload",
    "result_to_payload",
]
