"""The JSON-lines wire format of the connector server and shard transport.

One request per line, one response per line, every line a single JSON
object — the simplest protocol that still supports pipelining (a client
may send many requests before reading a response; the ``id`` field pairs
them back up, since responses come back in *completion* order).

Two services speak it:

**The public gateway** (:mod:`repro.serving.server`), a pure-JSON surface
for untrusted clients:

* ``{"query": [v, ...], "options": {...}?, "id": ...?}`` — solve one
  query.  ``options`` holds :class:`~repro.core.options.SolveOptions`
  fields by name (``method``, ``beta``, ``selection``, ...); omitted
  fields keep the server's defaults.
* ``{"op": "stats", "id": ...?}`` — gateway + backing-service counters.
* ``{"op": "ping", "id": ...?}`` — liveness probe.
* ``{"op": "mutate", "delta": {...}, "id": ...?}`` — advance the served
  graph one epoch.  ``delta`` is the pure-JSON payload of a
  :class:`~repro.core.versioned.GraphDelta` (``"insert"``/``"delete"``
  lists of endpoint pairs, ``"reweight"`` triples); the success response
  carries the new ``"epoch"``.  No pickles — this op is safe on the
  untrusted surface because ``GraphDelta.from_payload`` validates shape
  and content and the apply is all-or-nothing.
* ``{"op": "shutdown", "id": ...?}`` — acknowledge, then gracefully stop
  the whole server (the operation the tests' clean-teardown assertions
  drive).

**The shard transport** (:mod:`repro.serving.remote`), the
cluster-internal scatter/gather link between a sharded router and its
shard-host daemons.  Same framing, extra ops and version stamping:

* ``{"op": "hello", "digest": hex, "epoch": n, "id": ...?}`` — the
  connect-time handshake: the router sends the digest of its graph index
  (:meth:`~repro.core.service.ConnectorService.index_digest`) plus its
  epoch, and the shard host acknowledges with its own, refusing
  mismatches — routing a key ring over a *different* graph would
  silently break the bit-identity contract.  A digest refusal reports
  the daemon's ``"epoch"`` so the router can bridge the gap with
  catch-up.
* ``{"op": "sweep", "request": b64, "epoch": n, "id": ...}`` — one
  λ×root sweep.  ``request`` is :func:`encode_pickled` of
  ``(query_tuple, options)`` and the success response carries
  ``"outcome"``, :func:`encode_pickled` of the shard's
  :class:`~repro.core.service.SweepOutcome` — exactly the object a
  pipe-backed shard would ship, so the router rebuilds identical
  :class:`~repro.core.result.ConnectorResult` objects either way — plus
  the serving ``"epoch"``.  A version-skewed sweep is refused with
  ``error_type: "EpochMismatch"`` (the router treats the link as stale
  and fails over), never answered from the wrong graph.  Failure
  responses may carry the pickled original exception under
  ``"exception"`` so shard-side faults re-raise with their real type.
* ``{"op": "mutate", "delta": {...}, "id": ...}`` — same payload as the
  gateway's mutate: apply one :class:`~repro.core.versioned.GraphDelta`
  to the replica, acknowledge with the new ``"epoch"`` and ``"digest"``.
* ``{"op": "catchup", "delta": {...}, "id": ...?}`` — the reconnect
  healing path: only accepted immediately after this connection's
  ``hello`` was refused for a digest mismatch, it replays one delta the
  daemon missed while its link was down; the router sends the retained
  suffix oldest-first, then re-runs ``hello``.

The pickled payloads make the sweep op a **trusted-cluster** format:
never expose a shard host to untrusted peers (unpickling attacker bytes
executes code).  The gateway's client-facing ops stay pure JSON.

Responses
---------
``{"id": ..., "ok": true, ...}`` on success — solve responses carry the
connector under ``"result"`` (vertex sets canonically sorted, metadata
filtered to JSON scalars, exactly the ``repro query --json`` shape) —
and ``{"id": ..., "ok": false, "error": ..., "error_type": ...}`` on
failure.  A request-level failure (unknown vertex, bad options) fails
only that request, never the connection.
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.core.options import SolveOptions
from repro.core.result import ConnectorResult

# Compatibility re-export: the pickle codec moved to its own module
# (repro.serving.pickled) so the trusted-cluster boundary is a file
# boundary the linter can police; older callers imported it from here.
from repro.serving.pickled import decode_pickled, encode_pickled

__all__ = [
    "canonical_sort",
    "decode_line",
    "decode_pickled",
    "encode_line",
    "encode_pickled",
    "options_from_payload",
    "result_to_payload",
]

#: The SolveOptions field names a request's ``options`` object may set.
OPTION_FIELDS = frozenset(
    field.name for field in dataclasses.fields(SolveOptions)
)


def canonical_sort(values) -> list:
    """Sort labels canonically: numerically when comparable, else by type
    name and repr — never the lexicographic-repr order that ranks 10
    before 2."""
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=lambda v: (type(v).__name__, repr(v)))


def options_from_payload(payload: dict) -> SolveOptions:
    """Build :class:`SolveOptions` from a request's ``options`` object.

    Unknown field names are rejected (a typo'd tunable must not be
    silently ignored); value validation is ``SolveOptions.__post_init__``'s
    job and surfaces as the same ``ValueError``.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"options must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - OPTION_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown option fields {unknown}; "
            f"choose from {sorted(OPTION_FIELDS)}"
        )
    return SolveOptions(**payload)


def result_to_payload(result: ConnectorResult) -> dict:
    """The JSON-safe document of one connector (the ``--json`` shape)."""
    wiener = result.wiener_index
    return {
        "query": canonical_sort(result.query),
        "nodes": canonical_sort(result.nodes),
        "added": canonical_sort(result.added_nodes),
        "size": result.size,
        "wiener_index": wiener if math.isfinite(wiener) else None,
        "density": result.density,
        "method": result.method,
        "metadata": {
            key: value
            for key, value in result.metadata.items()
            if isinstance(value, (int, float, str, bool, type(None)))
        },
    }


def encode_line(message: dict) -> bytes:
    """One response/request as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one line into a message object (must be a JSON object)."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError(
            f"a request line must be a JSON object, got {type(message).__name__}"
        )
    return message


