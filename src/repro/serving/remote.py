"""Remote shard transport: scatter/gather over sockets for multi-host sharding.

The paper's §6.6 concedes single-machine memory limits and points at
parallel computation at scale; the systems answer in this reproduction is
to let one :class:`~repro.core.sharded.ShardedConnectorService` router
(and therefore one :class:`~repro.core.gateway.AsyncGateway` /
``repro serve`` daemon) front shard replicas on *other machines*.  Two
pieces:

* :class:`ShardHostServer` — the daemon behind ``repro shard-host
  DATASET --port P``: a TCP server wrapping one
  :class:`~repro.core.service.ConnectorService` replica exactly like the
  pipe-backed in-process shard workers, speaking the JSON-lines wire
  format of :mod:`repro.serving.protocol` extended with the ``sweep`` op
  (pickled :class:`~repro.core.service.SweepOutcome` payloads).  Sweeps
  from all connections are serialized through one lock, mirroring the
  single message loop of a pipe shard — the replica's LRU layers are the
  scaling unit, not intra-host parallelism (run more hosts for that).
* :class:`RemoteShardTransport` — the router-side
  :class:`~repro.core.sharded.ShardTransport` implementation: a blocking
  socket whose ``drain()`` never blocks (it reads only what has already
  arrived) and whose socket object plugs straight into the router's
  multiplexed :func:`multiprocessing.connection.wait` gather loop.

Handshake
---------

At connect time the transport sends ``{"op": "hello", "digest": ...}``
with the router's :meth:`~repro.core.service.ConnectorService.index_digest`
and the daemon compares it against its own graph.  A mismatch is refused
(``ShardTransportError``) *before* any request is routed — and the
daemon enforces it server-side too: a connection that skipped (or
failed) ``hello`` has its ``sweep`` requests rejected.  The bit-identity
contract — remote shards return exactly the one-shot ``wiener_steiner``
connectors — only holds when router and shard host serve the same
graph, and a version skew between two dataset copies must fail loudly
at topology-build time, not corrupt answers at serve time.

Failure semantics
-----------------

Request-level faults (a poisoned query) travel back as pickled exception
values and fail only that request — identical to a pipe shard.  A dead
daemon (killed process, reset connection, unparsable reply) surfaces as
``EOFError``/``OSError``/:class:`~repro.core.sharded.ShardTransportError`
out of ``submit``/``drain``; the router then fails the in-flight batch
with one clean ``RuntimeError`` and closes the whole sharded service.
``stop()`` only disconnects: the daemon belongs to whoever started it
(several routers may share it), so tearing down a router never tears
down a host.  Use :func:`shutdown_shard_host` (or the ``shutdown`` op)
to stop a daemon remotely — ``repro shard-host`` exits 0 on it.

Trust model: the ``sweep`` op carries pickles, so shard hosts must only
be reachable from trusted routers (a private cluster network), never
from end-user clients — those talk to the pure-JSON gateway instead.
"""

from __future__ import annotations

import dataclasses
import socket
import socketserver
import threading

from repro.core.options import SolveOptions
from repro.core.service import ConnectorService, ServiceStats
from repro.core.sharded import ShardTransportError
from repro.serving.protocol import (
    decode_line,
    decode_pickled,
    encode_line,
    encode_pickled,
)

__all__ = [
    "RemoteShardTransport",
    "ShardHostServer",
    "shutdown_shard_host",
]

#: Connect/handshake timeout — topology building should fail fast.
CONNECT_TIMEOUT_SECONDS = 10.0

#: Per-read chunk size of the transport's gather loop.
_RECV_CHUNK = 1 << 16


class _ShardHostHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer each in receipt order.

    ``state`` carries the connection's handshake flag: ``sweep`` is only
    served after this connection's ``hello`` succeeded, so the digest
    check is enforced server-side per link, not merely trusted client-side.
    """

    def setup(self) -> None:
        # Small pipelined request/reply lines on a real network: without
        # TCP_NODELAY, Nagle + delayed ACK can stall each tiny segment
        # behind the peer's ACK timer (~40ms) — loopback never shows it.
        # (self.request is the raw socket; self.connection only exists
        # after the parent setup has run.)
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        super().setup()

    def handle(self) -> None:
        host: ShardHostServer = self.server.shard_host  # type: ignore[attr-defined]
        state = {"handshaken": False}
        for line in self.rfile:
            if not line.strip():
                continue
            response, is_shutdown = host._serve_line(line, state)
            try:
                self.wfile.write(encode_line(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionError, OSError):
                # Peer went away; nothing left to tell it — but an
                # accepted shutdown must still happen (same rule as the
                # gateway server: a supervisor that fired-and-forgot, or
                # died right after asking, must not leave the daemon
                # running forever).
                if is_shutdown:
                    host._shutdown.set()
                return
            # As with the gateway's shutdown op: the acknowledgement is on
            # the wire first, then the daemon stops.
            if is_shutdown:
                host._shutdown.set()
                return


class _ShardHostTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ShardHostServer:
    """Serve one :class:`ConnectorService` replica's sweeps over TCP.

    The remote counterpart of the in-process ``_shard_main`` worker loop:
    ops ``hello`` (digest handshake), ``sweep`` (one λ×root sweep,
    pickled outcome), ``stats`` (a :class:`ServiceStats` snapshot as
    JSON), ``ping`` and ``shutdown``.  Each connection is served by its
    own thread in receipt order, but sweeps and snapshots across all
    connections serialize through one lock — the service's caches are not
    thread-safe, and a shard replica's unit of scale is the host, not
    the thread.

    The server owns only its sockets; the service belongs to the caller.
    """

    def __init__(
        self,
        service: ConnectorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._digest = service.index_digest()
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._server: _ShardHostTCPServer | None = None
        self._thread: threading.Thread | None = None
        self.sweeps_served = 0

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when constructed with 0)."""
        if self._server is None:
            raise RuntimeError("shard host is not started")
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._host

    def start(self) -> "ShardHostServer":
        """Bind and start accepting connections; returns ``self``."""
        if self._server is not None:
            raise RuntimeError("shard host is already started")
        self._shutdown = threading.Event()
        self._server = _ShardHostTCPServer(
            (self._host, self._port), _ShardHostHandler
        )
        self._server.shard_host = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"shard-host-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def wait_shutdown(self, timeout: float | None = None) -> bool:
        """Block until a ``shutdown`` op has been acknowledged."""
        return self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting and close the listening socket; idempotent.

        Established connections are not force-closed: their handler
        threads are daemons blocked on reads and exit when the router
        disconnects (routers own their connection lifecycle).
        """
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
        self._shutdown.set()  # unblock any waiter even on a local close

    def __enter__(self) -> "ShardHostServer":
        return self.start() if self._server is None else self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def _serve_line(self, line: bytes, state: dict) -> tuple[dict, bool]:
        """Answer one request line; failures fail the request, not the link.

        ``state`` is the connection's mutable handshake record: a
        successful ``hello`` flips ``state["handshaken"]`` and unlocks
        ``sweep`` for that connection only.
        """
        request_id = None
        is_shutdown = False
        try:
            message = decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                response = {"ok": True, "pong": True}
            elif op == "hello":
                response = self._hello(message)
                state["handshaken"] = bool(response.get("ok"))
            elif op == "sweep":
                if not state["handshaken"]:
                    # The digest check is enforced here, not just trusted
                    # to well-behaved routers: a client that skipped (or
                    # failed) hello must never receive answers that may
                    # come from a different graph than it expects.
                    raise PermissionError(
                        "sweep before a successful hello handshake; send "
                        '{"op": "hello", "digest": ...} first'
                    )
                response = self._sweep(message)
            elif op == "stats":
                with self._lock:
                    snapshot = self._service.stats()
                response = {"ok": True, "stats": dataclasses.asdict(snapshot)}
            elif op == "shutdown":
                response = {"ok": True, "shutting_down": True}
                is_shutdown = True
            else:
                raise ValueError(
                    f"unknown op {op!r}; choose from "
                    "('hello', 'sweep', 'stats', 'ping', 'shutdown')"
                )
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        response["id"] = request_id
        return response, is_shutdown

    def _hello(self, message: dict) -> dict:
        theirs = message.get("digest")
        if theirs != self._digest:
            return {
                "ok": False,
                "error": (
                    f"graph digest mismatch: router has {theirs!r}, this "
                    f"shard host serves {self._digest!r} — both sides must "
                    "load the same graph"
                ),
                "error_type": "GraphDigestMismatch",
                "digest": self._digest,
            }
        return {
            "ok": True,
            "digest": self._digest,
            "nodes": self._service.num_nodes,
        }

    def _sweep(self, message: dict) -> dict:
        query_tuple, options = decode_pickled(message["request"])
        if not isinstance(options, SolveOptions):
            raise ValueError(
                f"sweep options must be SolveOptions, got {type(options).__name__}"
            )
        try:
            with self._lock:
                outcome = self._service.sweep(query_tuple, options)
                self.sweeps_served += 1
        except Exception as exc:
            # The shard-side fault travels as a value, like a pipe shard's:
            # the router re-raises the original exception type when it can.
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
            try:
                response["exception"] = encode_pickled(exc)
            except Exception:  # pragma: no cover - unpicklable exception
                pass
            return response
        return {"ok": True, "outcome": encode_pickled(outcome)}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "stopped" if self._server is None else f"port={self.port}"
        return (
            f"{type(self).__name__}(|V|={self._service.num_nodes}, {state}, "
            f"sweeps={self.sweeps_served})"
        )


class RemoteShardTransport:
    """Socket-backed :class:`~repro.core.sharded.ShardTransport`.

    Connects and handshakes eagerly in the constructor (a bad address or
    a digest mismatch fails topology building, not the first batch).  The
    socket then stays in blocking mode: ``submit`` may block briefly on
    the OS send buffer — safe because the router caps in-flight requests
    per shard — while ``drain`` uses a zero-timeout ``select`` loop to
    read exactly what has already arrived, parse complete lines, and
    buffer the rest.  The raw socket is exposed as :attr:`waitable` for
    the router's multiplexed gather.
    """

    kind = "socket"

    def __init__(
        self,
        shard_id: int,
        host: str,
        port: int,
        *,
        digest: str,
        connect_timeout: float = CONNECT_TIMEOUT_SECONDS,
    ) -> None:
        self.shard_id = shard_id
        self.address = f"{host}:{port}"
        self._buffer = bytearray()
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ShardTransportError(
                f"cannot connect to shard host {self.address}: {exc}"
            ) from exc
        # See _ShardHostHandler.setup: tiny pipelined lines must not sit
        # out Nagle/delayed-ACK stalls on real cross-machine links.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Liveness guard for silent partitions (powered-off host, dropped
        # route): no FIN/RST ever arrives, so without keepalive the
        # router's gather would block forever.  With these probes the OS
        # errors the socket after ~60s of silence and the dead link
        # surfaces through the normal close-on-death path.  (Finer-grained
        # liveness — application heartbeats — is recorded ROADMAP
        # headroom.)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for option, value in (
            ("TCP_KEEPIDLE", 30), ("TCP_KEEPINTVL", 10), ("TCP_KEEPCNT", 3),
        ):
            if hasattr(socket, option):  # Linux/BSD; harmless to skip
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, getattr(socket, option), value
                )
        try:
            self._sock.sendall(
                encode_line({"op": "hello", "digest": digest, "id": None})
            )
            reply = self._handshake_reply(connect_timeout)
            if not reply.get("ok"):
                raise ShardTransportError(
                    f"shard host {self.address} refused the handshake: "
                    f"{reply.get('error', 'no error reported')}"
                )
            self._sock.settimeout(None)  # blocking from here on
        except BaseException:
            self._sock.close()
            raise

    def _pop_line(self) -> bytes | None:
        """Remove and return one complete line from the buffer, if any."""
        newline = self._buffer.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buffer[: newline + 1])
        del self._buffer[: newline + 1]
        return line

    def _handshake_reply(self, timeout: float) -> dict:
        """Read exactly one reply line, honoring the connect timeout."""
        while True:
            line = self._pop_line()
            if line is not None:
                try:
                    return decode_line(line)
                except ValueError as exc:
                    # The peer answered with non-JSON (an HTTP server, an
                    # SSH banner): same broken-link contract as _parse, so
                    # the CLI reports a topology error, not a traceback.
                    raise ShardTransportError(
                        f"shard host {self.address} answered the handshake "
                        f"with a non-protocol reply: {exc}"
                    ) from exc
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise ShardTransportError(
                    f"shard host {self.address} did not answer the "
                    f"handshake within {timeout:.0f}s"
                ) from None
            if not chunk:
                raise ShardTransportError(
                    f"shard host {self.address} closed the connection "
                    "during the handshake"
                )
            self._buffer.extend(chunk)

    # ------------------------------------------------------------------
    # ShardTransport
    # ------------------------------------------------------------------
    def submit(
        self, request_id: int, query_tuple: tuple, options: SolveOptions
    ) -> None:
        self._sock.sendall(
            encode_line(
                {
                    "op": "sweep",
                    "id": request_id,
                    "request": encode_pickled((query_tuple, options)),
                }
            )
        )

    def submit_stats(self, request_id: int) -> None:
        self._sock.sendall(encode_line({"op": "stats", "id": request_id}))

    def drain(self) -> list[tuple[int, str, object]]:
        eof = False
        # A non-blocking recv loop, not select(): select.select raises
        # ValueError for any fd >= FD_SETSIZE (1024), which a busy host
        # process can easily reach — and that ValueError would escape the
        # router's transport-failure handling.  Blocking mode is restored
        # for submit's sendall.
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    chunk = self._sock.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    break  # nothing more has arrived
                if not chunk:
                    eof = True
                    break
                self._buffer.extend(chunk)
        finally:
            self._sock.setblocking(True)
        replies = []
        while (line := self._pop_line()) is not None:
            if line.strip():
                replies.append(self._parse(line))
        if eof and not replies:
            # The socket stays readable at EOF, so after any already-
            # parsed replies are consumed the next drain raises here.
            raise EOFError(
                f"shard host {self.address} closed the connection"
            )
        return replies

    def _parse(self, line: bytes) -> tuple[int, str, object]:
        try:
            message = decode_line(line)
            request_id = message.get("id")
            if message.get("ok"):
                if "outcome" in message:
                    return request_id, "ok", decode_pickled(message["outcome"])
                if "stats" in message:
                    return request_id, "ok", ServiceStats(**message["stats"])
                raise ValueError("success reply carries no payload")
            error = message.get("error", "request failed")
            if "exception" in message:
                exc = decode_pickled(message["exception"])
                if isinstance(exc, Exception):
                    return request_id, "error", exc
            error_type = message.get("error_type", "")
            rebuilt = RuntimeError(
                f"{error_type}: {error}" if error_type else error
            )
            return request_id, "error", rebuilt
        except Exception as exc:
            # An unparsable reply — bad JSON, a missing field, a pickle
            # that will not load (version skew, corruption) — means router
            # and host have lost protocol sync: the link is unusable,
            # exactly like a dead shard, so the router must see a
            # transport failure and close, never a stray exception type.
            raise ShardTransportError(
                f"shard host {self.address} sent an unparsable reply: {exc}"
            ) from exc

    @property
    def waitable(self):
        return self._sock

    def stop(self) -> None:
        """Disconnect from the daemon (which keeps running); idempotent."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"{type(self).__name__}(shard={self.shard_id}, "
            f"address={self.address})"
        )


def shutdown_shard_host(
    host: str, port: int, timeout: float = CONNECT_TIMEOUT_SECONDS
) -> bool:
    """Ask a shard-host daemon to stop; ``True`` only on its acknowledgement.

    The remote-stop path examples, benchmarks, and supervisors use so a
    ``repro shard-host`` daemon exits 0 with nothing orphaned.  Returns
    ``False`` when the daemon is already gone (connection refused), never
    answers within ``timeout``, or the peer is not actually a shard host
    (no ``shutting_down`` ack) — a supervisor must not wait on a process
    that was never told to stop.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(encode_line({"op": "shutdown", "id": 0}))
            sock.settimeout(timeout)
            line = sock.makefile("rb").readline()
    except OSError:
        return False
    try:
        reply = decode_line(line)
    except ValueError:
        return False
    return bool(reply.get("ok")) and bool(reply.get("shutting_down"))
