"""Remote shard transport: replicated scatter/gather over sockets.

The paper's §6.6 concedes single-machine memory limits and points at
parallel computation at scale; the systems answer in this reproduction is
to let one :class:`~repro.core.sharded.ShardedConnectorService` router
(and therefore one :class:`~repro.core.gateway.AsyncGateway` /
``repro serve`` daemon) front shard replicas on *other machines*.  Two
pieces:

* :class:`ShardHostServer` — the daemon behind ``repro shard-host
  DATASET --port P``: a TCP server wrapping one
  :class:`~repro.core.service.ConnectorService` replica exactly like the
  pipe-backed in-process shard workers, speaking the JSON-lines wire
  format of :mod:`repro.serving.protocol` extended with the ``sweep`` op
  (pickled :class:`~repro.core.service.SweepOutcome` payloads).  Sweeps
  from all connections are serialized through one lock, mirroring the
  single message loop of a pipe shard — the replica's LRU layers are the
  scaling unit, not intra-host parallelism (run more hosts for that).
* :class:`RemoteShardTransport` — the router-side
  :class:`~repro.core.sharded.ShardTransport` implementation: a blocking
  socket whose ``drain()`` never blocks (it reads only what has already
  arrived) and whose socket object plugs straight into the router's
  multiplexed :func:`multiprocessing.connection.wait` gather loop.

Handshake
---------

At connect time the transport sends ``{"op": "hello", "digest": ...}``
with the router's :meth:`~repro.core.service.ConnectorService.index_digest`
and the daemon compares it against its own graph.  A mismatch is refused
(:class:`~repro.core.sharded.ShardConnectError`) *before* any request is
routed — and the daemon enforces it server-side too: a connection that
skipped (or failed) ``hello`` has its ``sweep`` requests rejected.  The
bit-identity contract — remote shards return exactly the one-shot
``wiener_steiner`` connectors — only holds when router and shard host
serve the same graph, and a version skew between two dataset copies must
fail loudly at topology-build time, not corrupt answers at serve time.
The same handshake runs again on every :meth:`~RemoteShardTransport.
reconnect`, so a daemon that was restarted with a *different* dataset
while the link was down is refused, never silently rejoined.

Since the versioned-graph layer the handshake also carries the graph
*epoch* (see :mod:`repro.core.versioned`): ``hello`` stamps the router's
epoch, every ``sweep`` request/response is epoch-stamped (a version-
skewed sweep is refused with ``EpochMismatch``, surfaced as a
:class:`~repro.core.sharded.ShardLinkError` — never a silently stale
answer), and the ``mutate`` op ships one
:class:`~repro.core.versioned.GraphDelta` to advance the replica in
lockstep with the router.  A daemon that missed deltas while its link
was down is healed at reconnect: its digest refusal reports the epoch it
is stuck at, and the transport replays the router's retained delta
suffix (the ``catchup`` op, only accepted right after such a refusal)
before re-running ``hello``.

Failure semantics: what fails, what degrades, what heals
--------------------------------------------------------

Three distinct layers, three distinct behaviors:

* **Request faults fail the request.**  A poisoned query travels back as
  a pickled exception value and fails only that request — identical to a
  pipe shard.  Always, at every replication factor.
* **Link faults fail the *link*, typed by when they struck.**  Every
  transport failure raises a
  :class:`~repro.core.sharded.ShardTransportError` subclass the router
  can dispatch on: :class:`~repro.core.sharded.ShardConnectError` when
  the link never came up (refused connect, handshake timeout, digest
  mismatch, a non-protocol peer such as an HTTP server on the wrong
  port) and :class:`~repro.core.sharded.ShardLinkError` when an
  established link broke (mid-write reset, peer closed mid-stream, an
  unparsable or pickle-skewed reply — protocol sync is gone, the link is
  unusable).  What the router *does* with a dead link depends on its
  replication factor: with ``replication=1`` it fails the in-flight
  batch and closes the sharded service (the historical close-on-death);
  with ``replication>=2`` it fails over — the in-flight sweeps re-run on
  a surviving replica and the slot heals in the background.
* **Silence is bounded by heartbeats, not TCP timers.**  A silent
  partition (powered-off host, dropped route) produces no FIN/RST.  The
  transport keeps TCP keepalive (~60s) as a kernel backstop, but its
  *application-level* liveness is finer: an optional background monitor
  pings idle links every ``heartbeat_interval`` seconds over a separate
  throwaway connection (never the request socket, so a probe can never
  interleave with a reply in flight) and marks the transport *suspect*
  on a miss; the router confirms suspects with one :meth:`probe` before
  the next batch touches them, and probes mid-batch shards that stay
  silent past its ``liveness_deadline``.  A SIGSTOP'd daemon — the
  kernel accepts new connections into the backlog but nobody answers —
  fails the probe's ping deadline and is declared dead like any other.

Healing: :meth:`RemoteShardTransport.reconnect` re-dials and re-runs the
``hello`` digest handshake, raising the connect-time taxonomy above when
the daemon is still gone; the router paces those attempts with the
jittered exponential backoff of :mod:`repro.core.retry`.  A revived link
rejoins with whatever caches the daemon kept — a daemon that merely lost
the socket is still warm.

``stop()`` only disconnects, within a bounded time even when the peer is
hung: the daemon belongs to whoever started it (several routers may
share it), so tearing down a router never tears down a host.  Use
:func:`shutdown_shard_host` (or the ``shutdown`` op) to stop a daemon
remotely — ``repro shard-host`` exits 0 on it — and
:func:`ping_shard_host` (or ``repro ping``) as the handshake-free health
probe for supervisors.

Trust model: the ``sweep`` op carries pickles, so shard hosts must only
be reachable from trusted routers (a private cluster network), never
from end-user clients — those talk to the pure-JSON gateway instead.
"""

from __future__ import annotations

import dataclasses
import socket
import socketserver
import threading
import time

from repro.core.options import SolveOptions
from repro.core.service import ConnectorService, ServiceStats
from repro.core.sharded import ShardConnectError, ShardLinkError
from repro.core.versioned import GraphDelta
from repro.errors import ServerStateError
from repro.serving.pickled import decode_pickled, encode_pickled
from repro.serving.protocol import decode_line, encode_line

__all__ = [
    "RemoteShardTransport",
    "ShardHostServer",
    "ping_shard_host",
    "shutdown_shard_host",
]

#: Connect/handshake timeout — topology building should fail fast.
CONNECT_TIMEOUT_SECONDS = 10.0

#: Upper bound on ``RemoteShardTransport.stop()``: a SIGSTOP'd or hung
#: daemon must never block router/service teardown.
STOP_TIMEOUT_SECONDS = 5.0

#: Per-read chunk size of the transport's gather loop.
_RECV_CHUNK = 1 << 16


class _ShardHostHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer each in receipt order.

    ``state`` carries the connection's handshake flag: ``sweep`` is only
    served after this connection's ``hello`` succeeded, so the digest
    check is enforced server-side per link, not merely trusted client-side.
    """

    def setup(self) -> None:
        # Small pipelined request/reply lines on a real network: without
        # TCP_NODELAY, Nagle + delayed ACK can stall each tiny segment
        # behind the peer's ACK timer (~40ms) — loopback never shows it.
        # (self.request is the raw socket; self.connection only exists
        # after the parent setup has run.)
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        super().setup()
        self.server.shard_host._connection_opened()  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.shard_host._connection_closed()  # type: ignore[attr-defined]
        super().finish()

    def handle(self) -> None:
        host: ShardHostServer = self.server.shard_host  # type: ignore[attr-defined]
        state = {"handshaken": False}
        for line in self.rfile:
            if not line.strip():
                continue
            response, is_shutdown = host._serve_line(line, state)
            try:
                self.wfile.write(encode_line(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionError, OSError):
                # Peer went away; nothing left to tell it — but an
                # accepted shutdown must still happen (same rule as the
                # gateway server: a supervisor that fired-and-forgot, or
                # died right after asking, must not leave the daemon
                # running forever).
                if is_shutdown:
                    host._shutdown.set()
                return
            # As with the gateway's shutdown op: the acknowledgement is on
            # the wire first, then the daemon stops.
            if is_shutdown:
                host._shutdown.set()
                return


class _ShardHostTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ShardHostServer:
    """Serve one :class:`ConnectorService` replica's sweeps over TCP.

    The remote counterpart of the in-process ``_shard_main`` worker loop:
    ops ``hello`` (digest handshake), ``sweep`` (one λ×root sweep,
    pickled outcome), ``stats`` (a :class:`ServiceStats` snapshot as JSON
    plus a ``host`` sub-object with daemon-level health: uptime, sweeps
    served, connections active), ``ping`` and ``shutdown``.  Each
    connection is served by its own thread in receipt order, but sweeps
    and snapshots across all connections serialize through one lock — the
    service's caches are not thread-safe, and a shard replica's unit of
    scale is the host, not the thread.

    The server owns only its sockets; the service belongs to the caller.
    """

    def __init__(
        self,
        service: ConnectorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._digest = service.index_digest()
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._server: _ShardHostTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._started: float | None = None
        self._connections_active = 0
        self.sweeps_served = 0

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when constructed with 0)."""
        if self._server is None:
            raise ServerStateError("shard host is not started")
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._host

    def start(self) -> "ShardHostServer":
        """Bind and start accepting connections; returns ``self``."""
        if self._server is not None:
            raise ServerStateError("shard host is already started")
        self._shutdown = threading.Event()
        self._server = _ShardHostTCPServer(
            (self._host, self._port), _ShardHostHandler
        )
        self._server.shard_host = self  # type: ignore[attr-defined]
        self._started = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"shard-host-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def wait_shutdown(self, timeout: float | None = None) -> bool:
        """Block until a ``shutdown`` op has been acknowledged."""
        return self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting and close the listening socket; idempotent.

        Established connections are not force-closed: their handler
        threads are daemons blocked on reads and exit when the router
        disconnects (routers own their connection lifecycle).
        """
        # Swap-then-close so concurrent close() calls (a chaos test's
        # killer thread racing a finally block) are both safe no-ops
        # rather than a TOCTOU on self._server.
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self._shutdown.set()  # unblock any waiter even on a local close

    def __enter__(self) -> "ShardHostServer":
        return self.start() if self._server is None else self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Daemon-level health (the "host" sub-object of the stats reply)
    # ------------------------------------------------------------------
    def _connection_opened(self) -> None:
        with self._lock:
            self._connections_active += 1

    def _connection_closed(self) -> None:
        with self._lock:
            self._connections_active -= 1

    def host_stats(self) -> dict:
        """Daemon-level counters for dashboards and failover decisions.

        Separate from the :class:`ServiceStats` snapshot on purpose: the
        service knows about queries and caches, only the *daemon* knows
        how long it has been up and who is connected — and the wire
        keeps them apart so ``ServiceStats(**reply["stats"])`` keeps
        round-tripping unchanged as either side grows fields.
        """
        return {
            "uptime_seconds": (
                0.0 if self._started is None
                else time.monotonic() - self._started
            ),
            "sweeps_served": self.sweeps_served,
            "connections_active": self._connections_active,
        }

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def _serve_line(self, line: bytes, state: dict) -> tuple[dict, bool]:
        """Answer one request line; failures fail the request, not the link.

        ``state`` is the connection's mutable handshake record: a
        successful ``hello`` flips ``state["handshaken"]`` and unlocks
        ``sweep`` for that connection only.
        """
        request_id = None
        is_shutdown = False
        try:
            message = decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                response = {"ok": True, "pong": True}
            elif op == "hello":
                response = self._hello(message)
                state["handshaken"] = bool(response.get("ok"))
                # A digest refusal opens the catch-up window: the router
                # may replay the deltas this daemon missed while down,
                # then hello again on the same connection.
                state["catchup"] = (
                    not state["handshaken"]
                    and response.get("error_type") == "GraphDigestMismatch"
                )
            elif op == "sweep":
                if not state["handshaken"]:
                    # The digest check is enforced here, not just trusted
                    # to well-behaved routers: a client that skipped (or
                    # failed) hello must never receive answers that may
                    # come from a different graph than it expects.
                    raise PermissionError(
                        "sweep before a successful hello handshake; send "
                        '{"op": "hello", "digest": ...} first'
                    )
                response = self._sweep(message)
            elif op == "mutate":
                if not state["handshaken"]:
                    # Same gate as sweep: only a digest-verified router
                    # may advance this replica's graph version.
                    raise PermissionError(
                        "mutate before a successful hello handshake; send "
                        '{"op": "hello", "digest": ...} first'
                    )
                response = self._apply_delta(message)
            elif op == "catchup":
                if not state.get("catchup"):
                    raise PermissionError(
                        "catchup is only accepted right after a hello "
                        "refused for a digest mismatch"
                    )
                response = self._apply_delta(message)
            elif op == "stats":
                with self._lock:
                    snapshot = self._service.stats()
                response = {
                    "ok": True,
                    "stats": dataclasses.asdict(snapshot),
                    "host": self.host_stats(),
                }
            elif op == "shutdown":
                response = {"ok": True, "shutting_down": True}
                is_shutdown = True
            else:
                raise ValueError(
                    f"unknown op {op!r}; choose from ('hello', 'sweep', "
                    "'mutate', 'catchup', 'stats', 'ping', 'shutdown')"
                )
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        response["id"] = request_id
        return response, is_shutdown

    def _hello(self, message: dict) -> dict:
        theirs = message.get("digest")
        if theirs != self._digest:
            # The refusal reports this daemon's version coordinates so a
            # router that mutated past us can decide whether catch-up
            # (replaying the missed deltas) can bridge the gap.
            return {
                "ok": False,
                "error": (
                    f"graph digest mismatch: router has {theirs!r}, this "
                    f"shard host serves {self._digest!r} — both sides must "
                    "load the same graph"
                ),
                "error_type": "GraphDigestMismatch",
                "digest": self._digest,
                "epoch": self._service.epoch,
            }
        epoch = message.get("epoch")
        if isinstance(epoch, int) and epoch != self._service.epoch:
            # Same graph (digest-verified), different counting base: a
            # daemon restarted with the already-mutated dataset starts at
            # 0 again.  Adopt the router's timeline so sweep stamping and
            # catch-up arithmetic agree.  A shard host serves one
            # deployment's epoch timeline at a time.
            with self._lock:
                self._service.align_epoch(epoch)
        return {
            "ok": True,
            "digest": self._digest,
            "epoch": self._service.epoch,
            "nodes": self._service.num_nodes,
        }

    def _sweep(self, message: dict) -> dict:
        query_tuple, options = decode_pickled(message["request"])
        if not isinstance(options, SolveOptions):
            raise ValueError(
                f"sweep options must be SolveOptions, got {type(options).__name__}"
            )
        expected = message.get("epoch")
        try:
            with self._lock:
                # Checked and served under one lock: a concurrent mutate
                # cannot slip between the version check and the sweep, so
                # the stamped epoch is exactly the one that answered.
                epoch = self._service.epoch
                if expected is not None and expected != epoch:
                    return {
                        "ok": False,
                        "error": (
                            f"sweep dispatched at epoch {expected} but "
                            f"this shard host serves epoch {epoch}"
                        ),
                        "error_type": "EpochMismatch",
                        "epoch": epoch,
                    }
                outcome = self._service.sweep(query_tuple, options)
                self.sweeps_served += 1
        except Exception as exc:
            # The shard-side fault travels as a value, like a pipe shard's:
            # the router re-raises the original exception type when it can.
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
            try:
                response["exception"] = encode_pickled(exc)
            except Exception:  # pragma: no cover - unpicklable exception
                pass
            return response
        return {"ok": True, "outcome": encode_pickled(outcome), "epoch": epoch}

    def _apply_delta(self, message: dict) -> dict:
        """Advance this replica one epoch (the ``mutate``/``catchup`` ops)."""
        delta = GraphDelta.from_payload(message.get("delta"))
        with self._lock:
            epoch = self._service.apply_delta(delta)
            # The handshake digest tracks the graph version: the next
            # hello must compare against the mutated graph, not epoch 0's.
            self._digest = self._service.index_digest()
        return {"ok": True, "epoch": epoch, "digest": self._digest}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "stopped" if self._server is None else f"port={self.port}"
        return (
            f"{type(self).__name__}(|V|={self._service.num_nodes}, {state}, "
            f"sweeps={self.sweeps_served})"
        )


class _HeartbeatMonitor:
    """Ping an idle shard link in the background; flag misses as suspect.

    Runs as a daemon thread per :class:`RemoteShardTransport`.  Probes go
    over a *fresh throwaway connection* each time (:func:`ping_shard_host`),
    never the transport's request socket — a probe must not interleave
    with a sweep reply in flight, and a daemon whose listener still
    answers is alive regardless of what one busy link looks like.  Links
    with recent request traffic are not probed (the traffic *is* the
    heartbeat).  A miss only *marks* the transport suspect; the router
    owns the decision, confirming with one more probe at the next batch
    boundary before taking the slot out of service.
    """

    def __init__(
        self,
        transport: "RemoteShardTransport",
        interval: float,
        probe_timeout: float,
    ) -> None:
        self._transport = transport
        self._interval = interval
        self._probe_timeout = probe_timeout
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            name=f"shard-heartbeat-{transport.shard_id}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._transport.idle_seconds() < self._interval:
                continue  # request traffic is the heartbeat
            if not self._transport.probe(self._probe_timeout):
                self._transport._suspect.set()

    def stop(self, timeout: float) -> None:
        self._stop.set()
        self._thread.join(timeout)


class RemoteShardTransport:
    """Socket-backed :class:`~repro.core.sharded.ShardTransport`.

    Connects and handshakes eagerly in the constructor (a bad address or
    a digest mismatch fails topology building, not the first batch).  The
    socket then stays in blocking mode: ``submit`` may block briefly on
    the OS send buffer — safe because the router caps in-flight requests
    per shard — while ``drain`` uses a zero-timeout ``select`` loop to
    read exactly what has already arrived, parse complete lines, and
    buffer the rest.  The raw socket is exposed as :attr:`waitable` for
    the router's multiplexed gather.

    Failures carry the module taxonomy (see the module docstring):
    :class:`~repro.core.sharded.ShardConnectError` from ``__init__`` /
    :meth:`reconnect`, :class:`~repro.core.sharded.ShardLinkError` (or a
    raw ``EOFError`` on a clean peer close) from ``submit``/``drain``.
    With ``heartbeat_interval`` set, a background monitor pings the
    daemon while the link is idle and marks it suspect on a miss.
    """

    kind = "socket"

    def __init__(
        self,
        shard_id: int,
        host: str,
        port: int,
        *,
        digest,
        epoch=0,
        catchup=None,
        connect_timeout: float = CONNECT_TIMEOUT_SECONDS,
        heartbeat_interval: float | None = None,
        probe_timeout: float = 5.0,
    ) -> None:
        self.shard_id = shard_id
        self.address = f"{host}:{port}"
        self._host = host
        self._port = port
        # Version state comes in as providers (plain values are wrapped):
        # every (re)connect must handshake at the epoch the router serves
        # *now*, not the one it served when this transport was built.
        self._digest_of = digest if callable(digest) else (lambda: digest)
        self._epoch_of = epoch if callable(epoch) else (lambda: epoch)
        self._catchup = catchup
        self._connect_timeout = connect_timeout
        self._probe_timeout = probe_timeout
        self._heartbeat_interval = heartbeat_interval
        self._buffer = bytearray()
        self._suspect = threading.Event()
        self._last_activity = time.monotonic()
        self._monitor: _HeartbeatMonitor | None = None
        self._sock: socket.socket | None = None
        self._connect()
        if heartbeat_interval is not None:
            self._monitor = _HeartbeatMonitor(
                self, heartbeat_interval, probe_timeout
            )

    def _connect(self) -> None:
        """Dial and run the ``hello`` digest handshake (connect-time taxonomy)."""
        self._buffer.clear()
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            self._sock = None
            raise ShardConnectError(
                f"cannot connect to shard host {self.address}: {exc}"
            ) from exc
        # See _ShardHostHandler.setup: tiny pipelined lines must not sit
        # out Nagle/delayed-ACK stalls on real cross-machine links.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Kernel backstop for silent partitions (powered-off host, dropped
        # route): no FIN/RST ever arrives, so without keepalive a gather
        # with no liveness deadline would block forever.  The OS errors
        # the socket after ~60s of silence; the application-level
        # heartbeat/probe machinery usually notices far sooner.
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for option, value in (
            ("TCP_KEEPIDLE", 30), ("TCP_KEEPINTVL", 10), ("TCP_KEEPCNT", 3),
        ):
            if hasattr(socket, option):  # Linux/BSD; harmless to skip
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, getattr(socket, option), value
                )
        try:
            reply = self._say_hello()
            if not reply.get("ok"):
                reply = self._negotiate_catchup(reply)
            if not reply.get("ok"):
                raise ShardConnectError(
                    f"shard host {self.address} refused the handshake: "
                    f"{reply.get('error', 'no error reported')}"
                )
            self._sock.settimeout(None)  # blocking from here on
        except BaseException:
            self._sock.close()
            self._sock = None
            raise
        self._last_activity = time.monotonic()

    def _say_hello(self) -> dict:
        self._sock.sendall(
            encode_line({
                "op": "hello",
                "digest": self._digest_of(),
                "epoch": self._epoch_of(),
                "id": None,
            })
        )
        return self._handshake_reply(self._connect_timeout)

    def _negotiate_catchup(self, refusal: dict) -> dict:
        """Try to bridge a digest refusal by replaying missed deltas.

        A daemon that was down across some epochs still serves the old
        graph; its refusal reports the epoch it is stuck at.  When the
        router retains the delta suffix from there to now, this replays
        it over the same connection (the daemon only accepts ``catchup``
        right after its own refusal) and re-runs ``hello`` — which now
        compares equal digests.  Anything else — no catch-up source, a
        daemon *ahead* of the router, a suffix outside the retained
        history window (``catchup(...)`` returns ``None``), a diverged
        graph that digest-mismatches even at the right epoch — returns
        the original refusal for the caller to raise.
        """
        if refusal.get("error_type") != "GraphDigestMismatch":
            return refusal
        theirs = refusal.get("epoch")
        ours = self._epoch_of()
        if self._catchup is None or not isinstance(theirs, int) or theirs >= ours:
            return refusal
        deltas = self._catchup(theirs)
        if deltas is None:
            return refusal
        for delta in deltas:
            self._sock.sendall(
                encode_line(
                    {"op": "catchup", "delta": delta.to_payload(), "id": None}
                )
            )
            step = self._handshake_reply(self._connect_timeout)
            if not step.get("ok"):
                return step
        return self._say_hello()

    def _pop_line(self) -> bytes | None:
        """Remove and return one complete line from the buffer, if any."""
        newline = self._buffer.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buffer[: newline + 1])
        del self._buffer[: newline + 1]
        return line

    def _handshake_reply(self, timeout: float) -> dict:
        """Read exactly one reply line, honoring the connect timeout."""
        while True:
            line = self._pop_line()
            if line is not None:
                try:
                    return decode_line(line)
                except ValueError as exc:
                    # The peer answered with non-JSON (an HTTP server, an
                    # SSH banner): a connect-time topology error, so the
                    # CLI reports it as one, not as a traceback.
                    raise ShardConnectError(
                        f"shard host {self.address} answered the handshake "
                        f"with a non-protocol reply: {exc}"
                    ) from exc
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise ShardConnectError(
                    f"shard host {self.address} did not answer the "
                    f"handshake within {timeout:.0f}s"
                ) from None
            if not chunk:
                raise ShardConnectError(
                    f"shard host {self.address} closed the connection "
                    "during the handshake"
                )
            self._buffer.extend(chunk)

    # ------------------------------------------------------------------
    # ShardTransport
    # ------------------------------------------------------------------
    def submit(
        self,
        request_id: int,
        query_tuple: tuple,
        options: SolveOptions,
        epoch: int | None = None,
    ) -> None:
        message = {
            "op": "sweep",
            "id": request_id,
            "request": encode_pickled((query_tuple, options)),
        }
        if epoch is not None:
            message["epoch"] = epoch
        self._send(encode_line(message))

    def submit_mutate(self, request_id: int, delta) -> None:
        self._send(
            encode_line(
                {"op": "mutate", "id": request_id, "delta": delta.to_payload()}
            )
        )

    def submit_stats(self, request_id: int) -> None:
        self._send(encode_line({"op": "stats", "id": request_id}))

    def _send(self, payload: bytes) -> None:
        if self._sock is None:
            raise ShardLinkError(
                f"shard host link {self.address} is closed"
            )
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            # A mid-write reset (or an already-errored socket): the link
            # broke in flight, typed so the router fails over cleanly.
            raise ShardLinkError(
                f"shard host {self.address} link failed mid-write: {exc}"
            ) from exc
        self._last_activity = time.monotonic()

    def drain(self) -> list[tuple[int, str, object]]:
        if self._sock is None:
            raise ShardLinkError(
                f"shard host link {self.address} is closed"
            )
        eof = False
        # A non-blocking recv loop, not select(): select.select raises
        # ValueError for any fd >= FD_SETSIZE (1024), which a busy host
        # process can easily reach — and that ValueError would escape the
        # router's transport-failure handling.  Blocking mode is restored
        # for submit's sendall.
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    chunk = self._sock.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    break  # nothing more has arrived
                except OSError as exc:
                    raise ShardLinkError(
                        f"shard host {self.address} link failed mid-read: "
                        f"{exc}"
                    ) from exc
                if not chunk:
                    eof = True
                    break
                self._buffer.extend(chunk)
        finally:
            if self._sock is not None:
                self._sock.setblocking(True)
        replies = []
        while (line := self._pop_line()) is not None:
            if line.strip():
                replies.append(self._parse(line))
        if replies:
            self._last_activity = time.monotonic()
        if eof and not replies:
            # The socket stays readable at EOF, so after any already-
            # parsed replies are consumed the next drain raises here.
            raise EOFError(
                f"shard host {self.address} closed the connection"
            )
        return replies

    def _parse(self, line: bytes) -> tuple[int, str, object]:
        try:
            message = decode_line(line)
            request_id = message.get("id")
            if message.get("ok"):
                if "outcome" in message:
                    # Sweep replies are epoch-stamped so the router can
                    # verify the serving version on receipt (same shape a
                    # pipe shard sends).
                    return request_id, "ok", (
                        message.get("epoch", 0),
                        decode_pickled(message["outcome"]),
                    )
                if "stats" in message:
                    return request_id, "ok", ServiceStats(**message["stats"])
                if "epoch" in message:
                    # A mutate acknowledgement: the replica's new epoch.
                    return request_id, "ok", message["epoch"]
                raise ValueError("success reply carries no payload")
            error_type = message.get("error_type", "")
            if error_type == "EpochMismatch":
                # The daemon refused to answer from a different graph
                # version — the link is stale, not the query poisoned, so
                # the router must fail over and reconnect (with catch-up),
                # never treat it as a request fault.
                raise ShardLinkError(
                    f"shard host {self.address} is at a different epoch: "
                    f"{message.get('error', 'epoch mismatch')}"
                )
            error = message.get("error", "request failed")
            if "exception" in message:
                exc = decode_pickled(message["exception"])
                if isinstance(exc, Exception):
                    return request_id, "error", exc
            rebuilt = RuntimeError(
                f"{error_type}: {error}" if error_type else error
            )
            return request_id, "error", rebuilt
        except ShardLinkError:
            raise  # already typed (a stale-epoch reply), not a parse fault
        except Exception as exc:
            # An unparsable reply — bad JSON, a missing field, a pickle
            # that will not load (version skew, corruption) — means router
            # and host have lost protocol sync: the link is unusable,
            # exactly like a dead one, so the router must see an in-flight
            # transport failure, never a stray exception type.
            raise ShardLinkError(
                f"shard host {self.address} sent an unparsable reply: {exc}"
            ) from exc

    @property
    def waitable(self):
        return self._sock

    # ------------------------------------------------------------------
    # Health: probe / suspect / reconnect
    # ------------------------------------------------------------------
    def idle_seconds(self) -> float:
        """Seconds since the last request-socket traffic (for heartbeats)."""
        return time.monotonic() - self._last_activity

    def probe(self, timeout: float | None = None) -> bool:
        """Is the daemon answering pings *right now*?  Never raises.

        Uses a fresh throwaway connection (see :class:`_HeartbeatMonitor`
        for why), so it works — and stays safe — whatever state the
        request socket is in, including mid-batch with replies in flight.
        """
        try:
            ping_shard_host(
                self._host,
                self._port,
                timeout=self._probe_timeout if timeout is None else timeout,
            )
        except Exception:
            return False
        return True

    def is_suspect(self) -> bool:
        """Has the heartbeat monitor flagged a missed ping?"""
        return self._suspect.is_set()

    def clear_suspect(self) -> None:
        self._suspect.clear()

    def reconnect(self) -> None:
        """Re-dial and re-run the digest handshake; rejoin on success.

        Raises the connect-time taxonomy while the daemon is still gone
        (the router's backoff schedule paces the attempts).  A restarted
        daemon serving a *different* graph is refused by the handshake —
        a stale replica must never silently rejoin the ring.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._sock = None
        self._connect()
        self._suspect.clear()
        if self._heartbeat_interval is not None and self._monitor is None:
            # stop() (a router taking the slot out of service) tears the
            # monitor down; a successful revival brings it back.
            self._monitor = _HeartbeatMonitor(
                self, self._heartbeat_interval, self._probe_timeout
            )

    def stop(self) -> None:
        """Disconnect from the daemon (which keeps running); idempotent.

        Bounded: the close path never waits on the peer — a SIGSTOP'd or
        hung daemon cannot block router/service teardown.  The heartbeat
        monitor thread is stopped with the same bound.
        """
        if self._monitor is not None:
            self._monitor.stop(STOP_TIMEOUT_SECONDS)
            self._monitor = None
        if self._sock is None:
            return
        try:
            # An explicit timeout so nothing on the close path (a lingering
            # send buffer, an unresponsive peer) can wait on the daemon.
            self._sock.settimeout(STOP_TIMEOUT_SECONDS)
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._sock = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"{type(self).__name__}(shard={self.shard_id}, "
            f"address={self.address})"
        )


def ping_shard_host(
    host: str,
    port: int,
    *,
    timeout: float = CONNECT_TIMEOUT_SECONDS,
    with_stats: bool = False,
) -> dict:
    """Handshake-free health probe of a shard-host daemon.

    Connects, sends one ``ping``, and returns ``{"rtt_seconds": ...}``
    measured around the round trip — no ``hello`` required, so any
    supervisor can probe any daemon without knowing its graph.  With
    ``with_stats=True`` the reply also carries the daemon's ``stats``
    snapshot (``"stats"``: the :class:`ServiceStats` fields, ``"host"``:
    uptime/sweeps/connections) fetched over the same connection.

    Raises :class:`~repro.core.sharded.ShardConnectError` when the
    daemon is unreachable, does not answer within ``timeout`` (a
    SIGSTOP'd daemon: the kernel accepts the connection, nobody ever
    replies), or answers with something that is not a shard-host pong.
    """
    address = f"{host}:{port}"
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(timeout)
            reader = sock.makefile("rb")
            started = time.perf_counter()
            sock.sendall(encode_line({"op": "ping", "id": 0}))
            line = reader.readline()
            rtt = time.perf_counter() - started
            if not line:
                raise ShardConnectError(
                    f"shard host {address} closed the connection on ping"
                )
            try:
                reply = decode_line(line)
            except ValueError as exc:
                raise ShardConnectError(
                    f"shard host {address} answered ping with a "
                    f"non-protocol reply: {exc}"
                ) from exc
            if not (reply.get("ok") and reply.get("pong")):
                raise ShardConnectError(
                    f"shard host {address} did not pong: {reply!r}"
                )
            result = {"rtt_seconds": rtt}
            if with_stats:
                sock.sendall(encode_line({"op": "stats", "id": 1}))
                stats_line = reader.readline()
                try:
                    stats_reply = decode_line(stats_line) if stats_line else {}
                except ValueError:
                    stats_reply = {}
                if stats_reply.get("ok"):
                    result["stats"] = stats_reply.get("stats")
                    result["host"] = stats_reply.get("host")
            return result
    except socket.timeout:
        raise ShardConnectError(
            f"shard host {address} did not answer within {timeout:.0f}s"
        ) from None
    except OSError as exc:
        raise ShardConnectError(
            f"cannot connect to shard host {address}: {exc}"
        ) from exc


def shutdown_shard_host(
    host: str, port: int, timeout: float = CONNECT_TIMEOUT_SECONDS
) -> bool:
    """Ask a shard-host daemon to stop; ``True`` only on its acknowledgement.

    The remote-stop path examples, benchmarks, and supervisors use so a
    ``repro shard-host`` daemon exits 0 with nothing orphaned.  Returns
    ``False`` when the daemon is already gone (connection refused), never
    answers within ``timeout`` (every socket operation below runs under
    an explicit timeout, so a SIGSTOP'd daemon cannot hang the caller),
    or the peer is not actually a shard host (no ``shutting_down`` ack) —
    a supervisor must not wait on a process that was never told to stop.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            # create_connection's timeout covers the dial; pin it on the
            # established socket too so sendall and the reply read are
            # bounded against a hung (SIGSTOP'd) daemon.
            sock.settimeout(timeout)
            sock.sendall(encode_line({"op": "shutdown", "id": 0}))
            line = sock.makefile("rb").readline()
    except OSError:  # includes socket.timeout
        return False
    try:
        reply = decode_line(line)
    except ValueError:
        return False
    return bool(reply.get("ok")) and bool(reply.get("shutting_down"))
