"""The trusted-cluster pickle codec of the shard transport.

These two helpers are the *only* sanctioned pickle surface in the tower,
quarantined in their own module so the boundary is a file boundary:
``repro lint``'s RPR003 allowlists exactly this module and
:mod:`repro.serving.remote`, and flags pickle anywhere else.  The
client-facing gateway protocol (:mod:`repro.serving.protocol`) stays
pure JSON — unpickling attacker-supplied bytes executes arbitrary code,
so this codec is for operator-controlled links between a sharded router
and the shard-host daemons it spawned, never for untrusted peers.
"""

from __future__ import annotations

import base64
import pickle

__all__ = ["decode_pickled", "encode_pickled"]


def encode_pickled(value) -> str:
    """A Python value as a JSON-safe string (pickle + base64).

    The carrier of the shard transport's non-JSON payloads:
    ``SolveOptions`` (tuples survive), query labels (any hashable), and
    :class:`~repro.core.service.SweepOutcome` / exception objects, all
    bit-faithfully.  Trusted-cluster only — see the module docstring.
    """
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_pickled(text: str):
    """Inverse of :func:`encode_pickled` (trusted peers only)."""
    if not isinstance(text, str):
        raise ValueError(
            f"a pickled payload must be a base64 string, got {type(text).__name__}"
        )
    return pickle.loads(base64.b64decode(text.encode("ascii")))
