"""Trace-driven load generation for the serving tower.

The scenario harness (ROADMAP: million-node scenario harness) splits into
three pieces, mirroring how production load tests are built:

* :mod:`repro.loadgen.trace` — the versioned JSONL trace format, the
  deterministic synthesizers (Zipf query skew, Poisson arrivals with a
  diurnal burst envelope), and a recording proxy that captures live
  ``repro serve`` traffic into the same format;
* :mod:`repro.loadgen.replay` — an asyncio open-loop replayer that fires
  a trace at a live gateway server at recorded (or time-scaled) offsets
  and reports client- and server-side latency/throughput/shedding;
* :mod:`repro.loadgen.slo` — declarative pass/fail envelopes over a
  replay report, the gate CI and the scale benchmark enforce.
"""

from repro.loadgen.replay import ReplayReport, replay_trace
from repro.loadgen.slo import SLO, SLOCheck, SLOReport
from repro.loadgen.trace import (
    TRACE_VERSION,
    RecordingProxy,
    Trace,
    TraceRecord,
    synthesize,
)

__all__ = [
    "TRACE_VERSION",
    "RecordingProxy",
    "ReplayReport",
    "SLO",
    "SLOCheck",
    "SLOReport",
    "Trace",
    "TraceRecord",
    "replay_trace",
    "synthesize",
]
