"""Load traces: a versioned JSONL schema, synthesizers, and a recorder.

A *trace* is the unit of exchange for the scenario harness — a replayable
record of "what arrived when".  The on-disk format is JSON Lines so a
trace can be streamed, grepped, truncated, and diffed:

* line 1 is the **header**: ``{"kind": "header", "version": 1,
  "meta": {...}}`` — ``meta`` carries free-form provenance (the
  synthesizer's knobs, or the recorded server's address);
* every other line is a **request record**: ``{"kind": "request",
  "offset": 1.25, "query": [3, 17, 4], "options": {...} | null}`` —
  ``offset`` is seconds since the trace epoch (the first request), and
  ``options`` is a plain dict of :class:`SolveOptions` field overrides
  exactly as the wire protocol takes them.

Traces come from two places.  :func:`synthesize` builds one from knobs,
deterministically: queries are drawn from a pool with Zipf skew (rank-1
hottest), and arrivals follow an inhomogeneous Poisson process whose
rate swings around the mean with a sinusoidal *burst envelope* — the
diurnal pattern every production query log shows, compressed to whatever
period the scenario wants.  :class:`RecordingProxy` captures the other
kind: sat between a real client and a live ``repro serve`` socket, it
relays traffic untouched while stamping every solve request with its
arrival offset — record a production session once, replay it forever.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ServerStateError, TraceError

__all__ = [
    "TRACE_VERSION",
    "RecordingProxy",
    "Trace",
    "TraceRecord",
    "synthesize",
]

#: Schema version written to (and required of) every trace header.
TRACE_VERSION = 1

#: Per-line buffer bound for the recording proxy (mirrors the server's).
_LINE_LIMIT = 1 << 20


@dataclass(frozen=True)
class TraceRecord:
    """One request in a trace: when it arrived and what it asked."""

    offset: float
    query: tuple
    options: dict | None = None

    def to_payload(self) -> dict:
        return {
            "kind": "request",
            "offset": self.offset,
            "query": list(self.query),
            "options": self.options,
        }

    @classmethod
    def from_payload(cls, payload: dict, line_number: int) -> "TraceRecord":
        if payload.get("kind") != "request":
            raise TraceError(
                f"line {line_number}: expected a request record, got "
                f"kind={payload.get('kind')!r}"
            )
        offset = payload.get("offset")
        if not isinstance(offset, (int, float)) or isinstance(offset, bool):
            raise TraceError(
                f"line {line_number}: offset must be a number, got {offset!r}"
            )
        if offset < 0 or not math.isfinite(offset):
            raise TraceError(
                f"line {line_number}: offset must be finite and non-negative, "
                f"got {offset!r}"
            )
        query = payload.get("query")
        if not isinstance(query, list) or not query:
            raise TraceError(
                f"line {line_number}: query must be a non-empty array"
            )
        options = payload.get("options")
        if options is not None and not isinstance(options, dict):
            raise TraceError(
                f"line {line_number}: options must be an object or null"
            )
        return cls(float(offset), tuple(query), options)


@dataclass(frozen=True)
class Trace:
    """An ordered sequence of request records plus free-form metadata."""

    records: tuple[TraceRecord, ...]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> float:
        """Seconds from the trace epoch to the last arrival (0.0 if empty)."""
        return max((record.offset for record in self.records), default=0.0)

    def scaled(self, speed: float) -> "Trace":
        """The same trace with arrivals compressed by ``speed`` (> 1 is
        faster); the replayer uses this for time-scaled runs."""
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        return Trace(
            tuple(
                TraceRecord(record.offset / speed, record.query, record.options)
                for record in self.records
            ),
            dict(self.meta, time_scale=speed),
        )

    def dumps(self) -> str:
        header = {"kind": "header", "version": TRACE_VERSION, "meta": self.meta}
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(record.to_payload(), sort_keys=True)
            for record in self.records
        )
        return "\n".join(lines) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceError("empty trace: no header line")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceError(f"line 1: malformed JSON header: {exc}") from exc
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise TraceError(
                'line 1 must be the trace header {"kind": "header", ...}'
            )
        version = header.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"unsupported trace version {version!r}; "
                f"this reader speaks version {TRACE_VERSION}"
            )
        meta = header.get("meta") or {}
        if not isinstance(meta, dict):
            raise TraceError("header meta must be an object")
        records = []
        for line_number, line in enumerate(lines[1:], start=2):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"line {line_number}: malformed JSON: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise TraceError(
                    f"line {line_number}: expected an object record"
                )
            records.append(TraceRecord.from_payload(payload, line_number))
        return cls(tuple(records), meta)

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())


# ----------------------------------------------------------------------
# Synthesis
# ----------------------------------------------------------------------
def synthesize(
    pool: Sequence[Iterable],
    requests: int,
    *,
    mean_gap_ms: float = 50.0,
    zipf: float = 1.1,
    burst_amplitude: float = 0.0,
    burst_period_s: float = 60.0,
    options: dict | None = None,
    seed: int = 0,
    meta: dict | None = None,
) -> Trace:
    """Deterministically synthesize a trace from a query pool.

    ``pool`` orders queries hottest-first: request *k* draws pool entry
    ``i`` with probability proportional to ``1 / (i + 1) ** zipf`` — the
    classic Zipf popularity skew (``zipf=0`` is uniform), which is what
    exercises the gateway's coalescer the way real traffic does.

    Arrivals are an inhomogeneous Poisson process: the instantaneous
    rate swings sinusoidally around ``1000 / mean_gap_ms`` requests per
    second with relative amplitude ``burst_amplitude`` (in ``[0, 1)``)
    and period ``burst_period_s`` — a compressed diurnal envelope, so a
    single trace carries both its rush hour and its trough.  Everything
    is driven by one seeded :class:`random.Random`, so equal knobs give
    byte-equal traces on any platform and any ``PYTHONHASHSEED``.
    """
    if requests < 0:
        raise ValueError(f"requests must be non-negative, got {requests}")
    if requests and not pool:
        raise ValueError("cannot synthesize requests from an empty pool")
    if mean_gap_ms <= 0:
        raise ValueError(f"mean_gap_ms must be positive, got {mean_gap_ms}")
    if zipf < 0:
        raise ValueError(f"zipf exponent must be non-negative, got {zipf}")
    if not 0.0 <= burst_amplitude < 1.0:
        raise ValueError(
            f"burst_amplitude must be in [0, 1), got {burst_amplitude}"
        )
    if burst_period_s <= 0:
        raise ValueError(
            f"burst_period_s must be positive, got {burst_period_s}"
        )
    rng = random.Random(seed)
    queries = [tuple(query) for query in pool]
    weights = [1.0 / (rank + 1) ** zipf for rank in range(len(queries))]
    base_rate = 1000.0 / mean_gap_ms  # requests per second
    clock = 0.0
    records = []
    for index in range(requests):
        if index:  # the epoch request arrives at offset 0 by definition
            rate = base_rate * (
                1.0
                + burst_amplitude
                * math.sin(2.0 * math.pi * clock / burst_period_s)
            )
            clock += rng.expovariate(rate)
        query = rng.choices(queries, weights=weights)[0]
        records.append(TraceRecord(clock, query, options))
    trace_meta = {
        "source": "synthesize",
        "seed": seed,
        "requests": requests,
        "mean_gap_ms": mean_gap_ms,
        "zipf": zipf,
        "burst_amplitude": burst_amplitude,
        "burst_period_s": burst_period_s,
        "pool_size": len(queries),
    }
    if meta:
        trace_meta.update(meta)
    return Trace(tuple(records), trace_meta)


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
class RecordingProxy:
    """A transparent TCP relay that records solve traffic as a trace.

    Sits between clients and a live :class:`GatewayServer`: every line is
    forwarded verbatim in both directions (the wire protocol is what the
    peers negotiate, not ours to interpret), but client lines that parse
    as solve requests — a JSON object with a ``"query"`` array and no
    ``"op"`` — are stamped with their arrival offset and appended to the
    recording.  The trace epoch is the first recorded request, so a
    recording replays head-aligned regardless of how long the proxy idled
    before traffic started.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._target = (target_host, target_port)
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None
        self._pumps: set[asyncio.Task] = set()
        self._records: list[TraceRecord] = []
        self._epoch: float | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise ServerStateError("proxy is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> "RecordingProxy":
        if self._server is not None:
            raise ServerStateError("proxy is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port, limit=_LINE_LIMIT
        )
        return self

    async def aclose(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        for task in tuple(self._pumps):
            task.cancel()
        if self._pumps:
            await asyncio.gather(*tuple(self._pumps), return_exceptions=True)
        self._server = None

    async def __aenter__(self) -> "RecordingProxy":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()

    def to_trace(self, meta: dict | None = None) -> Trace:
        """Snapshot the recording so far as a :class:`Trace`."""
        trace_meta = {
            "source": "record",
            "target": f"{self._target[0]}:{self._target[1]}",
        }
        if meta:
            trace_meta.update(meta)
        return Trace(tuple(self._records), trace_meta)

    def _observe(self, line: bytes) -> None:
        try:
            message = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return  # not ours to judge; the server will answer it
        if not isinstance(message, dict) or "op" in message:
            return  # control traffic (ping/stats/...) is not load
        query = message.get("query")
        if not isinstance(query, list) or not query:
            return  # malformed solves get their error from the server
        now = asyncio.get_running_loop().time()
        if self._epoch is None:
            self._epoch = now
        options = message.get("options")
        # The recording IS the product: one record per solve for the
        # lifetime of one capture session, drained by trace()/stop().
        self._records.append(  # repro-lint: disable=RPR004
            TraceRecord(
                now - self._epoch,
                tuple(query),
                dict(options) if isinstance(options, dict) else None,
            )
        )

    async def _handle(self, reader, writer) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self._target, limit=_LINE_LIMIT
            )
        except OSError:
            writer.close()
            return

        async def pump(src, dst, observe: bool) -> None:
            try:
                while True:
                    line = await src.readline()
                    if not line:
                        break
                    if observe:
                        self._observe(line)
                    dst.write(line)
                    await dst.drain()
            except (ConnectionError, OSError, ValueError):
                pass
            finally:
                # Half-close propagates EOF so the opposite pump (and the
                # real endpoints) see the hang-up they would have seen
                # without the proxy in between.
                dst.close()

        loop = asyncio.get_running_loop()
        tasks = (
            loop.create_task(pump(reader, up_writer, True)),
            loop.create_task(pump(up_reader, writer, False)),
        )
        for task in tasks:
            self._pumps.add(task)
            task.add_done_callback(self._pumps.discard)
        await asyncio.gather(*tasks, return_exceptions=True)
