"""Open-loop trace replay against a live gateway server.

:func:`replay_trace` is the harness's measurement instrument: it fires
every record of a :class:`~repro.loadgen.trace.Trace` at a live
``repro serve`` socket at its recorded offset (optionally time-scaled),
through one multiplexing :class:`AsyncConnectorClient` connection, and
reports what the *client* observed (per-request latency percentiles,
throughput, errors) next to what the *server* counted (shed, coalesced,
its own latency reservoir) over the replay window.

The replay is **open-loop**: arrival times come from the trace, never
from completions, so a slow server faces the arrival rate it would face
in production instead of being graded on a schedule it implicitly slowed
down — the coordinated-omission trap closed-loop benchmarks fall into.

Requests that the server sheds or fails are counted, not raised: a load
test's job is to measure degradation, not to crash on it.  Result
payloads are retained (``keep_results``) so callers can spot-check
replayed answers bit-for-bit against one-shot solves — the identity
contract holds under load or the tower is wrong.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.loadgen.trace import Trace
from repro.serving.server import AsyncConnectorClient

__all__ = ["ReplayReport", "replay_trace"]


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


@dataclass(frozen=True)
class ReplayReport:
    """What one replay observed, client- and server-side.

    Client-side numbers cover exactly this replay's requests.  The
    ``shed``/``coalesced`` counters are *deltas* of the server's lifetime
    counters across the replay window, so a shared long-lived server
    still yields per-run rates; ``server_stats`` keeps the raw final
    stats payload for anything the summary leaves out.
    """

    requests: int
    completed: int
    errors: int
    duration_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    shed: int
    coalesced: int
    latencies_ms: tuple[float, ...] = ()
    error_messages: tuple[str, ...] = ()
    results: tuple = ()
    server_stats: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of replay wall-clock."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def shed_rate(self) -> float:
        """Shed requests as a fraction of this replay's request count."""
        if not self.requests:
            return 0.0
        return self.shed / self.requests

    @property
    def coalesce_rate(self) -> float:
        """Coalesced admissions as a fraction of this replay's requests."""
        if not self.requests:
            return 0.0
        return self.coalesced / self.requests

    @property
    def error_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.errors / self.requests

    def summary(self) -> dict:
        """The JSON-ready digest benchmarks and the CLI print."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "coalesced": self.coalesced,
            "coalesce_rate": round(self.coalesce_rate, 4),
            "error_rate": round(self.error_rate, 4),
        }


def _gateway_counters(stats_payload: dict) -> tuple[int, int]:
    gateway = stats_payload.get("gateway", {}) if stats_payload else {}
    return int(gateway.get("shed", 0)), int(gateway.get("coalesced", 0))


async def replay_trace(
    trace: Trace,
    host: str,
    port: int,
    *,
    speed: float = 1.0,
    keep_results: bool = False,
) -> ReplayReport:
    """Replay ``trace`` open-loop against ``host:port``; measure everything.

    ``speed`` rescales the arrival schedule (2.0 fires twice as fast) —
    the knob that turns one recorded session into a stress sweep.  With
    ``keep_results`` the per-request connector documents are retained in
    trace order (``None`` where the request errored) for bit-identity
    spot checks.
    """
    schedule = trace.scaled(speed) if speed != 1.0 else trace
    latencies_ms: list[float] = []
    errors: list[str] = []
    results: list = [None] * len(schedule.records)

    async with await AsyncConnectorClient.connect(host, port) as client:
        before = await client.stats()
        loop = asyncio.get_running_loop()
        epoch = loop.time()

        async def fire(index: int, record) -> None:
            delay = epoch + record.offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            started = loop.time()
            try:
                payload = await client.solve(record.query, record.options)
            except Exception as exc:  # noqa: BLE001 - measured, not raised
                errors.append(f"{type(exc).__name__}: {exc}")
            else:
                latencies_ms.append((loop.time() - started) * 1000.0)
                if keep_results:
                    results[index] = payload

        await asyncio.gather(
            *(
                fire(index, record)
                for index, record in enumerate(schedule.records)
            )
        )
        duration = loop.time() - epoch
        after = await client.stats()

    shed_before, coalesced_before = _gateway_counters(before)
    shed_after, coalesced_after = _gateway_counters(after)
    return ReplayReport(
        requests=len(schedule.records),
        completed=len(latencies_ms),
        errors=len(errors),
        duration_s=duration,
        p50_ms=percentile(latencies_ms, 0.50),
        p95_ms=percentile(latencies_ms, 0.95),
        p99_ms=percentile(latencies_ms, 0.99),
        shed=shed_after - shed_before,
        coalesced=coalesced_after - coalesced_before,
        latencies_ms=tuple(latencies_ms),
        error_messages=tuple(errors),
        results=tuple(results) if keep_results else (),
        server_stats=after,
    )
