"""Declarative SLO envelopes over replay reports.

An :class:`SLO` names the bounds a replay must stay inside — latency
percentiles, shed/error rates, a throughput floor — and
:meth:`SLO.evaluate` turns a :class:`~repro.loadgen.replay.ReplayReport`
into a per-bound verdict.  The scale benchmark and the ``scale-smoke``
CI job gate on :attr:`SLOReport.ok`, so a regression that slows the
tower or starts shedding shows up as a red build, not a slow feeling.

Envelopes live in JSON files (``repro replay --slo envelope.json``) so a
deployment can version its latency budget next to its code::

    {"max_p50_ms": 50, "max_p99_ms": 500, "max_shed_rate": 0.01}

Unset bounds are simply not checked; unknown keys are rejected (a typo'd
``max_p9_ms`` silently checking nothing would be an SLO that always
passes, the worst kind).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from repro.loadgen.replay import ReplayReport

__all__ = ["SLO", "SLOCheck", "SLOReport"]


@dataclass(frozen=True)
class SLOCheck:
    """One evaluated bound: what was required, what was observed."""

    name: str
    bound: float
    observed: float
    ok: bool

    def describe(self) -> str:
        verdict = "ok" if self.ok else "VIOLATED"
        op = ">=" if self.name.startswith("min_") else "<="
        return f"{self.name}: {self.observed:.4g} {op} {self.bound:.4g} [{verdict}]"


@dataclass(frozen=True)
class SLOReport:
    """Every evaluated bound plus the overall verdict."""

    checks: tuple[SLOCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> tuple[SLOCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def describe(self) -> str:
        if not self.checks:
            return "no SLO bounds set"
        return "\n".join(check.describe() for check in self.checks)

    def to_payload(self) -> dict:
        return {
            "ok": self.ok,
            "checks": [
                {
                    "name": check.name,
                    "bound": check.bound,
                    "observed": check.observed,
                    "ok": check.ok,
                }
                for check in self.checks
            ],
        }


@dataclass(frozen=True)
class SLO:
    """A pass/fail envelope; ``None`` bounds are not checked.

    ``max_*`` bounds are ceilings on the report's matching observation,
    ``min_throughput_rps`` is a floor.  All latency bounds are in
    milliseconds, rates are fractions of the replay's request count.
    """

    max_p50_ms: float | None = None
    max_p95_ms: float | None = None
    max_p99_ms: float | None = None
    max_shed_rate: float | None = None
    max_error_rate: float | None = None
    min_throughput_rps: float | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "SLO":
        if not isinstance(payload, dict):
            raise ValueError("an SLO document must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown SLO bounds {unknown}; choose from {sorted(known)}"
            )
        for name, value in payload.items():
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ValueError(
                    f"SLO bound {name} must be a number or null, got {value!r}"
                )
        return cls(**payload)

    @classmethod
    def from_file(cls, path) -> "SLO":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))

    def evaluate(self, report: ReplayReport) -> SLOReport:
        """Check every set bound against ``report``."""
        checks = []
        ceilings = (
            ("max_p50_ms", self.max_p50_ms, report.p50_ms),
            ("max_p95_ms", self.max_p95_ms, report.p95_ms),
            ("max_p99_ms", self.max_p99_ms, report.p99_ms),
            ("max_shed_rate", self.max_shed_rate, report.shed_rate),
            ("max_error_rate", self.max_error_rate, report.error_rate),
        )
        for name, bound, observed in ceilings:
            if bound is not None:
                checks.append(SLOCheck(name, bound, observed, observed <= bound))
        if self.min_throughput_rps is not None:
            checks.append(
                SLOCheck(
                    "min_throughput_rps",
                    self.min_throughput_rps,
                    report.throughput_rps,
                    report.throughput_rps >= self.min_throughput_rps,
                )
            )
        return SLOReport(tuple(checks))
