"""Versioned mutable graphs: mutate a live service, keep every warm cache.

The serving tower is no longer read-only.  This example walks the
mutation subsystem end to end, twice:

1. **in process** — warm a :class:`~repro.core.service.ConnectorService`
   on the football dataset, apply a :class:`~repro.core.versioned.GraphDelta`
   (one transfer in, one rivalry dropped), and watch the epoch bump, the
   scoped invalidation counters, and the answers change *correctly*:
   bit-identical to a cold solve on the mutated graph;
2. **over the wire** — launch ``repro serve`` as a real daemon, send the
   pure-JSON ``mutate`` op through
   :meth:`~repro.serving.server.AsyncConnectorClient.mutate`, and verify
   the epoch in the daemon's ``stats`` plus warm cache hits that
   survived the delta.

Run with::

    python examples/mutable_graph.py
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import re
import subprocess
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = str(_SRC) + os.pathsep + _ENV.get("PYTHONPATH", "")


def pick_delta(graph):
    """One insert of an absent pair + one delete of a non-bridge edge.

    Both picked from the *high* end of the node ordering, far from the
    example's query over the first few nodes — a delta that stays out of
    a root's BFS neighbourhood is exactly the case scoped invalidation
    exists for, so the retention counters below have something to keep.
    """
    from repro.core.versioned import GraphDelta

    nodes = sorted(graph.nodes(), reverse=True)
    insert = next(
        (v, u)
        for u in nodes
        for v in nodes
        if v < u and not graph.has_edge(u, v)
    )
    delete = next(
        (u, v) for u, v in sorted(graph.edges(), reverse=True)
        if graph.degree(u) > 1 and graph.degree(v) > 1
    )
    return GraphDelta(inserts=(insert,), deletes=(delete,))


def in_process() -> None:
    from repro.core.service import ConnectorService
    from repro.core.wiener_steiner import wiener_steiner
    from repro.datasets import load_dataset

    graph = load_dataset("football")
    query = sorted(graph.nodes())[:4]
    service = ConnectorService(graph)

    result = service.solve(query)
    print(f"epoch {service.epoch}: connector for {query} -> "
          f"{sorted(result.nodes)[:6]}... (|S|={result.size})")
    service.solve(query)  # a warm repeat, straight from the result cache
    before = service.stats()

    delta = pick_delta(graph)
    epoch = service.apply_delta(delta)
    after = service.stats()
    print(f"applied {delta!r}: epoch {before.epoch} -> {epoch}")
    print(f"scoped invalidation: kept {after.entries_retained} cache "
          f"entries, evicted {after.entries_invalidated} "
          f"({after.score_cache_size} score entries still warm)")

    # The identity contract restates per epoch: the warm, mutated service
    # answers exactly like a cold one-shot solve on the mutated graph.
    mutated = graph.copy()
    delta.apply_to_graph(mutated)
    warm = service.solve(query)
    cold = wiener_steiner(mutated, query)
    assert warm.nodes == cold.nodes and warm.metadata["root"] == cold.metadata["root"]
    print(f"epoch {service.epoch}: warm answer == cold solve on the "
          f"mutated graph (|S|={warm.size})\n")


async def over_the_wire(port: int) -> None:
    from repro.serving.server import AsyncConnectorClient

    query = [0, 1, 2, 3]
    async with await AsyncConnectorClient.connect(port=port) as client:
        await client.solve(query)
        await client.solve(query)  # warm the daemon's caches

        # The mutate op is pure JSON: no pickles on the untrusted surface.
        epoch = await client.mutate({"insert": [[0, 50]], "delete": []})
        print(f"daemon accepted the delta; now serving epoch {epoch}")

        document = await client.solve(query)
        stats = await client.stats()
        service = stats["service"]
        print(f"stats: epoch={service['epoch']}, "
              f"retained={service['entries_retained']}, "
              f"invalidated={service['entries_invalidated']}, "
              f"score hits so far={service['score_hits']}")
        print(f"post-mutate connector for {query}: {document['nodes']} "
              f"(W = {document['wiener_index']:.0f})")
        await client.shutdown_server()


def main() -> None:
    print("— in process " + "—" * 50)
    in_process()

    print("— over the wire " + "—" * 47)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "football", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=_ENV,
    )
    try:
        port = None
        for line in server.stdout:
            print(f"[server] {line.rstrip()}")
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise RuntimeError("repro serve never announced its port")
        asyncio.run(over_the_wire(port))
        for line in server.stdout:
            print(f"[server] {line.rstrip()}")
        server.wait(timeout=30)
        print(f"server exited with code {server.returncode}")
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    main()
