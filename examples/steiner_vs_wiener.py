"""Why not just use a Steiner tree?  (The paper's Figure-2 argument.)

A Steiner tree minimizes the number of vertices/edges used to connect the
query; a minimum Wiener connector minimizes the *pairwise distances* inside
the solution.  This example builds the paper's gadget where the two
objectives pull apart, then shows the asymptotic version where the Steiner
solution's Wiener index is worse by an unbounded factor.

Run with::

    python examples/steiner_vs_wiener.py
"""

from __future__ import annotations

from repro import minimum_wiener_connector, steiner_tree_unweighted, wiener_index
from repro.core.exact import brute_force
from repro.graphs.generators import figure2_gadget, line_with_universal_root


def main() -> None:
    graph = figure2_gadget(10)
    query = list(range(1, 11))

    steiner = steiner_tree_unweighted(graph, query)
    print("Steiner tree connects the 10 query vertices with "
          f"{steiner.num_nodes} vertices; its Wiener index is "
          f"{wiener_index(graph.subgraph(steiner.nodes())):.0f}")

    optimum = brute_force(graph, query, candidates=["r1", "r2"])
    print(f"the optimal Wiener connector uses {optimum.size} vertices "
          f"(adds {sorted(map(str, optimum.added_nodes))}) with "
          f"W = {optimum.wiener_index:.0f}")

    approx = minimum_wiener_connector(graph, query)
    print(f"ws-q finds W = {approx.wiener_index:.0f} "
          f"adding {sorted(map(str, approx.added_nodes))}")

    print("\nNote: the optimum here is NOT a tree — it keeps both roots and")
    print("all their edges, trading extra vertices for shorter distances.\n")

    print("The asymptotic version (line of length h + a universal root):")
    print(f"{'h':>5} {'W(Steiner)':>12} {'W(connector)':>13} {'gap':>7}")
    for h in (10, 20, 40, 80, 160):
        g = line_with_universal_root(h)
        q = list(range(1, h + 1))
        w_line = wiener_index(g.subgraph(q))          # Θ(h³)
        w_root = wiener_index(g.subgraph(q + ["r"]))  # O(h²)
        print(f"{h:>5} {w_line:>12.0f} {w_root:>13.0f} {w_line / w_root:>6.1f}x")
    print("\nThe Steiner solution's Wiener index grows cubically; including")
    print("the root keeps it quadratic — an unbounded separation.")


if __name__ == "__main__":
    main()
