"""Multi-host sharding walkthrough: a router over two shard-host daemons.

The §6.6 scale-out story across *process boundaries the way it would
cross machine boundaries*: two ``repro shard-host`` daemons — each one
:class:`~repro.core.service.ConnectorService` replica with its own cache
layers, reachable only over TCP — fronted by one
:class:`~repro.core.sharded.ShardedConnectorService` router that
consistent-hashes queries onto them.  On a real cluster the only change
is the host names in ``--shards``.

The walkthrough runs the full story:

1. launch two ``repro shard-host football`` daemons as real subprocesses
   and parse their ports;
2. build a router with ``shards=["127.0.0.1:p1", "127.0.0.1:p2"]`` — the
   connect-time handshake compares graph digests, so a router pointed at
   a shard host serving a *different* graph is refused before any query
   is routed;
3. solve a batch (with duplicates) twice: the second pass is answered
   from the daemons' warm sweep caches, bit-identically;
4. gather per-shard cache statistics over the wire, mix a local pipe
   shard into the same ring, and finally stop both daemons with the
   remote ``shutdown`` op — they exit 0 with nothing orphaned.

Run with::

    python examples/remote_shards.py
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

# Self-bootstrap (same pattern as the benchmarks): make `repro` importable
# here and in the spawned daemons, however this script is invoked.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = str(_SRC) + os.pathsep + _ENV.get("PYTHONPATH", "")

DATASET = "football"


def spawn_shard_host() -> tuple[subprocess.Popen, int]:
    """One `repro shard-host` daemon; returns (process, bound port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-host", DATASET, "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=_ENV,
    )
    for line in process.stdout:
        print(f"[shard-host] {line.rstrip()}")
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return process, int(match.group(1))
    raise RuntimeError("repro shard-host never announced its port")


def main() -> None:
    from repro.core.sharded import ShardedConnectorService
    from repro.core.wiener_steiner import wiener_steiner
    from repro.datasets import load_dataset
    from repro.serving.remote import shutdown_shard_host

    daemons = [spawn_shard_host() for _ in range(2)]
    addresses = [f"127.0.0.1:{port}" for _, port in daemons]
    graph = load_dataset(DATASET)
    queries = [[0, 1, 2], [3, 4], [0, 1, 2], [5, 6, 7], [8, 9]]
    try:
        print(f"\nrouter over {addresses} (handshake checks graph digests)")
        with ShardedConnectorService(graph, shards=addresses) as router:
            cold = router.solve_many(queries)
            warm = router.solve_many(queries)
            stats = router.stats()

        for query, result in zip(queries, cold):
            reference = wiener_steiner(graph, query)
            marker = "==" if result.nodes == reference.nodes else "!!"
            print(f"  query {query} -> shard {result.metadata['shard']} "
                  f"({result.metadata['transport']}), connector of "
                  f"{len(result.nodes)} vertices {marker} one-shot solver")
        assert all(a.nodes == b.nodes for a, b in zip(cold, warm))
        print(f"router: {stats.requests_routed} routed, "
              f"{stats.inflight_deduped} deduped in flight, "
              f"{stats.result_hits} answered from shard-host caches "
              f"(hit rate {stats.hit_rate():.0%})")
        for shard_id, shard in enumerate(stats.shards):
            print(f"  shard {shard_id}: {shard.queries_served} served, "
                  f"{shard.cached_roots} roots cached")

        print("\nmixing one local pipe shard into the same ring...")
        with ShardedConnectorService(
            graph, shards=[addresses[0], "local"]
        ) as mixed:
            results = mixed.solve_many(queries)
            kinds = [r.metadata["transport"] for r in results]
            print(f"  transports used per query: {kinds}")
            assert all(
                a.nodes == b.nodes for a, b in zip(results, cold)
            ), "mixed ring must stay bit-identical"

        print("\nstopping both daemons with the remote shutdown op...")
        for (process, port) in daemons:
            shutdown_shard_host("127.0.0.1", port)
            for line in process.stdout:
                print(f"[shard-host] {line.rstrip()}")
            process.wait(timeout=30)
            print(f"  daemon on :{port} exited with code {process.returncode}")
    finally:
        for process, _ in daemons:
            if process.poll() is None:
                process.kill()


if __name__ == "__main__":
    main()
