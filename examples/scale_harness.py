"""Scenario-harness walkthrough: synth a trace, replay it at a live server.

The loadgen loop end to end, entirely through the CLI surface:

1. ``repro trace synth`` — write a deterministic JSONL trace: a
   Zipf-skewed pool of solvable queries over a dataset, Poisson
   arrival offsets with a diurnal-style burst envelope;
2. ``repro serve`` — launch the JSON-lines TCP daemon as a real
   subprocess and parse its ``listening on`` line for the bound port;
3. ``repro replay`` — fire the trace open-loop at the live server at
   8x recorded speed, gated by an SLO envelope, and read back the
   latency percentiles plus the gateway's shed/coalesce counters.

Everything is driven through ``python -m repro`` subprocesses — the
same commands you would run by hand against a production tower.

Run with::

    python examples/scale_harness.py
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import re
import subprocess
import sys
import tempfile

# Self-bootstrap (same pattern as the benchmarks): make `repro` importable
# here and in the spawned subprocesses, however this script is invoked.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = str(_SRC) + os.pathsep + _ENV.get("PYTHONPATH", "")

SLO = {
    "max_p99_ms": 60_000.0,   # generous: first solves warm the caches
    "max_shed_rate": 0.1,
    "max_error_rate": 0.0,
    "min_throughput_rps": 0.1,
}


def repro(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=_ENV,
    )


def shutdown(port: int) -> None:
    from repro.serving.server import AsyncConnectorClient

    async def ask():
        async with await AsyncConnectorClient.connect(port=port) as client:
            await client.shutdown_server()

    asyncio.run(ask())


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="scale_harness_"))
    trace_path = workdir / "football.jsonl"
    slo_path = workdir / "slo.json"
    slo_path.write_text(json.dumps(SLO, indent=2))

    # 1. Synthesize a deterministic trace over the dataset.
    print("$ repro trace synth", trace_path.name, "football ...")
    synth = repro(
        "trace", "synth", str(trace_path), "football",
        "--requests", "60", "--pool-size", "6", "--query-size", "4",
        "--mean-gap-ms", "100", "--zipf", "1.3",
        "--burst-amplitude", "0.6", "--burst-period-s", "2",
        "--seed", "7",
    )
    print(synth.stdout.rstrip() or synth.stderr.rstrip())
    synth.check_returncode()

    # 2. Serve the same dataset and grab the announced port.
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "football", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=_ENV,
    )
    try:
        port = None
        for line in server.stdout:
            print(f"[server] {line.rstrip()}")
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise RuntimeError("repro serve never announced its port")

        # 3. Replay the trace at the live server, gated by the SLO.
        print(f"\n$ repro replay {trace_path.name} "
              f"--target 127.0.0.1:{port} --slo {slo_path.name} "
              "--speed 8 --json")
        replay = repro(
            "replay", str(trace_path),
            "--target", f"127.0.0.1:{port}",
            "--slo", str(slo_path), "--speed", "8", "--json",
        )
        if replay.returncode != 0:
            print(replay.stdout.rstrip())
            print(replay.stderr.rstrip())
            raise RuntimeError("replay failed its SLO envelope")
        document = json.loads(replay.stdout)
        report = document["report"]
        print(f"replayed {report['completed']}/{report['requests']} "
              f"requests at {report['throughput_rps']:.1f} req/s")
        print(f"latency p50/p95/p99: {report['p50_ms']:.0f}/"
              f"{report['p95_ms']:.0f}/{report['p99_ms']:.0f} ms")
        print(f"shed rate {report['shed_rate']:.1%}, "
              f"coalesce rate {report['coalesce_rate']:.1%}")
        for check in document["slo"]["checks"]:
            flag = "ok" if check["ok"] else "VIOLATED"
            print(f"  SLO {check['name']}: "
                  f"{check['observed']:.4g} vs {check['bound']:.4g} [{flag}]")

        print("\nasking the daemon to shut down...")
        shutdown(port)
        for line in server.stdout:
            print(f"[server] {line.rstrip()}")
        server.wait(timeout=30)
        print(f"server exited with code {server.returncode}")
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    main()
