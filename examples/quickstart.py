"""Quickstart: extract a minimum Wiener connector from a social network.

Runs the paper's Figure-1 scenario on Zachary's karate club: given a few
members of the club as query vertices, find the small connected subgraph
that best "explains" how they relate — the algorithm surfaces the two
faction leaders and the bridge member between them.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import minimum_wiener_connector, wiener_index
from repro.datasets import karate_club, karate_factions


def main() -> None:
    graph = karate_club()
    print(f"Zachary's karate club: {graph.num_nodes} members, "
          f"{graph.num_edges} friendships\n")

    # Query vertices drawn from both factions of the club split.
    query = [12, 25, 26, 30]
    result = minimum_wiener_connector(graph, query)

    print(f"query Q = {sorted(query)}")
    print(f"connector vertices   = {sorted(result.nodes)}")
    print(f"added 'important' vertices = {sorted(result.added_nodes)}")
    print(f"Wiener index W(H)    = {result.wiener_index:.0f}")
    print(f"density δ(H)         = {result.density:.3f}")

    instructor, president = karate_factions()
    for node in sorted(result.added_nodes):
        side = "instructor's" if node in instructor else "president's"
        print(f"  vertex {node:2d} belongs to the {side} faction")

    # Compare against simply taking the query's induced subgraph.
    bare = wiener_index(graph.subgraph(query))
    print(f"\nW of the bare query set: {bare} "
          f"(disconnected -> infinite)" if bare == float("inf") else "")
    print("The connector makes the query connected with "
          f"{result.num_added} extra vertices.")


if __name__ == "__main__":
    main()
