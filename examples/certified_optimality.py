"""Certifying how close ws-q gets to the true optimum.

Reproduces the paper's §6.2 methodology at example scale: run the
approximation algorithm, then bracket the unknown optimum with (a) the
branch-and-bound solver's certified interval and (b) the LP relaxation of
the paper's flow program — the same role Gurobi plays in Table 2.

Run with::

    python examples/certified_optimality.py
"""

from __future__ import annotations

import random

from repro import minimum_wiener_connector
from repro.datasets import load_dataset
from repro.solvers import flow_lp_lower_bound, solve_exact
from repro.workloads import random_query


def main() -> None:
    graph = load_dataset("football")
    rng = random.Random(2015)
    print(f"football stand-in: {graph.num_nodes} vertices, "
          f"{graph.num_edges} edges\n")

    for size in (3, 5, 8):
        query = random_query(graph, size, rng)
        approx = minimum_wiener_connector(graph, query)
        outcome = solve_exact(graph, query, initial=approx,
                              time_budget_seconds=10.0)
        lp = flow_lp_lower_bound(graph, query,
                                 candidates=_nearby(graph, query))
        lower = max(outcome.lower_bound, lp.value)

        print(f"|Q| = {size}: ws-q found W = {approx.wiener_index:.0f}")
        print(f"  branch-and-bound interval: "
              f"[{outcome.lower_bound:.0f}, {outcome.upper_bound:.0f}]"
              f"{' (optimal)' if outcome.optimal else ''}")
        print(f"  LP relaxation bound:       {lp.value:.1f}")
        if lower > 0:
            gap = approx.wiener_index / lower - 1
            print(f"  => ws-q certified within {gap:.1%} of the optimum\n")


def _nearby(graph, query, limit: int = 40):
    """A small candidate pool for the LP: vertices closest to the query."""
    from repro.solvers import query_distance_maps, vertex_margin

    maps = query_distance_maps(graph, query)
    others = [v for v in graph.nodes() if v not in set(query)]
    others.sort(key=lambda v: vertex_margin(v, query, maps))
    return others[:limit]


if __name__ == "__main__":
    main()
