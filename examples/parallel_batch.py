"""Batch query answering: the serving API and the parallel executor (§6.6).

The paper notes Algorithm 1 parallelizes with a linear speedup in |Q|:
each candidate root is independent.  This example runs the same query
sequentially and with the process-pool implementation, then serves a
small batch of queries the way a query-serving deployment would — through
one persistent :class:`~repro.core.service.ConnectorService` whose CSR
index and caches are shared by the whole batch (repeated queries are
answered from cache, bit-identically).

Run with::

    python examples/parallel_batch.py
"""

from __future__ import annotations

import random
import time

from repro.core import ConnectorService, parallel_wiener_steiner, wiener_steiner
from repro.datasets import load_dataset
from repro.workloads import query_with_distance


def main() -> None:
    graph = load_dataset("oregon")
    print(f"oregon stand-in: {graph.num_nodes} vertices, "
          f"{graph.num_edges} edges\n")

    rng = random.Random(99)
    query = query_with_distance(graph, 10, 4.0, rng=rng)

    started = time.perf_counter()
    sequential = wiener_steiner(graph, query, selection="wiener")
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = parallel_wiener_steiner(graph, query, max_workers=4)
    parallel_seconds = time.perf_counter() - started

    print(f"|Q| = {len(query)}")
    print(f"sequential: W = {sequential.wiener_index:.0f} "
          f"in {sequential_seconds:.1f}s")
    print(f"parallel  : W = {parallel.wiener_index:.0f} "
          f"in {parallel_seconds:.1f}s "
          f"({sequential_seconds / max(parallel_seconds, 1e-9):.1f}x speedup, "
          f"4 workers)\n")

    print("serving a batch of seven requests (five distinct) from one index:")
    service = ConnectorService(graph)
    batch = [query_with_distance(graph, 5, 3.0, rng=rng) for _ in range(5)]
    batch += [batch[0], batch[2]]  # hot queries repeat in real traffic
    started = time.perf_counter()
    results = service.solve_many(batch)
    batch_seconds = time.perf_counter() - started
    for index, result in enumerate(results):
        print(f"  Q{index}: |Q|=5 -> |V(H)|={result.size:2d} "
              f"W={result.wiener_index:.0f} "
              f"added={sorted(result.added_nodes)[:4]}...")
    stats = service.stats()
    print(f"  {batch_seconds:.1f}s for {len(batch)} requests "
          f"({stats.result_hits} result-cache hits, "
          f"{stats.cached_roots} cached roots)")


if __name__ == "__main__":
    main()
