"""Batch query answering with the parallel executor (§6.6).

The paper notes Algorithm 1 parallelizes with a linear speedup in |Q|:
each candidate root is independent.  This example runs the same query
sequentially and with the process-pool implementation, then answers a
small batch of queries the way a query-serving deployment would.

Run with::

    python examples/parallel_batch.py
"""

from __future__ import annotations

import random
import time

from repro.core import parallel_wiener_steiner, wiener_steiner
from repro.datasets import load_dataset
from repro.workloads import query_with_distance


def main() -> None:
    graph = load_dataset("oregon")
    print(f"oregon stand-in: {graph.num_nodes} vertices, "
          f"{graph.num_edges} edges\n")

    rng = random.Random(99)
    query = query_with_distance(graph, 10, 4.0, rng=rng)

    started = time.perf_counter()
    sequential = wiener_steiner(graph, query, selection="wiener")
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = parallel_wiener_steiner(graph, query, max_workers=4)
    parallel_seconds = time.perf_counter() - started

    print(f"|Q| = {len(query)}")
    print(f"sequential: W = {sequential.wiener_index:.0f} "
          f"in {sequential_seconds:.1f}s")
    print(f"parallel  : W = {parallel.wiener_index:.0f} "
          f"in {parallel_seconds:.1f}s "
          f"({sequential_seconds / max(parallel_seconds, 1e-9):.1f}x speedup, "
          f"4 workers)\n")

    print("batch of five smaller queries:")
    for index in range(5):
        batch_query = query_with_distance(graph, 5, 3.0, rng=rng)
        result = parallel_wiener_steiner(graph, batch_query, max_workers=4)
        print(f"  Q{index}: |Q|=5 -> |V(H)|={result.size:2d} "
              f"W={result.wiener_index:.0f} "
              f"added={sorted(result.added_nodes)[:4]}...")


if __name__ == "__main__":
    main()
