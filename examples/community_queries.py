"""Comparing methods on same-community vs cross-community queries.

Reproduces the paper's §6.4 insight at example scale: community-search
methods implicitly assume the query vertices share a community and blow up
when they do not; the minimum Wiener connector stays small either way.

Run with::

    python examples/community_queries.py
"""

from __future__ import annotations

import random

from repro.baselines import METHODS
from repro.datasets import load_community_dataset
from repro.workloads import different_communities_query, same_community_query


def main() -> None:
    data = load_community_dataset("dblp")
    graph = data.graph
    print(f"dblp stand-in: {graph.num_nodes} vertices, {graph.num_edges} "
          f"edges, {len(data.communities)} ground-truth communities\n")

    rng = random.Random(42)
    queries = {
        "same community (sc)": same_community_query(data, 5, rng),
        "different communities (dc)": different_communities_query(data, 5, rng),
    }

    for label, query in queries.items():
        spanned = len(data.communities_of(query))
        print(f"{label}: Q = {sorted(query)} spans {spanned} communities")
        for tag in ("ws-q", "st", "ppr", "cps", "ctp"):
            result = METHODS[tag](graph, query)
            print(f"  {tag:5s} |V(H)| = {result.size:5d}   "
                  f"W(H) = {result.wiener_index:,.0f}")
        print()

    print("The community methods (ppr, cps, ctp) grow sharply on the dc")
    print("query; ws-q adds only the few bridge vertices it needs.")


if __name__ == "__main__":
    main()
