"""Async serving quickstart: a live ``repro serve`` daemon over localhost.

This example runs the full deployment story end to end:

1. launch ``repro serve`` as a real subprocess — the JSON-lines TCP
   daemon whose :class:`~repro.core.gateway.AsyncGateway` micro-batches
   concurrently-arriving requests into ``solve_many`` windows and
   coalesces identical in-flight queries;
2. connect an :class:`~repro.serving.server.AsyncConnectorClient` and
   fire a burst of concurrent requests (with duplicates, the way hot
   queries actually arrive) over one multiplexed connection;
3. read the gateway's own counters back over the wire, then stop the
   daemon with the graceful ``shutdown`` op.

Run with::

    python examples/serving_gateway.py
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import re
import subprocess
import sys

# Self-bootstrap (same pattern as the benchmarks): make `repro` importable
# here and in the spawned server, however this script is invoked.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = str(_SRC) + os.pathsep + _ENV.get("PYTHONPATH", "")


async def drive(port: int) -> None:
    from repro.serving.server import AsyncConnectorClient

    queries = [[0, 1, 2], [3, 4], [0, 1, 2], [5, 6, 7], [0, 1, 2], [3, 4]]
    async with await AsyncConnectorClient.connect(port=port) as client:
        print(f"firing {len(queries)} concurrent requests "
              f"({len({tuple(q) for q in queries})} distinct)...")
        documents = await asyncio.gather(
            *(client.solve(query) for query in queries)
        )
        for query, document in zip(queries, documents):
            print(f"  query {query} -> connector {document['nodes']} "
                  f"(W = {document['wiener_index']:.0f})")

        stats = await client.stats()
        gateway = stats["gateway"]
        print(f"\ngateway: {gateway['windows_dispatched']} windows, "
              f"{gateway['coalesced']} requests coalesced onto in-flight "
              f"duplicates, {gateway['results_served']} served")

        print("asking the daemon to shut down...")
        await client.shutdown_server()


def main() -> None:
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "football", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=_ENV,
    )
    try:
        port = None
        for line in server.stdout:
            print(f"[server] {line.rstrip()}")
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise RuntimeError("repro serve never announced its port")

        asyncio.run(drive(port))

        for line in server.stdout:
            print(f"[server] {line.rstrip()}")
        server.wait(timeout=30)
        print(f"server exited with code {server.returncode}")
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    main()
