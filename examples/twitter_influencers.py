"""Case study: finding influencers connecting Twitter communities.

Reproduces the paper's §7 / Figure 7 / Table 5 scenario on the synthetic
#kdd2014 mention graph: query users sit in different conversation
communities, and the minimum Wiener connector routes through the graph's
celebrity accounts — the top-mentioned, top-betweenness users.

Run with::

    python examples/twitter_influencers.py
"""

from __future__ import annotations

from repro import minimum_wiener_connector
from repro.datasets import FIGURE7_QUERY_ONE, FIGURE7_QUERY_TWO, kdd_twitter_network
from repro.graphs.centrality import betweenness_centrality


def main() -> None:
    data = kdd_twitter_network()
    graph = data.graph
    print(f"#kdd2014 mention graph: {graph.num_nodes} users, "
          f"{graph.num_edges} mention edges")
    communities = len(set(data.community_of.values()))
    print(f"{communities} conversation communities\n")

    betweenness = betweenness_centrality(graph, sample_size=200)
    ranked = sorted(graph.nodes(), key=lambda u: -betweenness[u])
    rank = {user: index + 1 for index, user in enumerate(ranked)}

    for label, query in (("first", FIGURE7_QUERY_ONE), ("second", FIGURE7_QUERY_TWO)):
        result = minimum_wiener_connector(graph, query)
        spanned = {data.community_of[q] for q in query}
        print(f"{label} query {sorted(query)}")
        print(f"  spans communities {sorted(f'G{c}' for c in spanned)}")
        print(f"  connector size {result.size} "
              f"(W = {result.wiener_index:.0f})")
        for user in sorted(result.added_nodes, key=lambda u: rank[u]):
            followers = data.followers.get(user)
            extra = f", {followers:,} followers" if followers else ""
            print(f"  + {user:15s} G{data.community_of[user]:<2d} "
                  f"mentions={graph.degree(user):3d} "
                  f"betweenness rank #{rank[user]}{extra}")
        print()

    print("Note how both connectors pass through the same celebrity hubs —")
    print("the users a viral-marketing (or rumor-blocking) campaign would target.")


if __name__ == "__main__":
    main()
