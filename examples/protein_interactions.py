"""Case study: disease genes in a protein-protein-interaction network.

Reproduces the paper's §7 / Figure 6 scenario: given four proteins studied
in different disease contexts (BMP1, JAK2, PSEN, SLC6A4), the minimum
Wiener connector surfaces the hub proteins that link them (p53, HSP90,
GSK3B, SNCA) — exactly the kind of vertices "network medicine" is after,
because they suggest protein-disease and disease-disease associations.

Run with::

    python examples/protein_interactions.py
"""

from __future__ import annotations

from repro import minimum_wiener_connector
from repro.baselines import ppr_connector
from repro.datasets import ppi_network


def main() -> None:
    data = ppi_network()
    graph = data.graph
    print(f"synthetic PPI network: {graph.num_nodes} proteins, "
          f"{graph.num_edges} interactions")
    print(f"query proteins: {', '.join(data.query)}\n")

    result = minimum_wiener_connector(graph, data.query)
    print("minimum Wiener connector:")
    print(f"  {result.summary()}")
    for protein in sorted(result.added_nodes):
        diseases = "/".join(data.diseases.get(protein, ("unannotated",)))
        print(f"  added {protein:8s} ({diseases})")

    print("\nnext-hop analysis (which protein links each query gene in):")
    subgraph = result.subgraph
    for gene in data.query:
        neighbors = sorted(subgraph.neighbors(gene), key=str)
        annotated = [p for p in neighbors if p in data.diseases]
        hop = annotated[0] if annotated else neighbors[0]
        print(f"  {gene:8s} -> {hop:8s} "
              f"({'/'.join(data.diseases.get(hop, ()))})")

    # Contrast with a community-oriented method: same query, much larger
    # neighborhood instead of a handful of linking hubs.
    ppr = ppr_connector(graph, data.query)
    print(f"\nfor comparison, ppr returns {ppr.size} proteins "
          f"(ws-q: {result.size})")


if __name__ == "__main__":
    main()
