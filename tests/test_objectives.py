"""Tests for the Section-4 objective chain (W, A, Ã, B) and its lemmas."""

import math
import random

import pytest

from helpers import random_connected_graph
from repro.core.objectives import (
    a_objective,
    b_objective,
    best_rooted_a,
    optimal_lambda,
    verify_lemma1,
    weak_a_objective,
    wiener_of_nodes,
)
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.traversal import bfs_distances
from repro.graphs.wiener import wiener_index


class TestAObjective:
    def test_star_hub_root(self):
        g = star_graph(4)
        # A = |V| * sum of distances to hub = 5 * 4.
        assert a_objective(g, g.nodes(), 0) == 20

    def test_disconnected_subset_infinite(self, two_triangles_bridge):
        assert a_objective(two_triangles_bridge, [0, 4], 0) == math.inf

    def test_best_rooted_a_picks_center(self):
        g = path_graph(5)
        value, root = best_rooted_a(g, g.nodes())
        assert root == 2
        assert value == 5 * (2 + 1 + 0 + 1 + 2)


class TestLemma1:
    """min_r Σd(v,r) <= 2W/|V| <= 2 min_r Σd(v,r) for every connected graph."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = random_connected_graph(18, 0.2, seed + 40)
        low, middle, high = verify_lemma1(g, g.nodes())
        assert low <= middle + 1e-9 <= high + 1e-9

    def test_on_path(self):
        g = path_graph(7)
        low, middle, high = verify_lemma1(g, g.nodes())
        assert low <= middle <= high


class TestWeakAObjective:
    def test_matches_a_when_distances_preserved(self):
        g = path_graph(5)
        distances = bfs_distances(g, 0)
        nodes = [0, 1, 2]
        assert weak_a_objective(nodes, distances) == a_objective(g, nodes, 0)

    def test_unreachable_infinite(self):
        assert weak_a_objective([0, 9], {0: 0}) == math.inf


class TestBObjective:
    def test_formula(self):
        distances = {0: 0, 1: 1, 2: 2}
        value = b_objective([0, 1, 2], distances, lam=2.0)
        assert value == 2.0 * 3 + 3 / 2.0

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            b_objective([0], {0: 0}, lam=0.0)

    def test_unreachable_infinite(self):
        assert b_objective([5], {0: 0}, lam=1.0) == math.inf

    def test_optimal_lambda_balances_terms(self):
        """At λ* = sqrt(Σd/|S|), both B-terms are equal (AM-GM tightness)."""
        distances = {i: i for i in range(10)}
        nodes = list(range(10))
        lam = optimal_lambda(nodes, distances)
        left = lam * len(nodes)
        right = sum(distances.values()) / lam
        assert left == pytest.approx(right)

    def test_optimal_lambda_clamped(self):
        # All-zero distances would give λ = 0; Lemma 3 clamps at 1/√2.
        assert optimal_lambda([0], {0: 0}) == pytest.approx(1 / math.sqrt(2))

    def test_optimal_lambda_empty_raises(self):
        with pytest.raises(ValueError):
            optimal_lambda([], {})


class TestLemma3Consequence:
    """B at the optimal λ squares to the weak-A objective (Lemma 10)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_b_squared_vs_weak_a(self, seed):
        g = random_connected_graph(25, 0.15, seed + 60)
        rng = random.Random(seed)
        root = next(iter(g.nodes()))
        distances = bfs_distances(g, root)
        nodes = rng.sample(sorted(g.nodes()), 8)
        if any(n not in distances for n in nodes):
            pytest.skip("unreachable sample")
        lam = optimal_lambda(nodes, distances)
        b = b_objective(nodes, distances, lam)
        weak = weak_a_objective(nodes, distances)
        # 4xy = (xλ + y/λ)² at λ = sqrt(y/x), so B² = 4 Ã.
        assert b * b == pytest.approx(4 * weak, rel=1e-9)


class TestWienerOfNodes:
    def test_equals_subgraph_wiener(self, two_triangles_bridge):
        nodes = [0, 1, 2, 3]
        expected = wiener_index(two_triangles_bridge.subgraph(nodes))
        assert wiener_of_nodes(two_triangles_bridge, nodes) == expected
