"""Tests for centrality measures, cross-checked against networkx."""

import random

import pytest

from helpers import random_connected_graph, to_networkx
from repro.errors import InvalidQueryError
from repro.graphs.graph import Graph
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.centrality import (
    average_betweenness,
    betweenness_centrality,
    closeness_centrality,
    pagerank,
    random_walk_with_restart,
)


class TestBetweenness:
    def test_star_hub_dominates(self):
        bc = betweenness_centrality(star_graph(6))
        assert bc[0] == pytest.approx(1.0)
        for leaf in range(1, 7):
            assert bc[leaf] == 0.0

    def test_path_middle(self):
        bc = betweenness_centrality(path_graph(5), normalized=False)
        # Middle vertex lies on 2*3 = ... pairs: (0,3),(0,4),(1,3),(1,4),(0,2 no)...
        assert bc[2] == 4.0
        assert bc[0] == 0.0

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = random_connected_graph(40, 0.12, seed + 300)
        ours = betweenness_centrality(g)
        theirs = nx.betweenness_centrality(to_networkx(g))
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_sampled_close_to_exact(self):
        g = random_connected_graph(80, 0.08, 42)
        exact = betweenness_centrality(g)
        sampled = betweenness_centrality(g, sample_size=40, rng=random.Random(0))
        top_exact = sorted(exact, key=exact.get, reverse=True)[:5]
        top_sampled = sorted(sampled, key=sampled.get, reverse=True)[:10]
        assert set(top_exact) & set(top_sampled)

    def test_tiny_graph(self):
        bc = betweenness_centrality(Graph([(0, 1)]))
        assert bc == {0: 0.0, 1: 0.0}

    def test_average_betweenness(self):
        g = star_graph(4)
        bc = betweenness_centrality(g)
        assert average_betweenness(g, [0], bc) == pytest.approx(1.0)
        assert average_betweenness(g, [0, 1], bc) == pytest.approx(0.5)
        assert average_betweenness(g, [], bc) == 0.0


class TestCloseness:
    def test_star_hub(self):
        cc = closeness_centrality(star_graph(5))
        assert cc[0] > cc[1]

    def test_matches_networkx(self):
        import networkx as nx

        g = random_connected_graph(35, 0.15, 77)
        ours = closeness_centrality(g)
        theirs = nx.closeness_centrality(to_networkx(g))
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)


class TestPageRank:
    def test_sums_to_one(self):
        g = random_connected_graph(50, 0.1, 5)
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_uniform_on_cycle(self):
        from repro.graphs.generators import cycle_graph

        scores = pagerank(cycle_graph(6))
        for value in scores.values():
            assert value == pytest.approx(1 / 6)

    def test_matches_networkx(self):
        import networkx as nx

        g = random_connected_graph(40, 0.1, 9)
        ours = pagerank(g, damping=0.85, tolerance=1e-12, max_iterations=200)
        theirs = nx.pagerank(to_networkx(g), alpha=0.85, tol=1e-12, max_iter=200)
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-6)

    def test_personalized_mass_near_seed(self):
        g = path_graph(9)
        scores = pagerank(g, personalization={0: 1.0})
        assert scores[0] > scores[4] > scores[8]

    def test_personalization_validation(self):
        g = path_graph(3)
        with pytest.raises(InvalidQueryError):
            pagerank(g, personalization={99: 1.0})
        with pytest.raises(InvalidQueryError):
            pagerank(g, personalization={0: 0.0})

    def test_dangling_nodes_handled(self):
        g = Graph([(0, 1)], nodes=[2])
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores[2] > 0


class TestRWR:
    def test_seed_has_max_score(self):
        g = random_connected_graph(40, 0.1, 11)
        seed = next(iter(g.nodes()))
        scores = random_walk_with_restart(g, seed, restart_probability=0.3)
        assert max(scores, key=scores.get) == seed

    def test_restart_probability_controls_spread(self):
        g = path_graph(15)
        tight = random_walk_with_restart(g, 0, restart_probability=0.9)
        loose = random_walk_with_restart(g, 0, restart_probability=0.05)
        # A high restart probability keeps more mass at the seed.
        assert tight[0] > loose[0]
